"""Inspect the compiler's output across dialects and strategies.

The demo lets visitors "examine the compiled output"; this script compiles
the same view definition for every combination of target dialect and
materialization strategy and prints the emitted SQL side by side — the
cross-DBMS portability argument of the paper in one screen.

Run:  python examples/compiler_playground.py
"""

from repro import CompilerFlags, MaterializationStrategy, OpenIVMCompiler

SCHEMA = """
CREATE TABLE sales (
    region VARCHAR,
    product VARCHAR,
    amount INTEGER,
    discount DOUBLE
)
"""

VIEW = """
CREATE MATERIALIZED VIEW product_stats AS
SELECT region, product,
       SUM(amount) AS total_amount,
       COUNT(*) AS order_count,
       AVG(discount) AS avg_discount
FROM sales
WHERE amount > 0
GROUP BY region, product
"""


def main() -> None:
    for dialect in ("duckdb", "postgres"):
        for strategy in MaterializationStrategy:
            flags = CompilerFlags(dialect=dialect, strategy=strategy)
            compiler = OpenIVMCompiler.from_schema(SCHEMA, flags)
            compiled = compiler.compile(VIEW)
            banner = f" dialect={dialect} strategy={strategy.value} "
            print("=" * 78)
            print(banner.center(78, "="))
            print("=" * 78)
            print(compiled.script())
            print()

    # MIN/MAX views compile too (the paper's announced extension), with a
    # rescan step for deletions:
    flags = CompilerFlags()
    compiler = OpenIVMCompiler.from_schema(SCHEMA, flags)
    compiled = compiler.compile(
        "CREATE MATERIALIZED VIEW price_range AS "
        "SELECT region, MIN(amount) AS lo, MAX(amount) AS hi "
        "FROM sales GROUP BY region"
    )
    print("=" * 78)
    print(" MIN/MAX extension (rescan on deletions) ".center(78, "="))
    print("=" * 78)
    for label, sql in compiled.propagation:
        print(f"-- {label}")
        print(sql + ";")


if __name__ == "__main__":
    main()
