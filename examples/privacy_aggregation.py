"""Decentralized privacy-preserving aggregation (the RDDA use case).

The paper's §1 motivation: "information from personal data stores flows
into centralized views, while preserving privacy constraints by
guaranteeing coarse-grained aggregation of sensitive attributes."

Each personal data store is its own OLTP engine holding raw, sensitive
activity records.  The central system never materializes raw rows: every
store only ships *deltas of coarse aggregates* (per category and week),
computed by the same OpenIVM-compiled SQL.  The central view then sums
the per-store aggregates — again maintained incrementally.

Run:  python examples/privacy_aggregation.py
"""

import random

from repro import Connection, CompilerFlags, PropagationMode, load_ivm
from repro.workloads import format_table

CATEGORIES = ["health", "travel", "media", "shopping"]


def make_personal_store(owner: str, seed: int) -> tuple[Connection, object]:
    """One personal data store with a local coarse-aggregation view."""
    con = Connection()
    ivm = load_ivm(con, CompilerFlags(mode=PropagationMode.EAGER))
    con.execute(
        "CREATE TABLE activity (category VARCHAR, week INTEGER, "
        "minutes INTEGER, note VARCHAR)"
    )
    # The only thing that ever leaves the store: category/week aggregates.
    con.execute(
        "CREATE MATERIALIZED VIEW shared_aggregate AS "
        "SELECT category, week, SUM(minutes) AS total_minutes "
        "FROM activity GROUP BY category, week"
    )
    rng = random.Random(seed)
    for _ in range(300):
        con.execute(
            "INSERT INTO activity VALUES (?, ?, ?, ?)",
            [
                rng.choice(CATEGORIES),
                rng.randint(1, 4),
                rng.randint(5, 120),
                f"private note of {owner}",
            ],
        )
    return con, ivm


def main() -> None:
    stores = {
        owner: make_personal_store(owner, seed)
        for seed, owner in enumerate(["alice", "bob", "carol"])
    }

    # Central system: receives per-store aggregate rows, maintains the
    # population-level view incrementally.
    central = Connection()
    load_ivm(central, CompilerFlags(mode=PropagationMode.LAZY))
    central.execute(
        "CREATE TABLE store_aggregates (store VARCHAR, category VARCHAR, "
        "week INTEGER, total_minutes BIGINT)"
    )
    central.execute(
        "CREATE MATERIALIZED VIEW population_trends AS "
        "SELECT category, week, SUM(total_minutes) AS minutes, "
        "COUNT(*) AS contributing_stores "
        "FROM store_aggregates GROUP BY category, week"
    )

    def sync_store(owner: str) -> None:
        """Ship the store's current coarse aggregate to the central system."""
        con, _ = stores[owner]
        central.execute("DELETE FROM store_aggregates WHERE store = ?", [owner])
        for category, week, minutes in con.execute(
            "SELECT category, week, total_minutes FROM shared_aggregate"
        ).rows:
            central.execute(
                "INSERT INTO store_aggregates VALUES (?, ?, ?, ?)",
                [owner, category, week, minutes],
            )

    for owner in stores:
        sync_store(owner)

    result = central.execute(
        "SELECT * FROM population_trends WHERE week = 1 ORDER BY category"
    )
    print("central view, week 1 (no raw rows ever left the stores):")
    print(format_table(result.columns, result.rows))

    # New activity lands in one personal store; its local view refreshes
    # eagerly, the central view refreshes lazily on the next sync+query.
    alice, _ = stores["alice"]
    alice.execute("INSERT INTO activity VALUES ('health', 1, 60, 'checkup')")
    sync_store("alice")
    result = central.execute(
        "SELECT * FROM population_trends WHERE week = 1 ORDER BY category"
    )
    print("\nafter alice logs 60 more health minutes in week 1:")
    print(format_table(result.columns, result.rows))

    # Privacy check: the central system knows only aggregates.
    central_tables = central.catalog.table_names()
    assert "activity" not in central_tables
    raw = central.execute(
        "SELECT COUNT(*) FROM store_aggregates WHERE total_minutes < 5"
    ).scalar()
    print(f"\ncentral tables: {central_tables}")
    print(f"fine-grained rows visible centrally: {raw} (coarse aggregates only) ✓")


if __name__ == "__main__":
    main()
