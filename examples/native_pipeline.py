"""Native pipeline demo: a UNION-regroup view refreshing with zero SQL.

The paper's UNION-regroup materialization strategy folds ΔV into V by
rebuilding the whole table: ``CREATE TABLE scratch AS SELECT ... FROM
(stored UNION ALL signed-ΔV) GROUP BY keys`` and swapping the contents.
Since the full-native-strategies milestone that step — like every other
propagation step — has a native kernel form, so the *entire* refresh of
a UNION-regroup view runs on the vectorized Z-set pipeline without
executing a single SQL statement.

This demo proves it with the same statement-count hook the test suite
uses (``tests/core/test_native_pipeline.py``): ``Connection.
execute_statement`` is wrapped to record every SQL statement, the view
is refreshed, and the recording must stay empty — while the view still
matches the full recompute.

Run:  python examples/native_pipeline.py
"""

from repro import CompilerFlags, Connection, MaterializationStrategy, load_ivm
from repro.core.flags import PropagationMode
from repro.workloads import format_table


def refresh_counting_statements(con: Connection, ivm, view_name: str):
    """Refresh ``view_name`` and return the SQL statements executed."""
    executed = []
    original = con.execute_statement

    def spy(statement, parameters=()):
        executed.append(statement)
        return original(statement, parameters)

    con.execute_statement = spy
    try:
        ivm.refresh(view_name)
    finally:
        con.execute_statement = original
    return executed


def main() -> None:
    con = Connection()
    ivm = load_ivm(
        con,
        CompilerFlags(
            mode=PropagationMode.LAZY,
            strategy=MaterializationStrategy.UNION_REGROUP,
        ),
    )

    con.execute("CREATE TABLE sales (region VARCHAR, amount INTEGER)")
    con.execute(
        "CREATE MATERIALIZED VIEW revenue AS "
        "SELECT region, SUM(amount) AS total, COUNT(*) AS n "
        "FROM sales GROUP BY region"
    )
    con.execute(
        "INSERT INTO sales VALUES "
        "('north', 10), ('north', 5), ('south', 7), ('west', 3)"
    )

    executed = refresh_counting_statements(con, ivm, "revenue")
    print(f"refresh #1 executed {len(executed)} SQL statements")
    assert executed == [], "UNION-regroup refresh must stay off SQL"

    result = con.execute("SELECT region, total, n FROM revenue ORDER BY region")
    print(format_table(result.columns, result.rows))

    # A mixed round: a group dies ('west'), a group shrinks, one appears.
    con.execute("DELETE FROM sales WHERE region = 'west'")
    con.execute("DELETE FROM sales WHERE region = 'north' AND amount = 10")
    con.execute("INSERT INTO sales VALUES ('east', 20)")

    executed = refresh_counting_statements(con, ivm, "revenue")
    print(f"\nrefresh #2 (with a group kill) executed {len(executed)} SQL statements")
    assert executed == [], "UNION-regroup refresh must stay off SQL"

    result = con.execute("SELECT region, total, n FROM revenue ORDER BY region")
    print(format_table(result.columns, result.rows))

    # The compiled SQL script still exists — it is the stored, portable
    # artifact; the native kernels replace its execution, not its text.
    print("\nstored step-2 statements the native regroup kernel replaced:")
    for label, sql in ivm.compiled("revenue").propagation:
        if label.startswith("step2:"):
            print(f"-- {label}")
            print(sql + ";")

    incremental = con.execute(
        "SELECT region, total, n FROM revenue ORDER BY region"
    ).rows
    recomputed = con.execute(
        "SELECT region, SUM(amount), COUNT(*) FROM sales "
        "GROUP BY region ORDER BY region"
    ).rows
    assert incremental == recomputed, (incremental, recomputed)
    print("\nzero-SQL incremental result matches full recomputation ✓")


if __name__ == "__main__":
    main()
