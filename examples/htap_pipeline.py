"""Cross-system IVM for HTAP (the paper's Figure 3 demonstration).

A PostgreSQL stand-in runs the transactional sales workload and captures
deltas with triggers; a DuckDB stand-in attaches it, hosts a materialized
revenue-per-region view (a two-table join aggregation), and incrementally
maintains it with the compiler's SQL plans.  The final comparison mirrors
the demo: query latency with IVM vs. recomputing the analytical query
against the OLTP data.

Run:  python examples/htap_pipeline.py
"""

import time

from repro import CrossSystemPipeline, OLTPSystem
from repro.workloads import format_table, generate_sales_workload


def main() -> None:
    workload = generate_sales_workload(num_customers=300, num_orders=20000)

    oltp = OLTPSystem()
    oltp.execute(workload.SCHEMA)
    customers = oltp.connection.table("customers")
    for row in workload.customers:
        customers.insert(row, coerce=False)
    orders = oltp.connection.table("orders")
    for row in workload.orders:
        orders.insert(row, coerce=False)

    pipeline = CrossSystemPipeline(oltp=oltp)
    pipeline.create_materialized_view(
        "CREATE MATERIALIZED VIEW region_revenue AS "
        "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS orders "
        "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
        "GROUP BY c.region"
    )
    result = pipeline.query("SELECT * FROM region_revenue ORDER BY region")
    print("initial view (hosted on the OLAP side):")
    print(format_table(result.columns, result.rows))

    # Transactional burst on the OLTP side.
    next_oid = workload.next_order_id()
    for i in range(200):
        cust = workload.customers[i % len(workload.customers)][0]
        oltp.execute(
            f"INSERT INTO orders VALUES ({next_oid + i}, '{cust}', 'prod_000', 42)"
        )
    oltp.execute("DELETE FROM orders WHERE amount < 5")
    print(f"\npending OLTP delta rows: {pipeline.pending_changes('region_revenue')}")

    start = time.perf_counter()
    result = pipeline.query("SELECT * FROM region_revenue ORDER BY region")
    ivm_latency = time.perf_counter() - start
    print("\nview after propagating the burst:")
    print(format_table(result.columns, result.rows))

    start = time.perf_counter()
    recomputed = pipeline.query(
        "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS orders "
        "FROM oltp.orders o JOIN oltp.customers c ON o.cust_id = c.cust_id "
        "GROUP BY c.region ORDER BY c.region",
        refresh=False,
    )
    recompute_latency = time.perf_counter() - start

    assert result.rows == recomputed.rows
    print("\nincremental view equals cross-system recomputation ✓")
    print(
        format_table(
            ["approach", "latency"],
            [
                ["query materialized view (IVM)", ivm_latency],
                ["recompute across systems", recompute_latency],
            ],
        )
    )


if __name__ == "__main__":
    main()
