"""Quickstart: the paper's Listing 1/2 walkthrough.

Creates the ``groups`` table, defines a materialized GROUP BY SUM view
through the OpenIVM extension, applies changes, and shows that the view
is maintained incrementally — including the compiled SQL the paper prints
in Listing 2.

Run:  python examples/quickstart.py
"""

from repro import Connection, load_ivm
from repro.workloads import format_table


def main() -> None:
    con = Connection()
    ivm = load_ivm(con)

    # Listing 1: DDL for the IVM setup.
    con.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
    con.execute(
        "CREATE MATERIALIZED VIEW query_groups AS "
        "SELECT group_index, SUM(group_value) AS total_value "
        "FROM groups GROUP BY group_index"
    )

    # The paper's running example: V = {apple -> 5, banana -> 2}.
    con.execute("INSERT INTO groups VALUES ('apple', 5), ('banana', 2)")
    result = con.execute("SELECT * FROM query_groups ORDER BY group_index")
    print("initial view:")
    print(format_table(result.columns, result.rows))

    # ΔV = {apple -> (false, 3), banana -> (true, 1)}: remove 3 units of
    # apple, add 1 unit of banana.  Expected V' = {apple -> 2, banana -> 3}.
    con.execute("DELETE FROM groups WHERE group_index = 'apple'")
    con.execute("INSERT INTO groups VALUES ('apple', 2), ('banana', 1)")
    result = con.execute("SELECT * FROM query_groups ORDER BY group_index")
    print("\nafter the paper's example delta (−3 apple, +1 banana):")
    print(format_table(result.columns, result.rows))

    # Listing 2: the generated SQL instructions.
    print("\ncompiled propagation script (Listing 2):")
    for label, sql in ivm.compiled("query_groups").propagation:
        print(f"-- {label}")
        print(sql + ";")

    # The correctness check visitors run at the demo: incremental result
    # equals recomputation from scratch.
    incremental = con.execute(
        "SELECT * FROM query_groups ORDER BY group_index"
    ).rows
    recomputed = con.execute(
        "SELECT group_index, SUM(group_value) FROM groups "
        "GROUP BY group_index ORDER BY group_index"
    ).rows
    assert incremental == recomputed, (incremental, recomputed)
    print("\nincremental result matches full recomputation ✓")


if __name__ == "__main__":
    main()
