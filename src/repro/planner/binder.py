"""Name and type resolution: AST → bound logical plan.

The binder resolves FROM-clause sources against the catalog, turns column
references into tuple offsets, extracts aggregates, and produces the
logical operator tree.  GROUP BY matching is done on *bound* expressions
(so ``g``, ``t.g`` and ``T.G`` all match the same group key), which is the
behaviour the IVM compiler relies on when it re-binds a view definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.datatypes.types import BOOLEAN, VARCHAR, DataType, type_from_name
from repro.errors import BinderError
from repro.sql import ast
from repro.sql.render import render_expression
from repro.planner.expressions import (
    AggregateCall,
    BoundBetween,
    BoundBinary,
    BoundCase,
    BoundCast,
    BoundColumn,
    BoundConstant,
    BoundExists,
    BoundExpression,
    BoundFunction,
    BoundInList,
    BoundInSubquery,
    BoundIsNull,
    BoundLike,
    BoundParameter,
    BoundSubquery,
    BoundUnary,
)
from repro.planner.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalMaterializedCTE,
    LogicalOperator,
    LogicalOrder,
    LogicalProject,
    LogicalSetOp,
    LogicalValues,
    OutputColumn,
)

if TYPE_CHECKING:
    from repro.catalog.catalog import Catalog

_SCALAR_FUNCTIONS = frozenset(
    """
    COALESCE ABS ROUND FLOOR CEIL CEILING LENGTH STRLEN LOWER UPPER TRIM
    LTRIM RTRIM SUBSTR SUBSTRING CONCAT REPLACE NULLIF GREATEST LEAST MOD
    POWER POW SQRT LN EXP SIGN LEFT RIGHT
    """.split()
)


@dataclass
class _ScopeColumn:
    alias: str  # binding name (table alias or subquery alias), lowercase
    name: str  # column name, original case
    type: DataType


class _Scope:
    """The flattened row layout visible to expressions at one plan level."""

    def __init__(self, columns: list[_ScopeColumn]) -> None:
        self.columns = columns

    def resolve(self, name: str, table: str | None) -> tuple[int, DataType]:
        lowered = name.lower()
        table_lowered = table.lower() if table else None
        matches = [
            (i, col)
            for i, col in enumerate(self.columns)
            if col.name.lower() == lowered
            and (table_lowered is None or col.alias == table_lowered)
        ]
        if not matches:
            qualified = f"{table}.{name}" if table else name
            raise BinderError(f"column {qualified!r} not found")
        if len(matches) > 1:
            qualified = f"{table}.{name}" if table else name
            raise BinderError(f"column reference {qualified!r} is ambiguous")
        index, col = matches[0]
        return index, col.type

    def columns_of(self, table: str | None) -> list[tuple[int, _ScopeColumn]]:
        if table is None:
            return list(enumerate(self.columns))
        lowered = table.lower()
        found = [(i, c) for i, c in enumerate(self.columns) if c.alias == lowered]
        if not found:
            raise BinderError(f"table alias {table!r} not found in FROM clause")
        return found


def bound_key(expr: BoundExpression) -> tuple:
    """A structural, hashable key for bound-expression equality."""
    if isinstance(expr, BoundColumn):
        return ("col", expr.index)
    if isinstance(expr, BoundConstant):
        return ("const", expr.value, expr.type.id.value)
    if isinstance(expr, BoundUnary):
        return ("unary", expr.op, bound_key(expr.operand))
    if isinstance(expr, BoundBinary):
        return ("binary", expr.op, bound_key(expr.left), bound_key(expr.right))
    if isinstance(expr, BoundIsNull):
        return ("isnull", expr.negated, bound_key(expr.operand))
    if isinstance(expr, BoundInList):
        return ("in", expr.negated, bound_key(expr.operand),
                tuple(bound_key(i) for i in expr.items))
    if isinstance(expr, BoundBetween):
        return ("between", expr.negated, bound_key(expr.operand),
                bound_key(expr.low), bound_key(expr.high))
    if isinstance(expr, BoundLike):
        return ("like", expr.negated, bound_key(expr.operand), bound_key(expr.pattern))
    if isinstance(expr, BoundCase):
        return (
            "case",
            bound_key(expr.operand) if expr.operand else None,
            tuple((bound_key(w), bound_key(t)) for w, t in expr.branches),
            bound_key(expr.else_result) if expr.else_result else None,
        )
    if isinstance(expr, BoundCast):
        return ("cast", expr.type.id.value, bound_key(expr.operand))
    if isinstance(expr, BoundFunction):
        return ("func", expr.name.upper(), tuple(bound_key(a) for a in expr.args))
    if isinstance(expr, BoundParameter):
        return ("param", expr.index)
    # Subqueries compare by identity.
    return ("node", id(expr))


class Binder:
    """Binds statements against a catalog."""

    def __init__(self, catalog: "Catalog") -> None:
        self._catalog = catalog
        # Source scope of the most recently bound select core, used to bind
        # ORDER BY keys that reference non-projected source columns.
        self._last_source_scope: _Scope | None = None

    # -- public API --------------------------------------------------------

    def bind_select(
        self,
        select: ast.Select,
        ctes: dict[str, LogicalOperator] | None = None,
    ) -> LogicalOperator:
        """Bind a full SELECT (with CTEs, set ops, ORDER/LIMIT) to a plan."""
        cte_map = dict(ctes) if ctes else {}
        for cte in select.ctes:
            cte_plan = self.bind_select(cte.query, cte_map)
            if cte.columns:
                cte_plan = _rename_columns(cte_plan, cte.columns)
            cte_map[cte.name.lower()] = cte_plan
        plan = self._bind_select_core(select, cte_map)
        source_scope = self._last_source_scope
        for op, right_ast in select.set_ops:
            right = self._bind_select_core(right_ast, cte_map)
            if right.arity != plan.arity:
                raise BinderError(
                    f"set operation arity mismatch: {plan.arity} vs {right.arity}"
                )
            plan = LogicalSetOp(left=plan, right=right, op=op)
        if select.order_by:
            hidden_ok = (
                not select.set_ops
                and not select.distinct
                and source_scope is not None
            )
            plan = self._bind_order_by(
                plan, select.order_by, source_scope if hidden_ok else None
            )
        if select.limit is not None or select.offset is not None:
            limit = _constant_int(select.limit, "LIMIT")
            offset = _constant_int(select.offset, "OFFSET") or 0
            plan = LogicalLimit(child=plan, limit=limit, offset=offset)
        return plan

    def bind_scalar(
        self, expr: ast.Expression, plan_columns: list[OutputColumn]
    ) -> BoundExpression:
        """Bind an expression over a known output schema (UPDATE/DELETE)."""
        scope = _Scope(
            [_ScopeColumn(c.source.lower(), c.name, c.type) for c in plan_columns]
        )
        return self._bind_expression(expr, scope, {})

    # -- SELECT core -----------------------------------------------------

    def _bind_select_core(
        self, select: ast.Select, cte_map: dict[str, LogicalOperator]
    ) -> LogicalOperator:
        if select.from_clause is None:
            plan, scope = self._bind_no_from(select, cte_map)
        else:
            plan, scope = self._bind_table_ref(select.from_clause, cte_map)
            plan = self._bind_select_over(select, plan, scope, cte_map)
        if select.distinct:
            plan = LogicalDistinct(child=plan)
        has_aggregates = bool(select.group_by) or select.having is not None or any(
            not isinstance(item.expr, ast.Star) and _contains_aggregate_ast(item.expr)
            for item in select.items
        )
        self._last_source_scope = None if has_aggregates else scope
        return plan

    def _bind_no_from(
        self, select: ast.Select, cte_map: dict[str, LogicalOperator]
    ) -> tuple[LogicalOperator, _Scope]:
        scope = _Scope([])
        row: list[BoundExpression] = []
        names: list[OutputColumn] = []
        for i, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                raise BinderError("SELECT * requires a FROM clause")
            bound = self._bind_expression(item.expr, scope, cte_map)
            row.append(bound)
            names.append(OutputColumn(_item_name(item, i), bound.type))
        plan: LogicalOperator = LogicalValues(rows=[row], output_columns=names)
        if select.where is not None:
            predicate = self._bind_expression(select.where, scope, cte_map)
            plan = LogicalFilter(child=plan, predicate=_as_where(predicate))
        return plan, scope

    def _bind_select_over(
        self,
        select: ast.Select,
        plan: LogicalOperator,
        scope: _Scope,
        cte_map: dict[str, LogicalOperator],
    ) -> LogicalOperator:
        if select.where is not None:
            if _contains_aggregate_ast(select.where):
                raise BinderError("aggregates are not allowed in WHERE")
            predicate = self._bind_expression(select.where, scope, cte_map)
            plan = LogicalFilter(child=plan, predicate=_as_where(predicate))

        has_aggregates = select.group_by or any(
            _contains_aggregate_ast(item.expr)
            for item in select.items
            if not isinstance(item.expr, ast.Star)
        ) or (select.having is not None)

        if not has_aggregates:
            return self._bind_projection(select.items, plan, scope, cte_map)
        return self._bind_aggregate(select, plan, scope, cte_map)

    def _bind_projection(
        self,
        items: list[ast.SelectItem],
        plan: LogicalOperator,
        scope: _Scope,
        cte_map: dict[str, LogicalOperator],
    ) -> LogicalOperator:
        expressions: list[BoundExpression] = []
        output: list[OutputColumn] = []
        for i, item in enumerate(items):
            if isinstance(item.expr, ast.Star):
                for index, col in scope.columns_of(item.expr.table):
                    expressions.append(BoundColumn(index, col.type, col.name))
                    output.append(OutputColumn(col.name, col.type, col.alias))
                continue
            bound = self._bind_expression(item.expr, scope, cte_map)
            expressions.append(bound)
            output.append(OutputColumn(_item_name(item, i), bound.type))
        return LogicalProject(child=plan, expressions=expressions, output_columns=output)

    # -- aggregation ---------------------------------------------------------

    def _bind_aggregate(
        self,
        select: ast.Select,
        plan: LogicalOperator,
        scope: _Scope,
        cte_map: dict[str, LogicalOperator],
    ) -> LogicalOperator:
        group_bound: list[BoundExpression] = []
        group_names: list[OutputColumn] = []
        group_keys: dict[tuple, int] = {}
        for expr in select.group_by:
            resolved = self._resolve_group_target(expr, select.items)
            bound = self._bind_expression(resolved, scope, cte_map)
            key = bound_key(bound)
            if key in group_keys:
                continue
            group_keys[key] = len(group_bound)
            group_bound.append(bound)
            group_names.append(OutputColumn(_group_name(resolved), bound.type))

        aggregates: list[AggregateCall] = []
        agg_index: dict[tuple, int] = {}

        def intern_aggregate(call: ast.FunctionCall) -> int:
            if len(call.args) > 1:
                raise BinderError(
                    f"aggregate {call.name} takes at most one argument"
                )
            argument: BoundExpression | None = None
            if call.args and not isinstance(call.args[0], ast.Star):
                argument = self._bind_expression(call.args[0], scope, cte_map)
            elif not call.args and call.upper_name != "COUNT":
                raise BinderError(f"aggregate {call.name} requires an argument")
            key = (
                call.upper_name,
                bound_key(argument) if argument is not None else None,
                call.distinct,
            )
            if key in agg_index:
                return agg_index[key]
            agg_index[key] = len(aggregates)
            aggregates.append(
                AggregateCall(
                    function=call.upper_name,
                    argument=argument,
                    distinct=call.distinct,
                )
            )
            return agg_index[key]

        def bind_above(expr: ast.Expression) -> BoundExpression:
            """Bind an expression over the aggregate's output layout."""
            if isinstance(expr, ast.FunctionCall) and expr.upper_name in ast.AGGREGATE_FUNCTIONS:
                slot = intern_aggregate(expr)
                call = aggregates[slot]
                return BoundColumn(
                    len(group_bound) + slot, call.result_type, call.function.lower()
                )
            # A subtree that matches a group key collapses to that key.
            if not isinstance(expr, (ast.Literal, ast.Parameter)):
                try:
                    candidate = self._bind_expression(expr, scope, cte_map)
                except BinderError:
                    candidate = None
                if candidate is not None:
                    key = bound_key(candidate)
                    if key in group_keys:
                        slot = group_keys[key]
                        return BoundColumn(
                            slot, group_bound[slot].type, group_names[slot].name
                        )
            if isinstance(expr, ast.ColumnRef):
                raise BinderError(
                    f"column {expr} must appear in the GROUP BY clause or be "
                    "used in an aggregate function"
                )
            return self._rebuild_bound(expr, bind_above, scope, cte_map)

        agg_output = list(group_names)  # aggregate slots appended below
        # First pass interned aggregates via bind_above; bind items now.
        expressions: list[BoundExpression] = []
        item_columns: list[OutputColumn] = []
        for i, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                raise BinderError("SELECT * cannot be combined with GROUP BY")
            bound = bind_above(item.expr)
            expressions.append(bound)
            item_columns.append(OutputColumn(_item_name(item, i), bound.type))
        having_bound = None
        if select.having is not None:
            having_bound = bind_above(select.having)

        agg_output = list(group_names) + [
            OutputColumn(f"__agg{i}", call.result_type)
            for i, call in enumerate(aggregates)
        ]
        agg_plan: LogicalOperator = LogicalAggregate(
            child=plan,
            groups=group_bound,
            aggregates=aggregates,
            output_columns=agg_output,
        )
        if having_bound is not None:
            agg_plan = LogicalFilter(child=agg_plan, predicate=_as_where(having_bound))
        return LogicalProject(
            child=agg_plan, expressions=expressions, output_columns=item_columns
        )

    @staticmethod
    def _resolve_group_target(
        expr: ast.Expression, items: list[ast.SelectItem]
    ) -> ast.Expression:
        """Resolve GROUP BY ordinals and select-list aliases."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if not 1 <= ordinal <= len(items):
                raise BinderError(f"GROUP BY ordinal {ordinal} out of range")
            target = items[ordinal - 1].expr
            if isinstance(target, ast.Star):
                raise BinderError("cannot GROUP BY a star item")
            return target
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    if not isinstance(item.expr, ast.Star):
                        return item.expr
        return expr

    def _rebuild_bound(
        self,
        expr: ast.Expression,
        recurse,
        scope: _Scope,
        cte_map: dict[str, LogicalOperator],
    ) -> BoundExpression:
        """Rebuild ``expr`` bottom-up, binding children with ``recurse``."""
        if isinstance(expr, ast.Literal):
            return BoundConstant(expr.value)
        if isinstance(expr, ast.Parameter):
            return BoundParameter(expr.index)
        if isinstance(expr, ast.UnaryOp):
            return BoundUnary(op=expr.op, operand=recurse(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            return BoundBinary(op=expr.op, left=recurse(expr.left), right=recurse(expr.right))
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(operand=recurse(expr.operand), negated=expr.negated)
        if isinstance(expr, ast.InList):
            return BoundInList(
                operand=recurse(expr.operand),
                items=[recurse(i) for i in expr.items],
                negated=expr.negated,
            )
        if isinstance(expr, ast.Between):
            return BoundBetween(
                operand=recurse(expr.operand),
                low=recurse(expr.low),
                high=recurse(expr.high),
                negated=expr.negated,
            )
        if isinstance(expr, ast.Like):
            return BoundLike(
                operand=recurse(expr.operand),
                pattern=recurse(expr.pattern),
                negated=expr.negated,
            )
        if isinstance(expr, ast.Case):
            return BoundCase(
                operand=recurse(expr.operand) if expr.operand else None,
                branches=[(recurse(w), recurse(t)) for w, t in expr.branches],
                else_result=recurse(expr.else_result) if expr.else_result else None,
            )
        if isinstance(expr, ast.Cast):
            return BoundCast(
                operand=recurse(expr.operand),
                type=type_from_name(expr.type_name, expr.width),
            )
        if isinstance(expr, ast.FunctionCall):
            upper = expr.upper_name
            if upper in ast.AGGREGATE_FUNCTIONS:
                raise BinderError(f"aggregate {expr.name} is not allowed here")
            if upper not in _SCALAR_FUNCTIONS:
                raise BinderError(f"unknown function {expr.name!r}")
            return BoundFunction(name=upper, args=[recurse(a) for a in expr.args])
        if isinstance(expr, ast.Exists):
            return BoundExists(plan=self.bind_select(expr.query, cte_map), negated=expr.negated)
        if isinstance(expr, ast.ScalarSubquery):
            plan = self.bind_select(expr.query, cte_map)
            if plan.arity != 1:
                raise BinderError("scalar subquery must return exactly one column")
            return BoundSubquery(plan=plan, type=plan.output_columns[0].type)
        raise BinderError(f"cannot bind expression {type(expr).__name__}")

    def _bind_expression(
        self, expr: ast.Expression, scope: _Scope, cte_map: dict[str, LogicalOperator]
    ) -> BoundExpression:
        if isinstance(expr, ast.ColumnRef):
            index, col_type = scope.resolve(expr.name, expr.table)
            return BoundColumn(index, col_type, expr.name)
        if isinstance(expr, ast.Star):
            raise BinderError("* is only allowed in the select list or COUNT(*)")
        if isinstance(expr, ast.InList) and len(expr.items) == 1 and isinstance(
            expr.items[0], ast.ScalarSubquery
        ):
            plan = self.bind_select(expr.items[0].query, cte_map)
            if plan.arity != 1:
                raise BinderError("IN subquery must return exactly one column")
            return BoundInSubquery(
                operand=self._bind_expression(expr.operand, scope, cte_map),
                plan=plan,
                negated=expr.negated,
            )
        if isinstance(expr, ast.FunctionCall) and expr.upper_name in ast.AGGREGATE_FUNCTIONS:
            raise BinderError(
                f"aggregate {expr.name} is not allowed in this context"
            )

        def recurse(child: ast.Expression) -> BoundExpression:
            return self._bind_expression(child, scope, cte_map)

        return self._rebuild_bound(expr, recurse, scope, cte_map)

    # -- FROM clause -------------------------------------------------------

    def _bind_table_ref(
        self, ref: ast.TableRef, cte_map: dict[str, LogicalOperator]
    ) -> tuple[LogicalOperator, _Scope]:
        if isinstance(ref, ast.BaseTableRef):
            return self._bind_base_table(ref, cte_map)
        if isinstance(ref, ast.SubqueryRef):
            plan = self.bind_select(ref.query, cte_map)
            scope = _Scope(
                [
                    _ScopeColumn(ref.alias.lower(), c.name, c.type)
                    for c in plan.output_columns
                ]
            )
            return plan, scope
        if isinstance(ref, ast.JoinRef):
            return self._bind_join(ref, cte_map)
        raise BinderError(f"cannot bind table ref {type(ref).__name__}")

    def _bind_base_table(
        self, ref: ast.BaseTableRef, cte_map: dict[str, LogicalOperator]
    ) -> tuple[LogicalOperator, _Scope]:
        alias = ref.effective_alias.lower()
        if ref.schema is None and ref.name.lower() in cte_map:
            cte_plan = cte_map[ref.name.lower()]
            wrapped = LogicalMaterializedCTE(name=ref.name.lower(), plan=cte_plan)
            scope = _Scope(
                [_ScopeColumn(alias, c.name, c.type) for c in wrapped.output_columns]
            )
            return wrapped, scope
        if ref.schema is None and self._catalog.has_view(ref.name):
            view = self._catalog.view(ref.name)
            plan = self.bind_select(view.query, {})
            scope = _Scope(
                [_ScopeColumn(alias, c.name, c.type) for c in plan.output_columns]
            )
            return plan, scope
        table = self._catalog.table(ref.name, schema=ref.schema)
        columns = [
            OutputColumn(col.name, col.type, ref.effective_alias)
            for col in table.schema.columns
        ]
        plan = LogicalGet(
            table=table.schema.name,
            alias=ref.effective_alias,
            output_columns=columns,
            database=ref.schema or "",
        )
        scope = _Scope(
            [_ScopeColumn(alias, col.name, col.type) for col in table.schema.columns]
        )
        return plan, scope

    def _bind_join(
        self, ref: ast.JoinRef, cte_map: dict[str, LogicalOperator]
    ) -> tuple[LogicalOperator, _Scope]:
        left_plan, left_scope = self._bind_table_ref(ref.left, cte_map)
        right_plan, right_scope = self._bind_table_ref(ref.right, cte_map)
        combined = _Scope(left_scope.columns + right_scope.columns)
        condition: BoundExpression | None = None
        if ref.join_type != "CROSS":
            if ref.using:
                clauses: list[ast.Expression] = []
                for name in ref.using:
                    left_alias = _alias_for(left_scope, name)
                    right_alias = _alias_for(right_scope, name)
                    clauses.append(
                        ast.BinaryOp(
                            op="=",
                            left=ast.ColumnRef(name=name, table=left_alias),
                            right=ast.ColumnRef(name=name, table=right_alias),
                        )
                    )
                merged = clauses[0]
                for clause in clauses[1:]:
                    merged = ast.BinaryOp(op="AND", left=merged, right=clause)
                condition = self._bind_join_condition(merged, left_scope, combined, cte_map)
            elif ref.condition is not None:
                condition = self._bind_join_condition(
                    ref.condition, left_scope, combined, cte_map
                )
            else:
                condition = BoundConstant(True)
        plan = LogicalJoin(
            left=left_plan,
            right=right_plan,
            join_type=ref.join_type,
            condition=condition,
        )
        return plan, combined

    def _bind_join_condition(
        self,
        expr: ast.Expression,
        left_scope: _Scope,
        combined: _Scope,
        cte_map: dict[str, LogicalOperator],
    ) -> BoundExpression:
        return self._bind_expression(expr, combined, cte_map)

    # -- ORDER BY ------------------------------------------------------------

    def _bind_order_by(
        self,
        plan: LogicalOperator,
        order_by: list[ast.OrderItem],
        source_scope: _Scope | None = None,
    ) -> LogicalOperator:
        output = plan.output_columns
        scope = _Scope([_ScopeColumn("", c.name, c.type) for c in output])
        keys: list[tuple[BoundExpression, bool]] = []
        hidden: list[BoundExpression] = []
        visible_arity = len(output)
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                ordinal = expr.value
                if not 1 <= ordinal <= len(output):
                    raise BinderError(f"ORDER BY ordinal {ordinal} out of range")
                bound: BoundExpression = BoundColumn(
                    ordinal - 1, output[ordinal - 1].type, output[ordinal - 1].name
                )
            else:
                bound = self._bind_order_key(
                    expr, scope, source_scope, plan, hidden, visible_arity
                )
            keys.append((bound, item.ascending))
        if hidden and isinstance(plan, LogicalProject):
            # Extend the projection with hidden sort columns, sort, then
            # strip them again — standard SQL's ORDER BY over non-projected
            # source columns.
            plan.expressions = plan.expressions + hidden
            plan.output_columns = plan.output_columns + [
                OutputColumn(f"__order{i}", h.type) for i, h in enumerate(hidden)
            ]
            ordered: LogicalOperator = LogicalOrder(child=plan, keys=keys)
            visible = [
                BoundColumn(i, c.type, c.name)
                for i, c in enumerate(output[:visible_arity])
            ]
            return LogicalProject(
                child=ordered,
                expressions=visible,
                output_columns=list(output[:visible_arity]),
            )
        return LogicalOrder(child=plan, keys=keys)

    def _bind_order_key(
        self,
        expr: ast.Expression,
        scope: _Scope,
        source_scope: _Scope | None,
        plan: LogicalOperator,
        hidden: list[BoundExpression],
        visible_arity: int,
    ) -> BoundExpression:
        try:
            return self._bind_expression(expr, scope, {})
        except BinderError:
            pass
        # ORDER BY t.col where the output column is plain "col": retry with
        # the qualification stripped.
        if isinstance(expr, ast.ColumnRef) and expr.table is not None:
            try:
                return self._bind_expression(ast.ColumnRef(name=expr.name), scope, {})
            except BinderError:
                pass
        # Fall back to the source scope through a hidden projection column.
        if source_scope is not None and isinstance(plan, LogicalProject):
            bound_src = self._bind_expression(expr, source_scope, {})
            hidden.append(bound_src)
            return BoundColumn(
                visible_arity + len(hidden) - 1, bound_src.type, "__order"
            )
        raise BinderError(f"cannot bind ORDER BY expression {expr}")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _contains_aggregate_ast(expr: ast.Expression) -> bool:
    return ast.contains_aggregate(expr)


def _item_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name
    if isinstance(item.expr, ast.FunctionCall):
        return item.expr.name.lower()
    if isinstance(item.expr, ast.Cast) and isinstance(item.expr.operand, ast.ColumnRef):
        return item.expr.operand.name
    return render_expression(item.expr)


def _group_name(expr: ast.Expression) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return render_expression(expr)


def _alias_for(scope: _Scope, column: str) -> str | None:
    lowered = column.lower()
    for col in scope.columns:
        if col.name.lower() == lowered:
            return col.alias or None
    raise BinderError(f"USING column {column!r} not found")


def _as_where(predicate: BoundExpression) -> BoundExpression:
    if predicate.type.id is not BOOLEAN.id:
        # Permissive: treat non-boolean predicates as truthiness, like
        # engines that auto-cast; keep the expression unchanged.
        return predicate
    return predicate


def _constant_int(expr: ast.Expression | None, clause: str) -> int | None:
    if expr is None:
        return None
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
        return expr.value
    raise BinderError(f"{clause} must be an integer literal")


def _rename_columns(plan: LogicalOperator, names: list[str]) -> LogicalOperator:
    if len(names) != plan.arity:
        raise BinderError("CTE column list arity mismatch")
    expressions = [
        BoundColumn(i, c.type, names[i]) for i, c in enumerate(plan.output_columns)
    ]
    output = [
        OutputColumn(names[i], c.type) for i, c in enumerate(plan.output_columns)
    ]
    return LogicalProject(child=plan, expressions=expressions, output_columns=output)


def bind_value_row(
    values: list[ast.Expression], binder: Binder
) -> list[BoundExpression]:
    """Bind one VALUES row (no scope, constants/subqueries only)."""
    scope = _Scope([])
    return [binder._bind_expression(v, scope, {}) for v in values]
