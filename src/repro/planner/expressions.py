"""Bound (resolved) expressions.

The binder turns syntactic :mod:`repro.sql.ast` expressions into these
nodes: column references become tuple offsets into the child operator's
output row, every node carries a :class:`~repro.datatypes.DataType`, and
aggregate calls are split out so that plain expression evaluation never
sees them.  Bound expressions are what the executor compiles into Python
closures, and what the optimizer folds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.datatypes.types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    VARCHAR,
    DataType,
    common_super_type,
)
from repro.errors import BinderError

if TYPE_CHECKING:
    from repro.planner.logical import LogicalOperator


class BoundExpression:
    """Base class; every bound node exposes ``type``."""

    type: DataType


@dataclass
class BoundConstant(BoundExpression):
    value: Any
    type: DataType = VARCHAR

    def __post_init__(self) -> None:
        if self.type is VARCHAR:
            self.type = _infer_literal_type(self.value)


@dataclass
class BoundColumn(BoundExpression):
    """Reference to offset ``index`` in the child operator's output row."""

    index: int
    type: DataType
    name: str = ""


@dataclass
class BoundUnary(BoundExpression):
    op: str
    operand: BoundExpression
    type: DataType = BOOLEAN

    def __post_init__(self) -> None:
        if self.op in ("-", "+"):
            self.type = self.operand.type


@dataclass
class BoundBinary(BoundExpression):
    op: str
    left: BoundExpression
    right: BoundExpression
    type: DataType = BOOLEAN

    def __post_init__(self) -> None:
        self.type = _infer_binary_type(self.op, self.left, self.right)


@dataclass
class BoundIsNull(BoundExpression):
    operand: BoundExpression
    negated: bool = False
    type: DataType = BOOLEAN


@dataclass
class BoundInList(BoundExpression):
    operand: BoundExpression
    items: list[BoundExpression]
    negated: bool = False
    type: DataType = BOOLEAN


@dataclass
class BoundBetween(BoundExpression):
    operand: BoundExpression
    low: BoundExpression
    high: BoundExpression
    negated: bool = False
    type: DataType = BOOLEAN


@dataclass
class BoundLike(BoundExpression):
    operand: BoundExpression
    pattern: BoundExpression
    negated: bool = False
    type: DataType = BOOLEAN


@dataclass
class BoundCase(BoundExpression):
    operand: BoundExpression | None
    branches: list[tuple[BoundExpression, BoundExpression]]
    else_result: BoundExpression | None
    type: DataType = VARCHAR

    def __post_init__(self) -> None:
        result_type: DataType | None = None
        for _, then in self.branches:
            result_type = _unify(result_type, then)
        if self.else_result is not None:
            result_type = _unify(result_type, self.else_result)
        self.type = result_type or VARCHAR


@dataclass
class BoundCast(BoundExpression):
    operand: BoundExpression
    type: DataType = VARCHAR


@dataclass
class BoundFunction(BoundExpression):
    """A scalar (non-aggregate) function call."""

    name: str
    args: list[BoundExpression]
    type: DataType = VARCHAR

    def __post_init__(self) -> None:
        self.type = _infer_function_type(self.name, self.args)


@dataclass
class BoundAggregateRef(BoundExpression):
    """Reference to aggregate slot ``index`` in an Aggregate's output.

    Aggregate outputs are laid out as [group keys..., aggregates...]; the
    index here is absolute within that layout.
    """

    index: int
    type: DataType
    name: str = ""


@dataclass
class BoundSubquery(BoundExpression):
    """Uncorrelated scalar subquery, executed once and cached."""

    plan: "LogicalOperator"
    type: DataType = VARCHAR


@dataclass
class BoundExists(BoundExpression):
    plan: "LogicalOperator"
    negated: bool = False
    type: DataType = BOOLEAN


@dataclass
class BoundInSubquery(BoundExpression):
    operand: BoundExpression
    plan: "LogicalOperator"
    negated: bool = False
    type: DataType = BOOLEAN


@dataclass
class BoundParameter(BoundExpression):
    index: int
    type: DataType = VARCHAR


@dataclass
class AggregateCall:
    """One aggregate computed by a LogicalAggregate."""

    function: str  # SUM / COUNT / AVG / MIN / MAX
    argument: BoundExpression | None  # None for COUNT(*)
    distinct: bool = False
    result_type: DataType = field(default=BIGINT)

    def __post_init__(self) -> None:
        self.result_type = _infer_aggregate_type(self.function, self.argument)


# ---------------------------------------------------------------------------
# Type inference helpers
# ---------------------------------------------------------------------------


def _infer_literal_type(value: Any) -> DataType:
    if value is None:
        return VARCHAR  # NULL literal: type refined by context; VARCHAR is safe
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return BIGINT if abs(value) > 2**31 else INTEGER
    if isinstance(value, float):
        return DOUBLE
    return VARCHAR


def _unify(current: DataType | None, expr: BoundExpression) -> DataType:
    if current is None:
        return expr.type
    if isinstance(expr, BoundConstant) and expr.value is None:
        return current
    try:
        return common_super_type(current, expr.type)
    except Exception:
        return current


def _infer_binary_type(op: str, left: BoundExpression, right: BoundExpression) -> DataType:
    if op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
        return BOOLEAN
    if op == "||":
        return VARCHAR
    if op == "/":
        return DOUBLE
    if op in ("+", "-", "*", "%"):
        if left.type.is_numeric and right.type.is_numeric:
            try:
                return common_super_type(left.type, right.type)
            except Exception:
                return DOUBLE
        if left.type.is_numeric:
            return left.type
        if right.type.is_numeric:
            return right.type
        return DOUBLE
    raise BinderError(f"unknown binary operator {op!r}")


_NUMERIC_FUNCTIONS = {"ABS", "SIGN", "MOD", "GREATEST", "LEAST", "NULLIF"}


def _infer_function_type(name: str, args: list[BoundExpression]) -> DataType:
    upper = name.upper()
    if upper in ("LENGTH", "STRLEN"):
        return BIGINT
    if upper in ("LOWER", "UPPER", "TRIM", "LTRIM", "RTRIM", "SUBSTR",
                 "SUBSTRING", "CONCAT", "REPLACE", "LEFT", "RIGHT"):
        return VARCHAR
    if upper in ("ROUND", "POWER", "POW", "SQRT", "LN", "EXP", "CEIL",
                 "CEILING", "FLOOR"):
        return DOUBLE
    if upper == "COALESCE" or upper in _NUMERIC_FUNCTIONS:
        result: DataType | None = None
        for arg in args:
            result = _unify(result, arg)
        return result or VARCHAR
    return VARCHAR


def _infer_aggregate_type(function: str, argument: BoundExpression | None) -> DataType:
    upper = function.upper()
    if upper == "COUNT":
        return BIGINT
    if argument is None:
        raise BinderError(f"aggregate {function} requires an argument")
    if upper == "AVG":
        return DOUBLE
    if upper == "SUM":
        if argument.type.is_integral:
            return BIGINT
        return DOUBLE if argument.type.is_numeric else argument.type
    # MIN / MAX preserve the argument type.
    return argument.type


def walk_bound(expr: BoundExpression):
    """Yield ``expr`` and all bound descendants, pre-order."""
    yield expr
    children: list[BoundExpression] = []
    if isinstance(expr, BoundUnary):
        children = [expr.operand]
    elif isinstance(expr, BoundBinary):
        children = [expr.left, expr.right]
    elif isinstance(expr, BoundIsNull):
        children = [expr.operand]
    elif isinstance(expr, BoundInList):
        children = [expr.operand, *expr.items]
    elif isinstance(expr, BoundBetween):
        children = [expr.operand, expr.low, expr.high]
    elif isinstance(expr, BoundLike):
        children = [expr.operand, expr.pattern]
    elif isinstance(expr, BoundCase):
        if expr.operand is not None:
            children.append(expr.operand)
        for when, then in expr.branches:
            children.extend((when, then))
        if expr.else_result is not None:
            children.append(expr.else_result)
    elif isinstance(expr, BoundCast):
        children = [expr.operand]
    elif isinstance(expr, BoundFunction):
        children = list(expr.args)
    elif isinstance(expr, BoundInSubquery):
        children = [expr.operand]
    for child in children:
        yield from walk_bound(child)
