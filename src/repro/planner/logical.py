"""Logical query plan operators.

The binder produces this tree; the optimizer rewrites it; the executor
interprets it.  The OpenIVM compiler *also* consumes this tree — its DBSP
rewrite walks a bound logical plan bottom-up and substitutes delta inputs,
exactly as the paper describes DuckDB's optimizer-extension hook doing.

Every operator exposes ``output_columns``: the names and types of the rows
it produces, which downstream binding (and the IVM DDL generator) relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datatypes.types import DataType
from repro.planner.expressions import (
    AggregateCall,
    BoundExpression,
)


@dataclass
class OutputColumn:
    """One column of an operator's output schema."""

    name: str
    type: DataType
    # The binding alias this column is reachable under (e.g. table alias);
    # empty for computed columns.
    source: str = ""


class LogicalOperator:
    """Base class for logical plan nodes."""

    output_columns: list[OutputColumn]

    @property
    def children(self) -> list["LogicalOperator"]:
        return []

    def replace_children(self, new_children: list["LogicalOperator"]) -> None:
        raise NotImplementedError

    @property
    def arity(self) -> int:
        return len(self.output_columns)


@dataclass
class LogicalGet(LogicalOperator):
    """Scan of a stored table (by name; resolved at execution time).

    ``alias`` is the binding name (FROM clause alias); ``database`` is an
    attached-catalog alias for cross-system scans, or empty for local.
    """

    table: str
    alias: str
    output_columns: list[OutputColumn]
    database: str = ""

    @property
    def children(self) -> list[LogicalOperator]:
        return []

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        if new_children:
            raise ValueError("LogicalGet has no children")


@dataclass
class LogicalValues(LogicalOperator):
    """Constant rows (VALUES clause / SELECT without FROM)."""

    rows: list[list[BoundExpression]]
    output_columns: list[OutputColumn]

    @property
    def children(self) -> list[LogicalOperator]:
        return []

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        if new_children:
            raise ValueError("LogicalValues has no children")


@dataclass
class LogicalFilter(LogicalOperator):
    child: LogicalOperator
    predicate: BoundExpression

    def __post_init__(self) -> None:
        self.output_columns = self.child.output_columns

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        (self.child,) = new_children
        self.output_columns = self.child.output_columns


@dataclass
class LogicalProject(LogicalOperator):
    child: LogicalOperator
    expressions: list[BoundExpression]
    output_columns: list[OutputColumn]

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        (self.child,) = new_children


@dataclass
class LogicalAggregate(LogicalOperator):
    """Hash aggregation.

    Output layout: group-key columns first (in ``groups`` order), then one
    column per :class:`AggregateCall`.
    """

    child: LogicalOperator
    groups: list[BoundExpression]
    aggregates: list[AggregateCall]
    output_columns: list[OutputColumn]

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        (self.child,) = new_children


@dataclass
class LogicalJoin(LogicalOperator):
    """Join; output is left columns followed by right columns.

    ``condition`` is bound over the concatenated row.  ``join_type`` is one
    of INNER/LEFT/RIGHT/FULL/CROSS.
    """

    left: LogicalOperator
    right: LogicalOperator
    join_type: str
    condition: BoundExpression | None

    def __post_init__(self) -> None:
        self.output_columns = list(self.left.output_columns) + list(
            self.right.output_columns
        )

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.left, self.right]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        self.left, self.right = new_children
        self.output_columns = list(self.left.output_columns) + list(
            self.right.output_columns
        )


@dataclass
class LogicalSetOp(LogicalOperator):
    """UNION / UNION ALL / EXCEPT / INTERSECT."""

    left: LogicalOperator
    right: LogicalOperator
    op: str

    def __post_init__(self) -> None:
        self.output_columns = list(self.left.output_columns)

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.left, self.right]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        self.left, self.right = new_children
        self.output_columns = list(self.left.output_columns)


@dataclass
class LogicalDistinct(LogicalOperator):
    child: LogicalOperator

    def __post_init__(self) -> None:
        self.output_columns = self.child.output_columns

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        (self.child,) = new_children
        self.output_columns = self.child.output_columns


@dataclass
class LogicalOrder(LogicalOperator):
    child: LogicalOperator
    keys: list[tuple[BoundExpression, bool]]  # (expression, ascending)

    def __post_init__(self) -> None:
        self.output_columns = self.child.output_columns

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        (self.child,) = new_children
        self.output_columns = self.child.output_columns


@dataclass
class LogicalLimit(LogicalOperator):
    child: LogicalOperator
    limit: int | None
    offset: int = 0

    def __post_init__(self) -> None:
        self.output_columns = self.child.output_columns

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        (self.child,) = new_children
        self.output_columns = self.child.output_columns


@dataclass
class LogicalMaterializedCTE(LogicalOperator):
    """A bound CTE body shared by name; executed once per statement."""

    name: str
    plan: LogicalOperator
    output_columns: list[OutputColumn] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.output_columns = self.plan.output_columns

    @property
    def children(self) -> list[LogicalOperator]:
        return [self.plan]

    def replace_children(self, new_children: list[LogicalOperator]) -> None:
        (self.plan,) = new_children
        self.output_columns = self.plan.output_columns


def walk_plan(plan: LogicalOperator):
    """Yield every operator in the tree, pre-order."""
    yield plan
    for child in plan.children:
        yield from walk_plan(child)


def explain(plan: LogicalOperator, indent: int = 0) -> str:
    """Human-readable plan tree (EXPLAIN output)."""
    pad = "  " * indent
    name = type(plan).__name__.removeprefix("Logical").upper()
    detail = ""
    if isinstance(plan, LogicalGet):
        detail = f" {plan.table}" + (f" AS {plan.alias}" if plan.alias != plan.table else "")
        if plan.database:
            detail = f" {plan.database}.{plan.table}"
    elif isinstance(plan, LogicalAggregate):
        detail = f" groups={len(plan.groups)} aggs={[a.function for a in plan.aggregates]}"
    elif isinstance(plan, LogicalJoin):
        detail = f" {plan.join_type}"
    elif isinstance(plan, LogicalSetOp):
        detail = f" {plan.op}"
    cols = ", ".join(f"{c.name}" for c in plan.output_columns)
    lines = [f"{pad}{name}{detail} -> [{cols}]"]
    for child in plan.children:
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)


def plan_source_tables(plan: LogicalOperator) -> list[Any]:
    """All LogicalGet nodes in the plan (the IVM compiler's leaf targets)."""
    return [op for op in walk_plan(plan) if isinstance(op, LogicalGet)]
