"""Query planning: bound expressions, logical operators, binder, optimizer."""

from repro.planner.binder import Binder
from repro.planner.logical import LogicalOperator

__all__ = ["Binder", "LogicalOperator"]
