"""Rule-based logical optimizer.

Three classic rewrites — constant folding, filter pushdown, and
filter/TRUE elimination — plus the *extension rule* mechanism: callables
registered by extension modules run as the final optimization step, which
is exactly where the paper hooks OpenIVM into DuckDB ("as a final step in
the optimization, DuckDB will call the OpenIVM extension rules").
"""

from __future__ import annotations

from typing import Callable

from repro.execution.expression import compile_expression
from repro.planner.expressions import (
    BoundBinary,
    BoundCase,
    BoundCast,
    BoundConstant,
    BoundExpression,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundUnary,
    walk_bound,
)
from repro.planner.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalOperator,
    LogicalProject,
)

OptimizerRule = Callable[[LogicalOperator], LogicalOperator]


class Optimizer:
    """Applies built-in rules, then registered extension rules."""

    def __init__(self) -> None:
        self._extension_rules: list[OptimizerRule] = []

    def register_rule(self, rule: OptimizerRule) -> None:
        """Register an extension optimizer rule (runs after built-ins)."""
        self._extension_rules.append(rule)

    def optimize(self, plan: LogicalOperator) -> LogicalOperator:
        plan = fold_constants(plan)
        plan = remove_trivial_filters(plan)
        plan = pushdown_filters(plan)
        for rule in self._extension_rules:
            plan = rule(plan)
        return plan


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def _is_foldable(expr: BoundExpression) -> bool:
    """True when every node is a pure function of constants."""
    for node in walk_bound(expr):
        if isinstance(node, (BoundConstant,)):
            continue
        if isinstance(
            node,
            (BoundUnary, BoundBinary, BoundIsNull, BoundInList, BoundCase,
             BoundCast, BoundFunction),
        ):
            continue
        return False
    return True


def fold_expression(expr: BoundExpression) -> BoundExpression:
    """Evaluate constant subtrees down to BoundConstant nodes."""
    if isinstance(expr, BoundConstant):
        return expr
    if _is_foldable(expr):
        try:
            value = compile_expression(expr)((), None)
        except Exception:
            return expr
        folded = BoundConstant(value)
        folded.type = expr.type
        return folded
    # Fold children in place (bound expressions are single-owner trees).
    if isinstance(expr, BoundUnary):
        expr.operand = fold_expression(expr.operand)
    elif isinstance(expr, BoundBinary):
        expr.left = fold_expression(expr.left)
        expr.right = fold_expression(expr.right)
        return _simplify_logical(expr)
    elif isinstance(expr, BoundIsNull):
        expr.operand = fold_expression(expr.operand)
    elif isinstance(expr, BoundInList):
        expr.operand = fold_expression(expr.operand)
        expr.items = [fold_expression(i) for i in expr.items]
    elif isinstance(expr, BoundCase):
        if expr.operand is not None:
            expr.operand = fold_expression(expr.operand)
        expr.branches = [
            (fold_expression(w), fold_expression(t)) for w, t in expr.branches
        ]
        if expr.else_result is not None:
            expr.else_result = fold_expression(expr.else_result)
    elif isinstance(expr, BoundCast):
        expr.operand = fold_expression(expr.operand)
    elif isinstance(expr, BoundFunction):
        expr.args = [fold_expression(a) for a in expr.args]
    return expr


def _simplify_logical(expr: BoundBinary) -> BoundExpression:
    """AND/OR identity simplification after folding."""
    if expr.op == "AND":
        if _is_const(expr.left, True):
            return expr.right
        if _is_const(expr.right, True):
            return expr.left
        if _is_const(expr.left, False) or _is_const(expr.right, False):
            return BoundConstant(False)
    if expr.op == "OR":
        if _is_const(expr.left, False):
            return expr.right
        if _is_const(expr.right, False):
            return expr.left
        if _is_const(expr.left, True) or _is_const(expr.right, True):
            return BoundConstant(True)
    return expr


def _is_const(expr: BoundExpression, value) -> bool:
    return isinstance(expr, BoundConstant) and expr.value is value


def fold_constants(plan: LogicalOperator) -> LogicalOperator:
    """Fold constants in every operator's expressions, bottom-up."""
    new_children = [fold_constants(c) for c in plan.children]
    if new_children:
        plan.replace_children(new_children)
    if isinstance(plan, LogicalFilter):
        plan.predicate = fold_expression(plan.predicate)
    elif isinstance(plan, LogicalProject):
        plan.expressions = [fold_expression(e) for e in plan.expressions]
    elif isinstance(plan, LogicalJoin) and plan.condition is not None:
        plan.condition = fold_expression(plan.condition)
    return plan


# ---------------------------------------------------------------------------
# Filter rules
# ---------------------------------------------------------------------------


def remove_trivial_filters(plan: LogicalOperator) -> LogicalOperator:
    """Drop ``WHERE TRUE`` filters produced by folding."""
    new_children = [remove_trivial_filters(c) for c in plan.children]
    if new_children:
        plan.replace_children(new_children)
    if isinstance(plan, LogicalFilter) and _is_const(plan.predicate, True):
        return plan.child
    return plan


def _max_column_index(expr: BoundExpression) -> int:
    from repro.planner.expressions import BoundColumn

    highest = -1
    for node in walk_bound(expr):
        if isinstance(node, BoundColumn):
            highest = max(highest, node.index)
    return highest


def _min_column_index(expr: BoundExpression) -> int:
    from repro.planner.expressions import BoundColumn

    lowest = 1 << 30
    for node in walk_bound(expr):
        if isinstance(node, BoundColumn):
            lowest = min(lowest, node.index)
    return lowest


def _shift_columns(expr: BoundExpression, delta: int) -> None:
    from repro.planner.expressions import BoundColumn

    for node in walk_bound(expr):
        if isinstance(node, BoundColumn):
            node.index += delta


def pushdown_filters(plan: LogicalOperator) -> LogicalOperator:
    """Push filter conjuncts below inner joins when they touch one side.

    Only INNER joins are safe for unconditional pushdown; outer joins keep
    their filters in place (pushing below the null-producing side changes
    results).
    """
    new_children = [pushdown_filters(c) for c in plan.children]
    if new_children:
        plan.replace_children(new_children)
    if not isinstance(plan, LogicalFilter):
        return plan
    child = plan.child
    if not isinstance(child, LogicalJoin) or child.join_type != "INNER":
        return plan
    left_arity = child.left.arity
    conjuncts = _split_conjuncts(plan.predicate)
    left_only: list[BoundExpression] = []
    right_only: list[BoundExpression] = []
    kept: list[BoundExpression] = []
    for conjunct in conjuncts:
        high = _max_column_index(conjunct)
        low = _min_column_index(conjunct)
        if high < left_arity and high >= 0:
            left_only.append(conjunct)
        elif low >= left_arity and low < (1 << 30):
            right_only.append(conjunct)
        else:
            kept.append(conjunct)
    if not left_only and not right_only:
        return plan
    if left_only:
        child.left = LogicalFilter(
            child=child.left, predicate=_join_conjuncts(left_only)
        )
    if right_only:
        for conjunct in right_only:
            _shift_columns(conjunct, -left_arity)
        child.right = LogicalFilter(
            child=child.right, predicate=_join_conjuncts(right_only)
        )
    child.replace_children([child.left, child.right])
    if kept:
        return LogicalFilter(child=child, predicate=_join_conjuncts(kept))
    return child


def _split_conjuncts(expr: BoundExpression) -> list[BoundExpression]:
    if isinstance(expr, BoundBinary) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _join_conjuncts(conjuncts: list[BoundExpression]) -> BoundExpression:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BoundBinary(op="AND", left=result, right=conjunct)
    return result
