"""The standalone OpenIVM command-line compiler.

Paper §2: "the OpenIVM SQL-to-SQL compiler can be used as a standalone
command-line tool".  Subcommands:

* ``openivm compile`` — schema + view definition in, compiled SQL out.
* ``openivm demo`` — the Listing 1/2 walkthrough executed end to end.
* ``openivm bench`` — a quick incremental-vs-recompute comparison.
* ``openivm recover`` — rebuild an engine from a durability directory
  (checkpoint + WAL replay) and report the recovered views.
* ``openivm health`` — JSON health report for a durability directory:
  WAL tail CRC validity, checkpoint epochs, and (after an in-process
  recovery) per-view recompute/degradation status and queue depth.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.core import CompilerFlags, MaterializationStrategy, OpenIVMCompiler
from repro.engine import Connection
from repro.extension import load_ivm
from repro.workloads import format_table, generate_groups_rows, time_call


def _read_arg(value: str) -> str:
    """Treat the argument as a path if it exists, else as literal SQL."""
    path = pathlib.Path(value)
    if path.exists():
        return path.read_text(encoding="utf-8")
    return value


def _flags_from_args(args: argparse.Namespace) -> CompilerFlags:
    return CompilerFlags(
        dialect=args.dialect,
        strategy=MaterializationStrategy(args.strategy),
        hidden_count=args.hidden_count,
    )


def cmd_compile(args: argparse.Namespace) -> int:
    schema_sql = _read_arg(args.schema)
    view_sql = _read_arg(args.view)
    compiler = OpenIVMCompiler.from_schema(schema_sql, _flags_from_args(args))
    compiled = compiler.compile(view_sql)
    output = compiled.script()
    if args.output:
        pathlib.Path(args.output).write_text(output + "\n", encoding="utf-8")
    else:
        print(output)
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    con = Connection()
    load_ivm(con)
    print("-- Listing 1: schema and materialized view")
    con.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
    con.execute("INSERT INTO groups VALUES ('apple', 5), ('banana', 2)")
    con.execute(
        "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, "
        "SUM(group_value) AS total_value FROM groups GROUP BY group_index"
    )
    result = con.execute("SELECT * FROM query_groups ORDER BY 1")
    print(format_table(result.columns, result.sorted()))
    print()
    print("-- applying changes: -3 apple, +1 banana (the paper's example)")
    con.execute("INSERT INTO groups VALUES ('banana', 1)")
    con.execute("DELETE FROM groups WHERE group_index = 'apple' AND group_value = 5")
    con.execute("INSERT INTO groups VALUES ('apple', 2)")
    result = con.execute("SELECT * FROM query_groups ORDER BY 1")
    print(format_table(result.columns, result.sorted()))
    print()
    extension = con.extensions.loaded("openivm")
    print("-- compiled propagation script")
    for label, sql in extension.compiled("query_groups").propagation:
        print(f"-- {label}")
        print(sql + ";")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    rows = generate_groups_rows(args.rows, num_groups=args.groups)
    con = Connection()
    load_ivm(con)
    con.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
    table = con.table("groups")
    for row in rows:
        table.insert(row, coerce=False)
    con.execute(
        "CREATE MATERIALIZED VIEW q AS SELECT group_index, "
        "SUM(group_value) AS total_value FROM groups GROUP BY group_index"
    )
    extension = con.extensions.loaded("openivm")

    def change_and_refresh() -> None:
        con.execute("INSERT INTO groups VALUES ('gfresh', 1)")
        extension.refresh("q")

    incremental, _ = time_call(change_and_refresh, repeat=3)
    recompute, _ = time_call(
        lambda: con.execute(
            "SELECT group_index, SUM(group_value) FROM groups GROUP BY group_index"
        ),
        repeat=3,
    )
    print(
        format_table(
            ["approach", "latency", "speedup"],
            [
                ["incremental refresh (1-row delta)", incremental, ""],
                ["full recomputation", recompute, f"{recompute / incremental:.1f}x"],
            ],
        )
    )
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Recover from ``--dir`` and summarize (optionally verify) the views.

    With ``--verify``, every recovered view is compared against a full
    recomputation of its defining query over the recovered base tables;
    any mismatch makes the command exit non-zero.
    """
    directory = pathlib.Path(args.dir)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    con = Connection.recover(directory)
    extension = con.extensions.loaded("openivm")
    failed = False
    rows = []
    for name in extension.views():
        compiled = extension.compiled(name)
        stored = con.execute(f"SELECT * FROM {name}").rows
        status = "recovered"
        if args.verify:
            recomputed = con.execute(compiled.view_sql)
            width = len(recomputed.columns)
            visible = sorted(tuple(row[:width]) for row in stored)
            if visible == sorted(recomputed.rows):
                status = "ok"
            else:
                status = "MISMATCH"
                failed = True
        rows.append([name, len(stored), status])
    print(format_table(["view", "rows", "status"], rows))
    return 1 if failed else 0


def cmd_health(args: argparse.Namespace) -> int:
    """Report the health of a durability directory as JSON.

    The offline facts (WAL tail validity, torn-tail bytes, checkpoint
    decodability and epochs) are collected *before* any recovery — which
    would truncate the torn tail — so the report describes the directory
    as it sits on disk.  Unless ``--offline`` is given, an in-process
    recovery then adds the per-view section: ``needs_recompute``,
    degradation rung, pending changes, and the ingest-queue counters.
    """
    from repro.storage.checkpoint import durability_health

    directory = pathlib.Path(args.dir)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    report = {"storage": durability_health(directory), "runtime": None}
    healthy = report["storage"]["wal"]["valid"]
    if not args.offline:
        try:
            con = Connection.recover(directory)
        except Exception as error:
            report["runtime"] = {"recover_error": str(error)}
            healthy = False
        else:
            extension = con.extensions.loaded("openivm")
            report["runtime"] = extension.health()
            extension.shutdown()
            healthy = healthy and not any(
                view["needs_recompute"] for view in report["runtime"]["views"]
            )
    print(json.dumps(report, indent=2, sort_keys=True, default=str))
    return 0 if healthy else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="openivm",
        description="OpenIVM: a SQL-to-SQL compiler for incremental computations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser("compile", help="compile a view definition")
    compile_parser.add_argument("--schema", required=True,
                                help="schema DDL (SQL text or a file path)")
    compile_parser.add_argument("--view", required=True,
                                help="CREATE MATERIALIZED VIEW statement (or file)")
    compile_parser.add_argument("--dialect", default="duckdb",
                                choices=["duckdb", "postgres"])
    compile_parser.add_argument(
        "--strategy",
        default="left_join_upsert",
        choices=[s.value for s in MaterializationStrategy],
    )
    compile_parser.add_argument("--hidden-count", action="store_true",
                                help="maintain a hidden COUNT(*) for exact liveness")
    compile_parser.add_argument("--output", help="write the script to this file")
    compile_parser.set_defaults(fn=cmd_compile)

    demo_parser = sub.add_parser("demo", help="run the Listing 1/2 walkthrough")
    demo_parser.set_defaults(fn=cmd_demo)

    bench_parser = sub.add_parser("bench", help="incremental vs recompute timing")
    bench_parser.add_argument("--rows", type=int, default=50000)
    bench_parser.add_argument("--groups", type=int, default=100)
    bench_parser.set_defaults(fn=cmd_bench)

    recover_parser = sub.add_parser(
        "recover", help="recover an engine from a durability directory"
    )
    recover_parser.add_argument(
        "--dir", required=True, help="durability directory (WAL + checkpoints)"
    )
    recover_parser.add_argument(
        "--verify", action="store_true",
        help="recompute every view and compare against the recovered rows",
    )
    recover_parser.set_defaults(fn=cmd_recover)

    health_parser = sub.add_parser(
        "health", help="JSON health report for a durability directory"
    )
    health_parser.add_argument(
        "--dir", required=True, help="durability directory (WAL + checkpoints)"
    )
    health_parser.add_argument(
        "--offline", action="store_true",
        help="report only on-disk facts; skip the in-process recovery",
    )
    health_parser.set_defaults(fn=cmd_health)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
