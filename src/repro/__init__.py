"""OpenIVM reproduction: a SQL-to-SQL compiler for incremental computations.

The package has three layers:

* **Substrate** — an embeddable SQL engine (:class:`repro.Connection`)
  with parser, planner, optimizer, executor, ART-indexed storage,
  triggers and an extension registry; the stand-in for DuckDB/PostgreSQL.
* **Compiler** — :class:`repro.OpenIVMCompiler` turns ``CREATE
  MATERIALIZED VIEW`` definitions into delta-table DDL and DBSP-style
  propagation SQL, in a chosen dialect and materialization strategy.
* **Deployments** — :func:`repro.load_ivm` wires the compiler into a
  connection as a native-IVM extension; :class:`repro.CrossSystemPipeline`
  runs it across two systems (OLTP delta capture → OLAP materialized
  views), the paper's HTAP scenario.

Quickstart::

    from repro import Connection, load_ivm

    con = Connection()
    load_ivm(con)
    con.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
    con.execute("CREATE MATERIALIZED VIEW query_groups AS "
                "SELECT group_index, SUM(group_value) AS total_value "
                "FROM groups GROUP BY group_index")
    con.execute("INSERT INTO groups VALUES ('apple', 5)")
    print(con.execute("SELECT * FROM query_groups").rows)
"""

from repro.engine.connection import Connection
from repro.engine.result import Result
from repro.core.compiler import CompiledView, OpenIVMCompiler
from repro.core.flags import (
    CompilerFlags,
    MaterializationStrategy,
    PropagationMode,
)
from repro.extension.ivm_extension import IVMExtension, load_ivm
from repro.htap.oltp import OLTPSystem
from repro.htap.pipeline import CrossSystemPipeline
from repro.zset.zset import ZSet
from repro.zset.batch import ZSetBatch
from repro.zset.incremental import IndexedJoinState
from repro.errors import (
    IVMError,
    ReproError,
    UnsupportedError,
)

__version__ = "1.0.0"

__all__ = [
    "CompiledView",
    "CompilerFlags",
    "Connection",
    "CrossSystemPipeline",
    "IVMError",
    "IndexedJoinState",
    "IVMExtension",
    "MaterializationStrategy",
    "OLTPSystem",
    "OpenIVMCompiler",
    "PropagationMode",
    "ReproError",
    "Result",
    "UnsupportedError",
    "ZSet",
    "ZSetBatch",
    "load_ivm",
    "__version__",
]
