"""The Z-set: tuples with integer multiplicities.

A Z-set over rows is a finite map row → weight (any integer, including
negative).  Positive weights are insertions/presence, negative weights are
deletions.  The paper: "we associate a weight or multiplicity with every
element in the set ... We use true and false instead of integer weights,
representing respectively insertions and deletions in ΔT" — the boolean
multiplicity column in the emitted SQL is exactly ``weight > 0`` with
tuples of frequency N "modeled with N copies of the same element and
multiplicity 1".
"""

from __future__ import annotations

import numbers
from typing import Any, Callable, Iterable, Iterator


def _check_weight(row: Any, weight: Any) -> None:
    """Z-set weights form the group (ℤ, +): anything non-integral (floats,
    bools, Decimals, ...) silently corrupts the algebra downstream, so it
    is rejected loudly at construction time."""
    if isinstance(weight, bool) or not isinstance(weight, numbers.Integral):
        raise TypeError(
            f"Z-set weight for {row!r} must be an integer, "
            f"got {type(weight).__name__} ({weight!r})"
        )


class ZSet:
    """An immutable-by-convention Z-set with group (+, −) structure."""

    __slots__ = ("_weights",)

    def __init__(self, weights: dict[tuple, int] | None = None) -> None:
        self._weights: dict[tuple, int] = {}
        if weights:
            for row, weight in weights.items():
                _check_weight(row, weight)
                if weight != 0:
                    self._weights[row] = weight

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Iterable[tuple]) -> "ZSet":
        """Each occurrence of a row contributes weight +1."""
        zset = cls()
        for row in rows:
            zset._weights[row] = zset._weights.get(row, 0) + 1
        zset._normalize()
        return zset

    @classmethod
    def deltas(cls, inserts: Iterable[tuple] = (), deletes: Iterable[tuple] = ()) -> "ZSet":
        """Build a delta Z-set from insert (+1) and delete (−1) rows."""
        zset = cls()
        for row in inserts:
            zset._weights[row] = zset._weights.get(row, 0) + 1
        for row in deletes:
            zset._weights[row] = zset._weights.get(row, 0) - 1
        zset._normalize()
        return zset

    def _normalize(self) -> None:
        for row, weight in self._weights.items():
            _check_weight(row, weight)
        for row in [r for r, w in self._weights.items() if w == 0]:
            del self._weights[row]

    # -- inspection -----------------------------------------------------

    def weight(self, row: tuple) -> int:
        return self._weights.get(row, 0)

    def __len__(self) -> int:
        """Number of distinct rows with non-zero weight."""
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def __iter__(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._weights.items())

    def items(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._weights.items())

    def rows(self) -> list[tuple]:
        """Expand to a multiset of rows; requires all weights positive."""
        result: list[tuple] = []
        for row, weight in self._weights.items():
            if weight < 0:
                raise ValueError(
                    f"cannot expand Z-set with negative weight for {row!r}"
                )
            result.extend([row] * weight)
        return result

    def is_set(self) -> bool:
        """True when every weight is exactly 1 (a plain relation)."""
        return all(w == 1 for w in self._weights.values())

    def is_positive(self) -> bool:
        return all(w > 0 for w in self._weights.values())

    # -- group structure ---------------------------------------------------

    def __add__(self, other: "ZSet") -> "ZSet":
        merged = dict(self._weights)
        for row, weight in other._weights.items():
            merged[row] = merged.get(row, 0) + weight
        return ZSet(merged)

    def __sub__(self, other: "ZSet") -> "ZSet":
        merged = dict(self._weights)
        for row, weight in other._weights.items():
            merged[row] = merged.get(row, 0) - weight
        return ZSet(merged)

    def __neg__(self) -> "ZSet":
        return ZSet({row: -w for row, w in self._weights.items()})

    def scale(self, factor: int) -> "ZSet":
        return ZSet({row: w * factor for row, w in self._weights.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZSet):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:  # pragma: no cover - ZSets are not hashed
        raise TypeError("ZSet is unhashable")

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{row!r}→{weight}" for row, weight in sorted(
                self._weights.items(), key=lambda kv: repr(kv[0])
            )
        )
        return f"ZSet({{{entries}}})"

    # -- helpers used by the lifted operators ------------------------------

    def map_rows(self, fn: Callable[[tuple], tuple]) -> "ZSet":
        merged: dict[tuple, int] = {}
        for row, weight in self._weights.items():
            mapped = fn(row)
            merged[mapped] = merged.get(mapped, 0) + weight
        return ZSet(merged)

    def filter_rows(self, predicate: Callable[[tuple], bool]) -> "ZSet":
        return ZSet(
            {row: w for row, w in self._weights.items() if predicate(row)}
        )

    def distinct(self) -> "ZSet":
        """Set semantics: weight 1 for every row with positive weight."""
        return ZSet({row: 1 for row, w in self._weights.items() if w > 0})
