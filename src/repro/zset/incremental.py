"""Differentiation / integration, reference delta computations, and the
persistent indexed join state.

These are the D and I operators of DBSP as the paper states them:

    D:  ΔT = T' − T          and   ΔV = V' − V
    I:  T + ΔT = T'          and   V + ΔV = V'

:func:`delta_view` is the *specification* of IVM — compute the view on the
old and new integrated states and difference them.  The compiler's output
must produce exactly this ΔV effect on the materialized table, so tests
run both and compare.

:class:`IndexedJoinState` is the *implementation-grade* form of the
three-term join delta: instead of rescanning the full stored Z-set on
every propagation, each side keeps its integrated state in a per-key index
backed by the ART of :mod:`repro.storage.art`, so a delta batch only
touches the keys it actually contains.  :class:`GroupLivenessState` and
:class:`GroupExtremaState` are the same idea for the two non-invertible
maintenance questions — is a group still alive, and what is its MIN/MAX
after a retraction — each integrating exactly the auxiliary per-group
structure that answers its question in O(log n) instead of a rescan.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence
from zlib import crc32

import numpy as np

from repro.storage.art import ARTIndex
from repro.storage.keys import decode_key, encode_key
from repro.zset.batch import ZSetBatch
from repro.zset.zset import ZSet

Query = Callable[..., ZSet]


def shard_of(encoded: bytes, shard_count: int) -> int:
    """Stable shard id for a memcomparable key encoding.

    CRC32 rather than ``hash(bytes)``: Python's bytes hash is salted per
    process, and shard routing must be deterministic so reloads and
    differential-oracle replays land every key on the same shard.
    """
    return crc32(encoded) % shard_count


def delta_view(query: Query, tables: list[ZSet], deltas: list[ZSet]) -> ZSet:
    """ΔV = Q(T1+ΔT1, ..., Tn+ΔTn) − Q(T1, ..., Tn).

    Works for *any* query, linear or not — this is the brute-force
    differentiation that incremental plans must be equivalent to.
    """
    if len(tables) != len(deltas):
        raise ValueError("tables and deltas must align")
    new_tables = [t + d for t, d in zip(tables, deltas)]
    return query(*new_tables) - query(*tables)


def integrate(state: ZSet, delta: ZSet) -> ZSet:
    """I: fold a delta into the integrated state."""
    return state + delta


def incremental_join_delta(
    left: ZSet,
    delta_left: ZSet,
    right: ZSet,
    delta_right: ZSet,
    join: Callable[[ZSet, ZSet], ZSet],
) -> ZSet:
    """The three-term bilinear join delta (paper: "the incremental form of
    a join consists of three relational join operators").

    With OLD states on both sides:

        Δ(A ⋈ B) = ΔA ⋈ B  +  A ⋈ ΔB  +  ΔA ⋈ ΔB

    (Equivalently, with NEW states the last term is subtracted; the
    compiler emits the new-state form because base tables are updated
    before propagation runs.)
    """
    return (
        join(delta_left, right)
        + join(left, delta_right)
        + join(delta_left, delta_right)
    )


# ---------------------------------------------------------------------------
# Persistent group liveness state
# ---------------------------------------------------------------------------


class GroupLivenessState:
    """Exact per-group row counters — the I operator over COUNT(*) deltas.

    Views without a stored liveness column (a visible SUM, no COUNT(*))
    leave the SQL path only the paper's imprecise ``DELETE ... WHERE
    sum = 0`` test, which both deletes live groups whose values genuinely
    sum to zero and keeps dead groups whose float sums carry residue.
    This state integrates the *weighted count* of every group instead —
    an exact integer, so cancellation is exact — and reports the groups
    whose count reaches zero.  It is persistent across refreshes, like
    :class:`IndexedJoinState`, and is seeded from a COUNT(*) recompute at
    view-creation time.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def live_groups(self) -> int:
        """Number of groups currently alive — an O(1) planner signal."""
        return len(self._counts)

    def count(self, key: tuple) -> int:
        return self._counts.get(key, 0)

    def load(self, entries: Iterable[tuple[tuple, int]]) -> None:
        """Seed the counters with ``(key, count)`` pairs."""
        self._counts = {key: int(count) for key, count in entries}

    def dump(self) -> list[tuple[tuple, int]]:
        """Checkpoint image: every ``(key, count)`` pair.  ``load`` of a
        dump reproduces the state exactly."""
        return list(self._counts.items())

    def apply(
        self, keys: Sequence[tuple], nets: Sequence[int]
    ) -> list[tuple]:
        """Integrate one refresh round's per-group count deltas.

        Returns the keys whose integrated count dropped to zero (or below)
        this round — the groups step 3 must delete.  Dead groups are
        removed from the state so a later re-insert starts fresh.
        """
        dead: list[tuple] = []
        for key, net in zip(keys, nets):
            count = self._counts.get(key, 0) + int(net)
            if count <= 0:
                self._counts.pop(key, None)
                dead.append(key)
            else:
                self._counts[key] = count
        return dead


# ---------------------------------------------------------------------------
# Persistent per-group extrema state (MIN/MAX retraction)
# ---------------------------------------------------------------------------


class GroupExtremaState:
    """Ordered multiset of aggregate input values per group — the I
    operator over one MIN/MAX column's source values.

    MIN/MAX retraction is not invertible from the stored extremum alone:
    deleting the current extremum needs the runner-up, which the
    materialized row no longer carries.  The SQL fallback (step 2b)
    answers that with a full per-group rescan of the base tables —
    O(|base|) per touched group.  This state instead integrates the
    weighted count of every (group, value) pair: an outer ART maps the
    memcomparable group key to a per-group inner ART over the encoded
    value, whose leaves hold mutable ``[value, count]`` cells.  The
    ordered ART makes the post-retraction extremum one outer descent plus
    one leftmost/rightmost edge walk — O(log n) per touched group.

    Like :class:`GroupLivenessState` it is persistent across refreshes,
    fed source-level deltas by the native step 1, and seeded from a
    ``GROUP BY key, value`` COUNT(*) recompute at view-creation time.
    NULL values never enter the state (SQL MIN/MAX skip NULLs), so an
    all-NULL group reads back as None — the SQL answer.
    """

    __slots__ = ("_art",)

    def __init__(self) -> None:
        self._art = ARTIndex()

    def __len__(self) -> int:
        """Number of groups currently holding at least one value."""
        return len(self._art)

    @property
    def group_count(self) -> int:
        """Groups with at least one value — an O(1) planner signal."""
        return len(self._art)

    def load(self, entries: Iterable[tuple[tuple, object, int]]) -> None:
        """Seed with ``(group_key, value, count)`` triples."""
        self._art = ARTIndex()
        for key, value, count in entries:
            self.apply([key], [value], [count])

    def dump(self) -> list[tuple[tuple, object, int]]:
        """Checkpoint image: ``(group_key, value, count)`` triples in
        (group, value) key order.  Group keys are rebuilt through
        :func:`~repro.storage.keys.decode_key`, so their numbers come
        back as floats — encoding-equivalent to the originals (the state
        addresses groups by encoded bytes), and ``load`` of a dump
        answers every ``extremum`` query identically.  Values keep their
        original objects: the inner cells store them verbatim."""
        out: list[tuple[tuple, object, int]] = []
        for group_encoded, payloads in self._art.items():
            key = tuple(decode_key(group_encoded))
            bucket: ARTIndex = payloads[0]
            for _, cells in bucket.items():
                value, count = cells[0]
                out.append((key, value, count))
        return out

    def apply(self, keys: Sequence[tuple], values: Sequence, nets) -> None:
        """Integrate one refresh round's per-(group, value) count deltas.

        Counts that reach zero drop the value cell; groups left empty
        drop entirely, so a later re-insert starts fresh.
        """
        for key, value, net in zip(keys, values, nets):
            net = int(net)
            if net == 0 or value is None:
                continue
            group_key = encode_key(key)
            found = self._art.search(group_key)
            bucket = found[0] if found else None
            if bucket is None:
                if net < 0:
                    continue  # retraction of a value never integrated
                bucket = ARTIndex()
                self._art.insert(group_key, bucket)
            value_key = encode_key((value,))
            cells = bucket.search(value_key)
            if cells:
                cell = cells[0]
                cell[1] += net
                if cell[1] <= 0:
                    bucket.delete(value_key)
            elif net > 0:
                bucket.insert(value_key, [value, net])
            if len(bucket) == 0:
                self._art.delete(group_key)

    def extremum(self, key: tuple, want_max: bool):
        """Current MIN (or MAX) of ``key``'s multiset, or None when the
        group holds no non-NULL values."""
        found = self._art.search(encode_key(key))
        if not found:
            return None
        bucket: ARTIndex = found[0]
        item = bucket.last_item() if want_max else bucket.first_item()
        if item is None:
            return None
        return item[1][0][0]  # (key, [cell]) -> cell -> original value


# ---------------------------------------------------------------------------
# Persistent indexed join state
# ---------------------------------------------------------------------------


class _SideIndex:
    """One join side's integrated Z-set, indexed by encoded join key.

    The ART maps each memcomparable key encoding to a single mutable
    ``dict[row, weight]`` payload, so point lookups cost one tree descent
    and integration of a delta batch touches only the keys in the batch.
    """

    __slots__ = ("key_ordinals", "_art", "_row_count")

    def __init__(self, key_ordinals: Sequence[int]) -> None:
        self.key_ordinals = list(key_ordinals)
        self._art = ARTIndex()
        self._row_count = 0

    def __len__(self) -> int:
        return self._row_count

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[i] for i in self.key_ordinals)

    def lookup(self, key: tuple) -> dict[tuple, int]:
        """Rows stored under ``key`` (empty dict when absent)."""
        found = self._art.search(encode_key(key))
        return found[0] if found else {}

    def integrate(self, batch: ZSetBatch) -> None:
        """Fold a delta batch into the state (I operator), per key."""
        for row, weight in batch.consolidate().iter_entries():
            key = self.key_of(row)
            if any(v is None for v in key):
                continue  # NULL keys can never join; don't store them
            encoded = encode_key(key)
            found = self._art.search(encoded)
            if found:
                bucket = found[0]
            else:
                bucket = {}
                self._art.insert(encoded, bucket)
            new_weight = bucket.get(row, 0) + weight
            if new_weight == 0:
                if row in bucket:
                    del bucket[row]
                    self._row_count -= 1
            else:
                if row not in bucket:
                    self._row_count += 1
                bucket[row] = new_weight

    def integrate_grouped(
        self, groups: "dict[tuple, list[tuple[tuple, int]]]"
    ) -> None:
        """Fold delta entries pre-grouped by join key: one key encoding
        and one tree descent per *distinct* key instead of per entry —
        the grouped counterpart of :meth:`integrate`, and the integration
        path of the sharded join state (skewed deltas revisit the same
        few keys, so per-row descents dominate the flat loop)."""
        for key, entries in groups.items():
            encoded = encode_key(key)
            found = self._art.search(encoded)
            if found:
                bucket = found[0]
            else:
                bucket = {}
                self._art.insert(encoded, bucket)
            for row, weight in entries:
                new_weight = bucket.get(row, 0) + weight
                if new_weight == 0:
                    if row in bucket:
                        del bucket[row]
                        self._row_count -= 1
                else:
                    if row not in bucket:
                        self._row_count += 1
                    bucket[row] = new_weight

    def bulk_load(self, rows: Iterable[tuple]) -> None:
        """Initial build from base rows (weight +1 each), via the chunked
        ART construction path used for CREATE-time index builds."""
        self.load_weighted((row, 1) for row in rows)

    def load_weighted(self, entries: Iterable[tuple[tuple, int]]) -> None:
        """Build from ``(row, weight)`` pairs (the checkpoint image
        shape); zero-weight survivors are dropped like ``integrate``
        would."""
        buckets: dict[tuple, dict[tuple, int]] = {}
        for row, weight in entries:
            key = self.key_of(row)
            if any(v is None for v in key):
                continue
            bucket = buckets.setdefault(key, {})
            new_weight = bucket.get(row, 0) + int(weight)
            if new_weight == 0:
                bucket.pop(row, None)
            else:
                bucket[row] = new_weight
        built = [
            (encode_key(key), bucket)
            for key, bucket in buckets.items()
            if bucket
        ]
        self._row_count = sum(len(b) for _, b in built)
        built.sort(key=lambda kv: kv[0])
        self._art = ARTIndex.build_chunked(built)

    def dump(self) -> list[tuple[tuple, int]]:
        """Checkpoint image: every stored ``(row, weight)`` pair, in key
        order.  ``load_weighted`` of a dump reproduces the state."""
        out: list[tuple[tuple, int]] = []
        for _, payloads in self._art.items():
            for row, weight in payloads[0].items():
                out.append((row, weight))
        return out


class IndexedJoinState:
    """Incremental equi-join with ART-indexed per-key state on both sides.

    Maintains A and B (as Z-sets over their row tuples) and answers

        Δ(A ⋈ B) = ΔA ⋈ B  +  A ⋈ ΔB  +  ΔA ⋈ ΔB

    per update *without* rescanning A or B: the ΔA⋈B term probes B's index
    once per distinct key in ΔA (and symmetrically), so propagation cost is
    O(|Δ| · matches), independent of |A| + |B|.  After computing the output
    delta both deltas are integrated, keeping the state consistent for the
    next round.
    """

    def __init__(
        self,
        left_key: Sequence[int],
        right_key: Sequence[int],
        left_out: Sequence[int] | None = None,
        right_out: Sequence[int] | None = None,
    ) -> None:
        self._left = _SideIndex(left_key)
        self._right = _SideIndex(right_key)
        self._left_out = None if left_out is None else list(left_out)
        self._right_out = None if right_out is None else list(right_out)

    # -- state inspection -------------------------------------------------

    @property
    def left_rows(self) -> int:
        return len(self._left)

    @property
    def right_rows(self) -> int:
        return len(self._right)

    @property
    def total_rows(self) -> int:
        """Integrated rows across both sides — an O(1) planner signal
        (each side index maintains a running row count)."""
        return len(self._left) + len(self._right)

    # -- loading -----------------------------------------------------------

    def load_left(self, rows: Iterable[tuple]) -> None:
        self._left.bulk_load(rows)

    def load_right(self, rows: Iterable[tuple]) -> None:
        self._right.bulk_load(rows)

    def dump(self) -> list[tuple[int, tuple, int]]:
        """Checkpoint image: ``(side, row, weight)`` triples (side 0 is
        left, 1 is right).  ``load_dump`` reproduces the state."""
        return [
            (side, row, weight)
            for side, index in ((0, self._left), (1, self._right))
            for row, weight in index.dump()
        ]

    def load_dump(self, entries: Iterable[tuple[int, tuple, int]]) -> None:
        """Rebuild both sides from a :meth:`dump` image."""
        sides: tuple[list, list] = ([], [])
        for side, row, weight in entries:
            sides[side].append((row, weight))
        self._left.load_weighted(sides[0])
        self._right.load_weighted(sides[1])

    def rewind(self, delta_left: ZSetBatch, delta_right: ZSetBatch) -> None:
        """Back the state out of deltas that are already *in* the loaded
        base rows but not yet propagated (pending ΔT at load time)."""
        self._left.integrate(-delta_left.consolidate())
        self._right.integrate(-delta_right.consolidate())

    # -- the three-term delta ----------------------------------------------

    def apply(
        self, delta_left: ZSetBatch, delta_right: ZSetBatch
    ) -> ZSetBatch:
        """Output delta for one round of input deltas; integrates them."""
        delta_left = delta_left.consolidate()
        delta_right = delta_right.consolidate()

        pieces: list[tuple[list[tuple], list[tuple], list[int]]] = []
        # ΔA ⋈ B and ΔA ⋈ ΔB share the ΔA probe loop: build a transient
        # key index over ΔB once, then per ΔA entry hit both B's ART and
        # the ΔB index.
        db_index: dict[tuple, list[tuple[tuple, int]]] = {}
        for row, weight in delta_right.iter_entries():
            key = self._right.key_of(row)
            if any(v is None for v in key):
                continue
            db_index.setdefault(key, []).append((row, weight))

        lrows: list[tuple] = []
        rrows: list[tuple] = []
        wprod: list[int] = []
        for lrow, lweight in delta_left.iter_entries():
            key = self._left.key_of(lrow)
            if any(v is None for v in key):
                continue
            stored = self._right.lookup(key)
            for rrow, rweight in stored.items():
                lrows.append(lrow)
                rrows.append(rrow)
                wprod.append(lweight * rweight)
            for rrow, rweight in db_index.get(key, ()):
                lrows.append(lrow)
                rrows.append(rrow)
                wprod.append(lweight * rweight)
        # A ⋈ ΔB: probe A's index per ΔB entry (old A — ΔA not yet folded).
        for rrow, rweight in delta_right.iter_entries():
            key = self._right.key_of(rrow)
            if any(v is None for v in key):
                continue
            stored = self._left.lookup(key)
            for lrow, lweight in stored.items():
                lrows.append(lrow)
                rrows.append(rrow)
                wprod.append(lweight * rweight)

        self._left.integrate(delta_left)
        self._right.integrate(delta_right)

        left_out = self._left_out
        right_out = self._right_out
        if not lrows:
            left_arity = len(left_out) if left_out is not None else (
                delta_left.arity
            )
            right_arity = len(right_out) if right_out is not None else (
                delta_right.arity
            )
            return ZSetBatch.empty(left_arity + right_arity)
        left_batch = ZSetBatch.from_rows(lrows, wprod)
        right_batch = ZSetBatch.from_rows(rrows, np.ones(len(rrows), dtype=np.int64))
        if left_out is None:
            left_out = range(left_batch.arity)
        if right_out is None:
            right_out = range(right_batch.arity)
        columns = [left_batch.columns[j] for j in left_out]
        columns += [right_batch.columns[j] for j in right_out]
        return ZSetBatch(columns, left_batch.weights).consolidate()


# ---------------------------------------------------------------------------
# Sharded wrappers (hash-partitioned incremental state)
# ---------------------------------------------------------------------------


class ShardedJoinState:
    """N-way hash-partitioned :class:`IndexedJoinState`.

    Same interface (``load_left`` / ``load_right`` / ``rewind`` /
    ``apply``) plus per-shard entry points (``route_left`` /
    ``route_right`` / ``apply_shard``) so a parallel refresh can fan the
    shards out to worker threads and merge their output deltas behind a
    barrier.  Keys are routed by :func:`shard_of` over the memcomparable
    encoding, so each shard owns a disjoint key range of both side
    indexes.

    Beyond the partitioning, ``apply_shard`` upgrades the probe loops:
    deltas are grouped by join key first, so each distinct key pays one
    encoding + one ART descent on each side, not one per delta row.
    Under the skewed distributions sharding targets, that collapses the
    dominant per-row cost of the flat :meth:`IndexedJoinState.apply`
    loop.
    """

    def __init__(
        self,
        left_key: Sequence[int],
        right_key: Sequence[int],
        left_out: Sequence[int] | None = None,
        right_out: Sequence[int] | None = None,
        shard_count: int = 2,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = int(shard_count)
        self._left_key = list(left_key)
        self._right_key = list(right_key)
        self._lefts = [_SideIndex(left_key) for _ in range(self.shard_count)]
        self._rights = [_SideIndex(right_key) for _ in range(self.shard_count)]
        self._left_out = None if left_out is None else list(left_out)
        self._right_out = None if right_out is None else list(right_out)
        # Delta entries routed to each shard in the last apply round —
        # the numerator of the refresh skew ratio.
        self.last_shard_loads = [0] * self.shard_count
        # Input arities observed by the last route_* call (the grouped
        # route drops the batch shape, but an empty shard's output batch
        # still needs it when no output projection was configured).
        self._left_arity = 0
        self._right_arity = 0

    # -- state inspection -------------------------------------------------

    @property
    def left_rows(self) -> int:
        return sum(len(side) for side in self._lefts)

    @property
    def right_rows(self) -> int:
        return sum(len(side) for side in self._rights)

    @property
    def total_rows(self) -> int:
        """Integrated rows across all shards of both sides — O(shards)."""
        return self.left_rows + self.right_rows

    @property
    def max_shard_load(self) -> int:
        """Hottest shard's delta-row load in the last apply round — the
        planner's skew signal (O(shards), no scanning)."""
        return max(self.last_shard_loads, default=0)

    # -- loading -----------------------------------------------------------

    def _load(self, rows: Iterable[tuple], sides, key_ordinals) -> None:
        buckets: list[list[tuple]] = [[] for _ in sides]
        for row in rows:
            key = tuple(row[i] for i in key_ordinals)
            if any(v is None for v in key):
                continue
            buckets[shard_of(encode_key(key), self.shard_count)].append(row)
        for side, bucket in zip(sides, buckets):
            side.bulk_load(bucket)

    def load_left(self, rows: Iterable[tuple]) -> None:
        self._load(rows, self._lefts, self._left_key)

    def load_right(self, rows: Iterable[tuple]) -> None:
        self._load(rows, self._rights, self._right_key)

    def dump(self) -> list[tuple[int, tuple, int]]:
        """Checkpoint image in the :meth:`IndexedJoinState.dump` shape —
        shard structure is not serialized; ``load_dump`` re-routes."""
        return [
            (side, row, weight)
            for side, indexes in ((0, self._lefts), (1, self._rights))
            for index in indexes
            for row, weight in index.dump()
        ]

    def load_dump(self, entries: Iterable[tuple[int, tuple, int]]) -> None:
        """Rebuild from a dump image (sharded or unsharded origin),
        routing every row to its key's shard."""
        parts: tuple[list[list], list[list]] = (
            [[] for _ in range(self.shard_count)],
            [[] for _ in range(self.shard_count)],
        )
        ordinals = (self._left_key, self._right_key)
        for side, row, weight in entries:
            key = tuple(row[i] for i in ordinals[side])
            if any(v is None for v in key):
                continue
            shard = shard_of(encode_key(key), self.shard_count)
            parts[side][shard].append((row, weight))
        for index, part in zip(self._lefts, parts[0]):
            index.load_weighted(part)
        for index, part in zip(self._rights, parts[1]):
            index.load_weighted(part)

    def rewind(self, delta_left: ZSetBatch, delta_right: ZSetBatch) -> None:
        for side, groups in zip(self._lefts, self.route_left(-delta_left)):
            side.integrate_grouped(groups)
        for side, groups in zip(self._rights, self.route_right(-delta_right)):
            side.integrate_grouped(groups)

    # -- routing -----------------------------------------------------------

    def _route(
        self, batch: ZSetBatch, key_ordinals: Sequence[int]
    ) -> "list[dict[tuple, list[tuple[tuple, int]]]]":
        """Split a consolidated delta batch into one ``key -> entries``
        dict per shard (by join-key hash).  Routing and grouping are one
        pass: ``apply_shard`` consumes the dicts directly, so each entry
        is materialized once and each *distinct* key is encoded once for
        both the shard hash and the later ART descent.  NULL-keyed
        entries are dropped — they can never join, matching the
        unsharded probe loop."""
        shards: list[dict[tuple, list[tuple[tuple, int]]]] = [
            {} for _ in range(self.shard_count)
        ]
        batch = batch.consolidate()
        if len(batch) == 0:
            return shards
        count = self.shard_count
        columns = batch.columns
        key_columns = [columns[i] for i in key_ordinals]
        # One C-level pass: zip materializes the row tuples and key
        # tuples without a per-row Python comprehension.
        rows = zip(*columns)
        keys = (
            zip(*key_columns)
            if len(key_columns) != 1
            else ((value,) for value in key_columns[0])
        )
        key_bucket: dict[tuple, list] = {}
        for row, key, weight in zip(rows, keys, batch.weights.tolist()):
            bucket = key_bucket.get(key)
            if bucket is None:
                if any(v is None for v in key):
                    continue
                target = shards[
                    0 if count == 1 else shard_of(encode_key(key), count)
                ]
                key_bucket[key] = bucket = target.setdefault(key, [])
            bucket.append((row, weight))
        return shards

    def route_left(
        self, batch: ZSetBatch
    ) -> "list[dict[tuple, list[tuple[tuple, int]]]]":
        self._left_arity = batch.arity
        return self._route(batch, self._left_key)

    def route_right(
        self, batch: ZSetBatch
    ) -> "list[dict[tuple, list[tuple[tuple, int]]]]":
        self._right_arity = batch.arity
        return self._route(batch, self._right_key)

    # -- the three-term delta, per shard ------------------------------------

    def apply_shard(
        self, shard: int, dl_groups: dict, dr_groups: dict
    ) -> ZSetBatch:
        """One shard's output delta (three-term join over its key range)
        from the pre-grouped deltas ``route_left``/``route_right``
        produced; integrates them into the shard's side indexes.  Safe
        to run concurrently across *different* shards — each touches only
        its own pair of ARTs."""
        left = self._lefts[shard]
        right = self._rights[shard]
        self.last_shard_loads[shard] = sum(
            len(entries) for entries in dl_groups.values()
        ) + sum(len(entries) for entries in dr_groups.values())

        lrows: list[tuple] = []
        rrows: list[tuple] = []
        wprod: list[int] = []
        # ΔA ⋈ B and ΔA ⋈ ΔB: one stored-side descent per distinct ΔA
        # key, shared by every ΔA entry under that key.
        for key, lentries in dl_groups.items():
            stored = right.lookup(key)
            fresh = dr_groups.get(key)
            if not stored and not fresh:
                continue
            for lrow, lweight in lentries:
                for rrow, rweight in stored.items():
                    lrows.append(lrow)
                    rrows.append(rrow)
                    wprod.append(lweight * rweight)
                if fresh:
                    for rrow, rweight in fresh:
                        lrows.append(lrow)
                        rrows.append(rrow)
                        wprod.append(lweight * rweight)
        # A ⋈ ΔB (old A — ΔA not yet folded), one descent per ΔB key.
        for key, rentries in dr_groups.items():
            stored = left.lookup(key)
            if not stored:
                continue
            for rrow, rweight in rentries:
                for lrow, lweight in stored.items():
                    lrows.append(lrow)
                    rrows.append(rrow)
                    wprod.append(lweight * rweight)

        left.integrate_grouped(dl_groups)
        right.integrate_grouped(dr_groups)

        left_out = self._left_out
        right_out = self._right_out
        if not lrows:
            left_arity = (
                len(left_out) if left_out is not None else self._left_arity
            )
            right_arity = (
                len(right_out) if right_out is not None else self._right_arity
            )
            return ZSetBatch.empty(left_arity + right_arity)
        left_batch = ZSetBatch.from_rows(lrows, wprod)
        right_batch = ZSetBatch.from_rows(
            rrows, np.ones(len(rrows), dtype=np.int64)
        )
        if left_out is None:
            left_out = range(left_batch.arity)
        if right_out is None:
            right_out = range(right_batch.arity)
        columns = [left_batch.columns[j] for j in left_out]
        columns += [right_batch.columns[j] for j in right_out]
        return ZSetBatch(columns, left_batch.weights).consolidate()

    def apply(
        self, delta_left: ZSetBatch, delta_right: ZSetBatch
    ) -> ZSetBatch:
        """Serial all-shards form (interface parity with
        :class:`IndexedJoinState`): route, apply each shard, concatenate."""
        parts_left = self.route_left(delta_left)
        parts_right = self.route_right(delta_right)
        pieces = [
            self.apply_shard(i, parts_left[i], parts_right[i])
            for i in range(self.shard_count)
        ]
        merged = pieces[0]
        for piece in pieces[1:]:
            merged = merged + piece
        return merged.consolidate()


class ShardedLivenessState:
    """N-way hash-partitioned :class:`GroupLivenessState` (same
    interface, plus per-shard routing/application)."""

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = int(shard_count)
        self._shards = [GroupLivenessState() for _ in range(shard_count)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def live_groups(self) -> int:
        """Live groups across all shards — O(shards) planner signal."""
        return len(self)

    def shard_of_key(self, key: tuple) -> int:
        return shard_of(encode_key(key), self.shard_count)

    def count(self, key: tuple) -> int:
        return self._shards[self.shard_of_key(key)].count(key)

    def load(self, entries: Iterable[tuple[tuple, int]]) -> None:
        buckets: list[list[tuple[tuple, int]]] = [
            [] for _ in range(self.shard_count)
        ]
        for key, count in entries:
            buckets[self.shard_of_key(key)].append((key, count))
        for shard, bucket in zip(self._shards, buckets):
            shard.load(bucket)

    def dump(self) -> list[tuple[tuple, int]]:
        """Flattened checkpoint image; ``load`` re-routes by shard."""
        return [pair for shard in self._shards for pair in shard.dump()]

    def route(
        self, keys: Sequence[tuple], nets: Sequence[int]
    ) -> list[tuple[list[tuple], list[int]]]:
        """(keys, nets) slices per shard, in shard order."""
        parts: list[tuple[list[tuple], list[int]]] = [
            ([], []) for _ in range(self.shard_count)
        ]
        for key, net in zip(keys, nets):
            part = parts[self.shard_of_key(key)]
            part[0].append(key)
            part[1].append(int(net))
        return parts

    def apply_shard(
        self, shard: int, keys: Sequence[tuple], nets: Sequence[int]
    ) -> list[tuple]:
        """Integrate one shard's count deltas; returns its dead keys.
        Concurrency-safe across different shards."""
        return self._shards[shard].apply(keys, nets)

    def apply(
        self, keys: Sequence[tuple], nets: Sequence[int]
    ) -> list[tuple]:
        dead: list[tuple] = []
        for shard, (part_keys, part_nets) in enumerate(
            self.route(keys, nets)
        ):
            dead.extend(self.apply_shard(shard, part_keys, part_nets))
        return dead


class ShardedExtremaState:
    """N-way hash-partitioned :class:`GroupExtremaState` (same interface,
    plus per-shard routing/application)."""

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = int(shard_count)
        self._shards = [GroupExtremaState() for _ in range(shard_count)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def group_count(self) -> int:
        """Non-empty groups across all shards — O(shards) planner signal."""
        return len(self)

    def shard_of_key(self, key: tuple) -> int:
        return shard_of(encode_key(key), self.shard_count)

    def load(self, entries: Iterable[tuple[tuple, object, int]]) -> None:
        buckets: list[list[tuple[tuple, object, int]]] = [
            [] for _ in range(self.shard_count)
        ]
        for key, value, count in entries:
            buckets[self.shard_of_key(key)].append((key, value, count))
        for shard, bucket in zip(self._shards, buckets):
            shard.load(bucket)

    def dump(self) -> list[tuple[tuple, object, int]]:
        """Flattened checkpoint image; ``load`` re-routes by shard."""
        return [triple for shard in self._shards for triple in shard.dump()]

    def route(
        self, keys: Sequence[tuple], values: Sequence, nets: Sequence[int]
    ) -> list[tuple[list[tuple], list, list[int]]]:
        """(keys, values, nets) slices per shard, in shard order."""
        parts: list[tuple[list[tuple], list, list[int]]] = [
            ([], [], []) for _ in range(self.shard_count)
        ]
        for key, value, net in zip(keys, values, nets):
            part = parts[self.shard_of_key(key)]
            part[0].append(key)
            part[1].append(value)
            part[2].append(int(net))
        return parts

    def apply_shard(
        self,
        shard: int,
        keys: Sequence[tuple],
        values: Sequence,
        nets: Sequence[int],
    ) -> None:
        """Integrate one shard's (group, value) count deltas.
        Concurrency-safe across different shards."""
        self._shards[shard].apply(keys, values, nets)

    def apply(
        self, keys: Sequence[tuple], values: Sequence, nets: Sequence[int]
    ) -> None:
        for shard, (k, v, n) in enumerate(self.route(keys, values, nets)):
            self.apply_shard(shard, k, v, n)

    def extremum(self, key: tuple, want_max: bool):
        return self._shards[self.shard_of_key(key)].extremum(key, want_max)
