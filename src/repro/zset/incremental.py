"""Differentiation / integration and reference delta computations.

These are the D and I operators of DBSP as the paper states them:

    D:  ΔT = T' − T          and   ΔV = V' − V
    I:  T + ΔT = T'          and   V + ΔV = V'

:func:`delta_view` is the *specification* of IVM — compute the view on the
old and new integrated states and difference them.  The compiler's output
must produce exactly this ΔV effect on the materialized table, so tests
run both and compare.
"""

from __future__ import annotations

from typing import Callable

from repro.zset.zset import ZSet

Query = Callable[..., ZSet]


def delta_view(query: Query, tables: list[ZSet], deltas: list[ZSet]) -> ZSet:
    """ΔV = Q(T1+ΔT1, ..., Tn+ΔTn) − Q(T1, ..., Tn).

    Works for *any* query, linear or not — this is the brute-force
    differentiation that incremental plans must be equivalent to.
    """
    if len(tables) != len(deltas):
        raise ValueError("tables and deltas must align")
    new_tables = [t + d for t, d in zip(tables, deltas)]
    return query(*new_tables) - query(*tables)


def integrate(state: ZSet, delta: ZSet) -> ZSet:
    """I: fold a delta into the integrated state."""
    return state + delta


def incremental_join_delta(
    left: ZSet,
    delta_left: ZSet,
    right: ZSet,
    delta_right: ZSet,
    join: Callable[[ZSet, ZSet], ZSet],
) -> ZSet:
    """The three-term bilinear join delta (paper: "the incremental form of
    a join consists of three relational join operators").

    With OLD states on both sides:

        Δ(A ⋈ B) = ΔA ⋈ B  +  A ⋈ ΔB  +  ΔA ⋈ ΔB

    (Equivalently, with NEW states the last term is subtracted; the
    compiler emits the new-state form because base tables are updated
    before propagation runs.)
    """
    return (
        join(delta_left, right)
        + join(left, delta_right)
        + join(delta_left, delta_right)
    )
