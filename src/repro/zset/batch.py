"""Columnar batch representation for Z-set deltas.

A :class:`ZSetBatch` stores a Z-set as parallel column arrays plus a
weight array::

    columns[j][i]  — value of column j in entry i   (object-dtype ndarray)
    weights[i]     — signed integer weight of entry i (int64 ndarray)

compared to the dict-backed :class:`~repro.zset.zset.ZSet`, the batch
layout keeps the weight arithmetic (negation, scaling, sign partitioning,
weight products in joins) and the row movement (filters, gathers,
projections) in NumPy kernels instead of per-row Python.  Entries are
*positional*: the same row may appear in several entries until
:meth:`consolidate` merges duplicates and drops zero weights — the same
normal form ``ZSet`` maintains eagerly.

The kernels over this layout live in :mod:`repro.zset.operators`
(``batch_filter`` / ``batch_project`` / ``batch_join`` /
``batch_distinct`` / ``batch_aggregate``) and
:mod:`repro.zset.incremental` (:class:`~repro.zset.incremental.IndexedJoinState`).
See ``docs/batching.md`` for the design notes.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.zset.zset import ZSet

Row = tuple


def _object_array(values: Sequence[Any]) -> np.ndarray:
    """A 1-D object ndarray that never collapses tuples into 2-D shapes."""
    array = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        array[i] = value
    return array


class ZSetBatch:
    """A Z-set in columnar (struct-of-arrays) form."""

    __slots__ = ("columns", "weights", "_consolidated")

    def __init__(
        self,
        columns: Sequence[np.ndarray],
        weights: np.ndarray,
        *,
        consolidated: bool = False,
    ) -> None:
        self.columns: tuple[np.ndarray, ...] = tuple(columns)
        self.weights: np.ndarray = np.asarray(weights, dtype=np.int64)
        for column in self.columns:
            if len(column) != len(self.weights):
                raise ValueError(
                    "column arrays and weight array must have equal length"
                )
        self._consolidated = consolidated

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, arity: int) -> "ZSetBatch":
        return cls(
            [np.empty(0, dtype=object) for _ in range(arity)],
            np.empty(0, dtype=np.int64),
            consolidated=True,
        )

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Row],
        weights: Sequence[int] | None = None,
        arity: int | None = None,
    ) -> "ZSetBatch":
        """Columnarize ``rows``; ``weights`` defaults to +1 per row.

        ``arity`` disambiguates the empty case (an empty row list carries
        no column count of its own).
        """
        if not rows:
            return cls.empty(arity or 0)
        arity = len(rows[0])
        columns = [
            _object_array([row[j] for row in rows]) for j in range(arity)
        ]
        if weights is None:
            weight_array = np.ones(len(rows), dtype=np.int64)
        else:
            weight_array = np.asarray(list(weights), dtype=np.int64)
        return cls(columns, weight_array)

    @classmethod
    def from_zset(cls, zset: ZSet, arity: int | None = None) -> "ZSetBatch":
        rows = []
        weights = []
        for row, weight in zset.items():
            rows.append(row)
            weights.append(weight)
        batch = cls.from_rows(rows, weights, arity=arity)
        batch._consolidated = True  # ZSet is always in normal form
        return batch

    # -- inspection -----------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        """Number of physical entries (not necessarily distinct rows)."""
        return len(self.weights)

    def __bool__(self) -> bool:
        return bool(self.consolidate())

    @property
    def is_consolidated(self) -> bool:
        return self._consolidated

    def row_at(self, i: int) -> Row:
        return tuple(column[i] for column in self.columns)

    def iter_rows(self) -> Iterator[Row]:
        return zip(*self.columns) if self.columns else iter(())

    def iter_entries(self) -> Iterator[tuple[Row, int]]:
        for i in range(len(self.weights)):
            yield self.row_at(i), int(self.weights[i])

    def to_zset(self) -> ZSet:
        merged: dict[Row, int] = {}
        for row, weight in self.iter_entries():
            merged[row] = merged.get(row, 0) + weight
        return ZSet(merged)

    def __eq__(self, other: object) -> bool:
        """Z-set equality (normal forms compared), not layout equality."""
        if isinstance(other, ZSetBatch):
            return self.to_zset() == other.to_zset()
        if isinstance(other, ZSet):
            return self.to_zset() == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - batches are not hashed
        raise TypeError("ZSetBatch is unhashable")

    def __repr__(self) -> str:
        return (
            f"ZSetBatch(arity={self.arity}, entries={len(self)}, "
            f"consolidated={self._consolidated})"
        )

    # -- group structure (vectorized) ------------------------------------

    def __add__(self, other: "ZSetBatch") -> "ZSetBatch":
        """Concatenation — O(n) array appends, no hashing until consolidate."""
        if self.arity != other.arity:
            if len(self) == 0:
                return other
            if len(other) == 0:
                return self
            raise ValueError("cannot add batches of different arity")
        columns = [
            np.concatenate([a, b]) for a, b in zip(self.columns, other.columns)
        ]
        weights = np.concatenate([self.weights, other.weights])
        return ZSetBatch(columns, weights)

    def __sub__(self, other: "ZSetBatch") -> "ZSetBatch":
        return self + (-other)

    def __neg__(self) -> "ZSetBatch":
        return ZSetBatch(
            self.columns, -self.weights, consolidated=self._consolidated
        )

    def scale(self, factor: int) -> "ZSetBatch":
        if isinstance(factor, bool) or not isinstance(factor, (int, np.integer)):
            raise TypeError(
                f"Z-set scale factor must be an integer, got {factor!r}"
            )
        if factor == 0:
            return ZSetBatch.empty(self.arity)
        return ZSetBatch(self.columns, self.weights * np.int64(factor))

    # -- gathers ----------------------------------------------------------

    def gather(self, indices: np.ndarray) -> "ZSetBatch":
        """Entries at ``indices`` (fancy indexing on every column)."""
        return ZSetBatch(
            [column[indices] for column in self.columns], self.weights[indices]
        )

    def mask(self, keep: np.ndarray) -> "ZSetBatch":
        """Entries where boolean ``keep`` is True; weights pass through."""
        keep = np.asarray(keep, dtype=bool)
        return ZSetBatch(
            [column[keep] for column in self.columns],
            self.weights[keep],
            consolidated=self._consolidated,
        )

    def select_columns(self, ordinals: Sequence[int]) -> "ZSetBatch":
        """Projection onto a list of column ordinals (pure array reuse)."""
        return ZSetBatch(
            [self.columns[j] for j in ordinals], self.weights
        )

    # -- consolidation ------------------------------------------------------

    def group_ids(
        self, key_ordinals: Sequence[int] | None = None
    ) -> tuple[np.ndarray, list[int]]:
        """Factorize entries by key columns.

        Returns ``(ids, firsts)`` where ``ids[i]`` is a dense group id per
        entry and ``firsts[g]`` is the position of group ``g``'s first
        entry.  The dict pass is the only per-entry Python loop; everything
        downstream (weight sums, sign splits) runs on the id array.
        """
        if key_ordinals is None:
            key_columns = self.columns
        else:
            key_columns = [self.columns[j] for j in key_ordinals]
        ids = np.empty(len(self.weights), dtype=np.int64)
        seen: dict[Row, int] = {}
        firsts: list[int] = []
        if not key_columns:
            ids[:] = 0
            return ids, ([0] if len(self.weights) else [])
        for i, key in enumerate(zip(*key_columns)):
            group = seen.get(key)
            if group is None:
                group = len(firsts)
                seen[key] = group
                firsts.append(i)
            ids[i] = group
        return ids, firsts

    def group_structure(
        self, key_ordinals: Sequence[int]
    ) -> tuple[np.ndarray, list[Row], np.ndarray]:
        """Per-group structure for a signed collapse over ``key_ordinals``.

        Returns ``(ids, keys, net)``: the dense group id per entry, the key
        tuple per group, and the per-group weight sum.  ``net[g]`` is the
        group's liveness delta — for a ΔV batch read with ±1 weights it is
        the exact signed count of arrivals minus departures, which is what
        the native liveness-delete step cancels against (no floating-point
        residue, unlike the paper's ``sum = 0`` test).
        """
        ids, firsts = self.group_ids(key_ordinals)
        keys = [
            tuple(self.columns[j][f] for j in key_ordinals) for f in firsts
        ]
        net = np.bincount(
            ids, weights=self.weights, minlength=len(firsts)
        ).astype(np.int64)
        return ids, keys, net

    def consolidate(self) -> "ZSetBatch":
        """Merge duplicate rows (summing weights) and drop zero weights.

        This is the batch analogue of ``ZSet``'s eager normal form; the
        weight summation and the zero elimination are vectorized
        (``np.bincount`` over dense group ids).
        """
        if self._consolidated:
            return self
        if len(self.weights) == 0:
            result = ZSetBatch(self.columns, self.weights, consolidated=True)
            return result
        ids, firsts = self.group_ids()
        sums = np.bincount(ids, weights=self.weights, minlength=len(firsts))
        sums = sums.astype(np.int64)
        nonzero = np.nonzero(sums)[0]
        first_array = np.asarray(firsts, dtype=np.int64)[nonzero]
        columns = [column[first_array] for column in self.columns]
        return ZSetBatch(columns, sums[nonzero], consolidated=True)

    # -- sign partitioning ---------------------------------------------------

    def split_signs(self) -> tuple["ZSetBatch", "ZSetBatch"]:
        """``(positive, negative)`` partitions of the consolidated batch.

        The negative partition carries the *magnitudes* (weights > 0) — the
        shape the boolean-multiplicity delta tables store deletions in.
        """
        batch = self.consolidate()
        positive = batch.mask(batch.weights > 0)
        negative = batch.mask(batch.weights < 0)
        negative = ZSetBatch(
            negative.columns, -negative.weights, consolidated=True
        )
        return positive, negative
