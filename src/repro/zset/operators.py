"""Relational operators lifted to Z-sets (DBSP §3).

Selection and projection are *linear*: applying them to a delta equals
the delta of applying them — which is why the paper says "the incremental
forms of selection and projection operators are the same as their
relational form".  The bilinear join gives the three-term delta rule, and
aggregation is linear for SUM/COUNT (weighted sums), which is what the
compiler exploits.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.zset.zset import ZSet

RowFn = Callable[[tuple], Any]


def zset_filter(zset: ZSet, predicate: Callable[[tuple], bool]) -> ZSet:
    """σ lifted to Z-sets: keep rows, preserve weights (linear)."""
    return zset.filter_rows(predicate)


def zset_project(zset: ZSet, projection: Callable[[tuple], tuple]) -> ZSet:
    """π lifted to Z-sets: map rows, summing weights of collisions (linear)."""
    return zset.map_rows(projection)


def zset_distinct(zset: ZSet) -> ZSet:
    """δ: back to set semantics (NOT linear — needs the integrated state)."""
    return zset.distinct()


def zset_join(
    left: ZSet,
    right: ZSet,
    left_key: RowFn,
    right_key: RowFn,
    combine: Callable[[tuple, tuple], tuple] | None = None,
) -> ZSet:
    """⋈ lifted to Z-sets: weights multiply (bilinear).

    The sign algebra the paper encodes with booleans falls out of the
    multiplication: (+1)·(+1)=+1 (insert×insert=insert),
    (+1)·(−1)=−1, (−1)·(−1)=+1.
    """
    if combine is None:
        combine = lambda l, r: l + r
    index: dict[Any, list[tuple[tuple, int]]] = {}
    for row, weight in right.items():
        key = right_key(row)
        if key is None:
            continue
        index.setdefault(key, []).append((row, weight))
    merged: dict[tuple, int] = {}
    for lrow, lweight in left.items():
        key = left_key(lrow)
        if key is None:
            continue
        for rrow, rweight in index.get(key, ()):
            combined = combine(lrow, rrow)
            merged[combined] = merged.get(combined, 0) + lweight * rweight
    return ZSet(merged)


def zset_aggregate(
    zset: ZSet,
    key: RowFn,
    functions: list[tuple[str, RowFn | None]],
) -> ZSet:
    """γ lifted to Z-sets for the linear aggregates SUM and COUNT.

    Each output row is ``(key, agg1, agg2, ...)`` with weight 1 (group
    rows are a set).  SUM sums ``value * weight``; COUNT sums ``weight``
    for non-NULL arguments (COUNT(*) sums weights unconditionally).
    Groups whose COUNT reaches zero disappear — the compiler's
    post-processing step 3 ("deletion of the invalid rows in V").
    """
    sums: dict[Any, list] = {}
    counts: dict[Any, int] = {}
    for row, weight in zset.items():
        group = key(row)
        state = sums.get(group)
        if state is None:
            state = [0 for _ in functions]
            sums[group] = state
            counts[group] = 0
        counts[group] += weight
        for i, (fname, arg) in enumerate(functions):
            if fname == "SUM":
                value = arg(row)
                if value is not None:
                    state[i] += value * weight
            elif fname == "COUNT":
                if arg is None:
                    state[i] += weight
                else:
                    if arg(row) is not None:
                        state[i] += weight
            else:
                raise ValueError(
                    f"aggregate {fname} is not linear over Z-sets; "
                    "compute it from the integrated state"
                )
    result: dict[tuple, int] = {}
    for group, state in sums.items():
        if counts[group] <= 0:
            continue  # group no longer exists in the integrated relation
        out_key = group if isinstance(group, tuple) else (group,)
        result[out_key + tuple(state)] = 1
    return ZSet(result)
