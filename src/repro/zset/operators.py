"""Relational operators lifted to Z-sets (DBSP §3).

Selection and projection are *linear*: applying them to a delta equals
the delta of applying them — which is why the paper says "the incremental
forms of selection and projection operators are the same as their
relational form".  The bilinear join gives the three-term delta rule, and
aggregation is linear for SUM/COUNT (weighted sums), which is what the
compiler exploits.

Each operator exists twice:

* a row-at-a-time form over :class:`~repro.zset.zset.ZSet` (``zset_*``) —
  the executable *specification*, kept deliberately simple;
* a vectorized batch kernel over
  :class:`~repro.zset.batch.ZSetBatch` (``batch_*``) — the hot-path form
  the engine's batched propagation uses.  The differential tests in
  ``tests/zset/test_batch.py`` hold the two equal on randomized inputs.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.execution.aggregates import (
    grouped_minmax,
    grouped_weighted_count,
    grouped_weighted_count_star,
    grouped_weighted_sum,
)
from repro.zset.batch import ZSetBatch, _object_array
from repro.zset.zset import ZSet

RowFn = Callable[[tuple], Any]


def zset_filter(zset: ZSet, predicate: Callable[[tuple], bool]) -> ZSet:
    """σ lifted to Z-sets: keep rows, preserve weights (linear)."""
    return zset.filter_rows(predicate)


def zset_project(zset: ZSet, projection: Callable[[tuple], tuple]) -> ZSet:
    """π lifted to Z-sets: map rows, summing weights of collisions (linear)."""
    return zset.map_rows(projection)


def zset_distinct(zset: ZSet) -> ZSet:
    """δ: back to set semantics (NOT linear — needs the integrated state)."""
    return zset.distinct()


def zset_join(
    left: ZSet,
    right: ZSet,
    left_key: RowFn,
    right_key: RowFn,
    combine: Callable[[tuple, tuple], tuple] | None = None,
) -> ZSet:
    """⋈ lifted to Z-sets: weights multiply (bilinear).

    The sign algebra the paper encodes with booleans falls out of the
    multiplication: (+1)·(+1)=+1 (insert×insert=insert),
    (+1)·(−1)=−1, (−1)·(−1)=+1.
    """
    if combine is None:
        combine = lambda l, r: l + r
    index: dict[Any, list[tuple[tuple, int]]] = {}
    for row, weight in right.items():
        key = right_key(row)
        if key is None:
            continue
        index.setdefault(key, []).append((row, weight))
    merged: dict[tuple, int] = {}
    for lrow, lweight in left.items():
        key = left_key(lrow)
        if key is None:
            continue
        for rrow, rweight in index.get(key, ()):
            combined = combine(lrow, rrow)
            merged[combined] = merged.get(combined, 0) + lweight * rweight
    return ZSet(merged)


def zset_aggregate(
    zset: ZSet,
    key: RowFn,
    functions: list[tuple[str, RowFn | None]],
) -> ZSet:
    """γ lifted to Z-sets for the linear aggregates SUM and COUNT.

    Each output row is ``(key, agg1, agg2, ...)`` with weight 1 (group
    rows are a set).  SUM sums ``value * weight``; COUNT sums ``weight``
    for non-NULL arguments (COUNT(*) sums weights unconditionally).
    Groups whose COUNT reaches zero disappear — the compiler's
    post-processing step 3 ("deletion of the invalid rows in V").
    """
    sums: dict[Any, list] = {}
    counts: dict[Any, int] = {}
    for row, weight in zset.items():
        group = key(row)
        state = sums.get(group)
        if state is None:
            state = [0 for _ in functions]
            sums[group] = state
            counts[group] = 0
        counts[group] += weight
        for i, (fname, arg) in enumerate(functions):
            if fname == "SUM":
                value = arg(row)
                if value is not None:
                    state[i] += value * weight
            elif fname == "COUNT":
                if arg is None:
                    state[i] += weight
                else:
                    if arg(row) is not None:
                        state[i] += weight
            else:
                raise ValueError(
                    f"aggregate {fname} is not linear over Z-sets; "
                    "compute it from the integrated state"
                )
    result: dict[tuple, int] = {}
    for group, state in sums.items():
        if counts[group] <= 0:
            continue  # group no longer exists in the integrated relation
        out_key = group if isinstance(group, tuple) else (group,)
        result[out_key + tuple(state)] = 1
    return ZSet(result)


# ---------------------------------------------------------------------------
# Vectorized batch kernels
# ---------------------------------------------------------------------------


def batch_filter(
    batch: ZSetBatch,
    predicate: Callable[[tuple], bool] | None = None,
    *,
    mask: np.ndarray | Callable[..., np.ndarray] | None = None,
) -> ZSetBatch:
    """σ kernel: one boolean mask + one compressed gather per column.

    ``mask`` is either a precomputed boolean array or a callable receiving
    the column arrays and returning one (the fully vectorized form);
    ``predicate`` is the row-at-a-time fallback for arbitrary Python
    predicates.
    """
    if mask is not None:
        keep = mask(*batch.columns) if callable(mask) else mask
    elif predicate is not None:
        keep = np.fromiter(
            (bool(predicate(row)) for row in batch.iter_rows()),
            dtype=bool,
            count=len(batch),
        )
    else:
        raise TypeError("batch_filter needs a predicate or a mask")
    return batch.mask(np.asarray(keep, dtype=bool))


def batch_project(
    batch: ZSetBatch,
    projection: Sequence[int] | Callable[[tuple], tuple],
) -> ZSetBatch:
    """π kernel: column gather (ordinal list) or row mapping (callable).

    The ordinal form reuses the existing column arrays outright — zero
    copies before consolidation.  Weight collisions merge exactly as in
    :func:`zset_project`.
    """
    if callable(projection):
        rows = [projection(row) for row in batch.iter_rows()]
        projected = ZSetBatch.from_rows(rows, batch.weights)
    else:
        projected = batch.select_columns(list(projection))
    return projected.consolidate()


def batch_distinct(batch: ZSetBatch) -> ZSetBatch:
    """δ kernel: consolidate, keep net-positive rows, clamp weights to 1."""
    consolidated = batch.consolidate()
    positive = consolidated.mask(consolidated.weights > 0)
    return ZSetBatch(
        positive.columns,
        np.ones(len(positive), dtype=np.int64),
        consolidated=True,
    )


def batch_join(
    left: ZSetBatch,
    right: ZSetBatch,
    left_on: Sequence[int],
    right_on: Sequence[int],
    *,
    combine_cols: tuple[Sequence[int], Sequence[int]] | None = None,
) -> ZSetBatch:
    """⋈ kernel: hash build + probe produce two gather-index arrays, then
    every output column and the weight products are materialized with
    vectorized gathers (weights multiply — the bilinear sign algebra).

    Entries whose key contains NULL never match (SQL semantics).
    ``combine_cols`` selects (left_ordinals, right_ordinals) for the output
    row; the default is all left columns followed by all right columns.
    """
    left_out, right_out = combine_cols or (
        range(left.arity), range(right.arity)
    )
    out_arity = len(list(left_out)) + len(list(right_out))
    if len(left) == 0 or len(right) == 0:
        return ZSetBatch.empty(out_arity)

    right_keys = [right.columns[j] for j in right_on]
    build: dict[tuple, list[int]] = {}
    for j, key in enumerate(zip(*right_keys)):
        if any(v is None for v in key):
            continue
        build.setdefault(key, []).append(j)

    left_keys = [left.columns[j] for j in left_on]
    probe_left: list[int] = []
    probe_right: list[int] = []
    for i, key in enumerate(zip(*left_keys)):
        if any(v is None for v in key):
            continue
        matches = build.get(key)
        if matches:
            probe_left.extend([i] * len(matches))
            probe_right.extend(matches)
    if not probe_left:
        return ZSetBatch.empty(out_arity)

    li = np.asarray(probe_left, dtype=np.int64)
    ri = np.asarray(probe_right, dtype=np.int64)
    columns = [left.columns[j][li] for j in left_out]
    columns += [right.columns[j][ri] for j in right_out]
    weights = left.weights[li] * right.weights[ri]
    return ZSetBatch(columns, weights).consolidate()


def batch_signed_collapse(
    batch: ZSetBatch,
    key_ordinals: Sequence[int],
    additive_ordinals: Sequence[int],
) -> tuple[list, dict]:
    """Collapse a signed ΔV batch to one net row per group.

    Returns ``(keys, collapsed)``: the key tuple per touched group, and
    ``collapsed[j][g]`` — the signed sum Σ value·weight of additive
    column ``j`` for group ``g`` (NULL values contribute the additive
    identity, like the delta partials everywhere else on the batch
    path).  This is the batch form of the SQL strategies' shared
    ``ivm_cte`` signed collapse (:func:`repro.core.strategies.
    _signed_cte_select`), consumed by the native step-2 variants: the
    upsert merge, the full-outer-join outer merge, and (through
    :func:`batch_union_regroup`) the UNION regroup.
    """
    ids, keys, _ = batch.group_structure(list(key_ordinals))
    num_groups = len(keys)
    collapsed = {
        j: grouped_weighted_sum(
            ids, batch.columns[j], batch.weights, num_groups
        )
        for j in additive_ordinals
    }
    return keys, collapsed


def batch_union_regroup(
    stored: ZSetBatch,
    delta: ZSetBatch,
    key_ordinals: Sequence[int],
    additive_ordinals: Sequence[int],
) -> tuple[list, dict]:
    """The UNION-regroup strategy's step 2 as one kernel.

    ``stored`` carries the view's current rows for the touched keys
    (weight +1 each, in ΔV column layout) and ``delta`` the signed ΔV
    batch; their concatenation is the batch form of the strategy's
    ``stored UNION ALL signed-ΔV`` subquery, and the grouped weighted
    sums are its re-GROUP BY.  Unlike :func:`batch_aggregate`, groups
    are *kept* even when their net weight is ≤ 0 — the SQL regroup also
    emits them (with zeroed additive sums) and leaves their deletion to
    propagation step 3, which this kernel's callers preserve.
    """
    return batch_signed_collapse(
        stored + delta, key_ordinals, additive_ordinals
    )


def batch_aggregate(
    batch: ZSetBatch,
    key_ordinals: Sequence[int],
    functions: list[tuple[str, int | None]],
) -> ZSetBatch:
    """γ kernel for the linear aggregates (SUM / COUNT / COUNT(*)).

    ``functions`` entries are ``(name, column_ordinal)`` with ``None`` for
    COUNT(*).  One factorization pass produces dense group ids; every
    aggregate then folds in a vectorized kernel from
    :mod:`repro.execution.aggregates`.  Groups whose weight sum (liveness)
    is ≤ 0 disappear, mirroring :func:`zset_aggregate`.

    MIN/MAX are accepted only on positive sign partitions (see
    :func:`repro.execution.aggregates.grouped_minmax`) — the form the
    batched delta propagation needs.
    """
    if len(batch) == 0:
        return ZSetBatch.empty(len(list(key_ordinals)) + len(functions))
    ids, firsts = batch.group_ids(key_ordinals)
    num_groups = len(firsts)
    liveness = np.bincount(ids, weights=batch.weights, minlength=num_groups)
    liveness = liveness.astype(np.int64)

    agg_results: list[list] = []
    for fname, ordinal in functions:
        if fname == "SUM":
            agg_results.append(
                grouped_weighted_sum(
                    ids, batch.columns[ordinal], batch.weights, num_groups
                )
            )
        elif fname == "COUNT":
            if ordinal is None:
                agg_results.append(
                    grouped_weighted_count_star(ids, batch.weights, num_groups)
                )
            else:
                agg_results.append(
                    grouped_weighted_count(
                        ids, batch.columns[ordinal], batch.weights, num_groups
                    )
                )
        elif fname in ("MIN", "MAX"):
            agg_results.append(
                grouped_minmax(
                    ids,
                    batch.columns[ordinal],
                    batch.weights,
                    num_groups,
                    want_max=(fname == "MAX"),
                )
            )
        else:
            raise ValueError(
                f"aggregate {fname} is not linear over Z-sets; "
                "compute it from the integrated state"
            )

    alive = np.nonzero(liveness > 0)[0]
    first_array = np.asarray(firsts, dtype=np.int64)[alive]
    columns = [batch.columns[k][first_array] for k in key_ordinals]
    for result in agg_results:
        values = _object_array(result)
        columns.append(values[alive])
    return ZSetBatch(
        columns, np.ones(len(alive), dtype=np.int64), consolidated=True
    )
