"""DBSP Z-set algebra.

The paper's incremental rewriting follows DBSP (Budiu et al., 2022): every
relation is a Z-set — a mapping from tuples to integer weights — and every
relational operator is lifted to Z-sets so that differentiation (Δ) and
integration (I) compose.  This package is an executable version of that
formalism.  The IVM compiler does not *run* on Z-sets (it emits SQL), but
the property-based tests use these definitions as the oracle the emitted
SQL must agree with.
"""

from repro.zset.zset import ZSet
from repro.zset.batch import ZSetBatch
from repro.zset.operators import (
    batch_aggregate,
    batch_distinct,
    batch_filter,
    batch_join,
    batch_project,
    batch_signed_collapse,
    batch_union_regroup,
    zset_aggregate,
    zset_distinct,
    zset_filter,
    zset_join,
    zset_project,
)
from repro.zset.incremental import (
    IndexedJoinState,
    delta_view,
    incremental_join_delta,
)

__all__ = [
    "IndexedJoinState",
    "ZSet",
    "ZSetBatch",
    "batch_aggregate",
    "batch_distinct",
    "batch_filter",
    "batch_join",
    "batch_project",
    "batch_signed_collapse",
    "batch_union_regroup",
    "delta_view",
    "incremental_join_delta",
    "zset_aggregate",
    "zset_distinct",
    "zset_filter",
    "zset_join",
    "zset_project",
]
