"""SQL dialect descriptions.

The paper emits SQL "in the desired SQL dialect, chosen through a flag".
A :class:`Dialect` bundles the small set of syntactic differences the
emitted IVM scripts care about: identifier quoting, how an upsert is
spelled, boolean literal casing, and whether ``CREATE INDEX`` is emitted
for the materialized aggregate (DuckDB needs the ART index for ``INSERT OR
REPLACE``; PostgreSQL uses ``ON CONFLICT`` against a unique index).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedError


@dataclass(frozen=True)
class Dialect:
    """Syntax knobs for one target system."""

    name: str
    # How INSERT-or-update over a key is spelled.
    upsert_style: str  # "or_replace" | "on_conflict"
    # Keyword used when truncating the delta tables after propagation.
    truncate_style: str  # "delete" | "truncate"
    # Whether emitted DDL includes an explicit ART/unique index on the
    # materialized aggregate's keys.
    emit_key_index: bool
    # Spelling of the boolean type in emitted DDL.
    boolean_type: str = "BOOLEAN"

    def quote_identifier(self, name: str) -> str:
        """Quote ``name`` if it is not a plain lower/upper identifier."""
        if name.isidentifier() and not name[0].isdigit():
            return name
        escaped = name.replace('"', '""')
        return f'"{escaped}"'

    def type_name(self, data_type) -> str:
        """Spell a logical type in this dialect's DDL."""
        text = str(data_type)
        if self.name == "postgres" and text == "DOUBLE":
            return "DOUBLE PRECISION"
        return text


DUCKDB = Dialect(
    name="duckdb",
    upsert_style="or_replace",
    truncate_style="delete",
    # The PRIMARY KEY already materializes the ART index DuckDB needs for
    # INSERT OR REPLACE; no separate CREATE INDEX statement is emitted.
    emit_key_index=False,
)

POSTGRES = Dialect(
    name="postgres",
    upsert_style="on_conflict",
    truncate_style="truncate",
    emit_key_index=True,
)

_DIALECTS = {d.name: d for d in (DUCKDB, POSTGRES)}


def dialect_by_name(name: str) -> Dialect:
    """Look up a dialect by its flag value (``duckdb`` or ``postgres``)."""
    try:
        return _DIALECTS[name.lower()]
    except KeyError:
        raise UnsupportedError(
            f"unknown SQL dialect {name!r}; known: {sorted(_DIALECTS)}"
        ) from None
