"""Recursive-descent SQL parser.

Covers the SQL surface that the OpenIVM compiler consumes (view
definitions) and emits (propagation scripts): SELECT with CTEs, joins of
every flavour, GROUP BY/HAVING, set operations, ORDER BY/LIMIT; the DDL and
DML statements in :mod:`repro.sql.ast`; and the utility statements the
extension and HTAP layers need (PRAGMA, ATTACH, REFRESH).

``CREATE MATERIALIZED VIEW`` is deliberately *not* accepted here when
``allow_materialized`` is False — the engine's core parser raises, and the
extension registry re-parses with fall-back parsers, reproducing DuckDB's
extension-parser mechanism described in the paper.
"""

from __future__ import annotations

from repro.errors import ParserError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ADDITIVE_OPS = {"+", "-", "||"}
_MULTIPLICATIVE_OPS = {"*", "/", "%"}
_JOIN_TYPES = {"INNER", "LEFT", "RIGHT", "FULL", "CROSS"}
_SET_OPS = {"UNION", "EXCEPT", "INTERSECT"}


class Parser:
    """Parses one token stream; one instance per statement batch."""

    def __init__(self, sql: str, allow_materialized: bool = False) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._index = 0
        self._parameter_count = 0
        self._allow_materialized = allow_materialized

    # -- token helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.upper in keywords

    def _match_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.matches(keyword):
            raise self._error(f"expected {keyword}, found {token.text!r}")
        return self._advance()

    def _match(self, token_type: TokenType, text: str | None = None) -> bool:
        token = self._peek()
        if token.type is not token_type:
            return False
        if text is not None and token.text != text:
            return False
        self._advance()
        return True

    def _expect(self, token_type: TokenType, description: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise self._error(f"expected {description}, found {token.text!r}")
        return self._advance()

    def _error(self, message: str) -> ParserError:
        token = self._peek()
        return ParserError(
            f"parse error at line {token.line}: {message}",
            position=token.position,
            line=token.line,
        )

    def _identifier(self, description: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            return self._advance().text
        # Allow a few non-reserved keywords as identifiers (e.g. a column
        # named "key" or "values" would be unkind to reject).
        if token.type is TokenType.KEYWORD and token.upper in ("KEY", "INDEX", "VIEW"):
            return self._advance().text
        raise self._error(f"expected {description}, found {token.text!r}")

    # -- entry points ---------------------------------------------------

    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while True:
            while self._match(TokenType.SEMICOLON):
                pass
            if self._peek().type is TokenType.EOF:
                return statements
            statements.append(self._parse_statement())
            token = self._peek()
            if token.type not in (TokenType.SEMICOLON, TokenType.EOF):
                raise self._error(f"unexpected token {token.text!r} after statement")

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.matches("SELECT") or token.matches("WITH"):
            return self._parse_select()
        if token.matches("CREATE"):
            return self._parse_create()
        if token.matches("DROP"):
            return self._parse_drop()
        if token.matches("INSERT"):
            return self._parse_insert()
        if token.matches("DELETE"):
            return self._parse_delete()
        if token.matches("UPDATE"):
            return self._parse_update()
        if token.matches("PRAGMA"):
            return self._parse_pragma()
        if token.matches("ATTACH"):
            return self._parse_attach()
        if token.matches("REFRESH"):
            return self._parse_refresh()
        if token.matches("TRUNCATE"):
            self._advance()
            self._match_keyword("TABLE")
            return ast.Delete(table=self._identifier("table name"), where=None)
        if token.matches("EXPLAIN"):
            self._advance()
            return ast.Explain(query=self._parse_select())
        if token.matches("BEGIN"):
            self._advance()
            return ast.Transaction("BEGIN")
        if token.matches("COMMIT"):
            self._advance()
            return ast.Transaction("COMMIT")
        if token.matches("ROLLBACK"):
            self._advance()
            return ast.Transaction("ROLLBACK")
        raise self._error(f"unexpected token {token.text!r}")

    # -- SELECT -----------------------------------------------------------

    def _parse_select(self) -> ast.Select:
        ctes: list[ast.CommonTableExpr] = []
        if self._match_keyword("WITH"):
            ctes.append(self._parse_cte())
            while self._match(TokenType.COMMA):
                ctes.append(self._parse_cte())
        select = self._parse_select_body()
        select.ctes = ctes
        while self._check_keyword(*_SET_OPS):
            op = self._advance().upper
            if op == "UNION" and self._match_keyword("ALL"):
                op = "UNION ALL"
            right = self._parse_select_body()
            select.set_ops.append((op, right))
        self._parse_order_limit(select)
        return select

    def _parse_cte(self) -> ast.CommonTableExpr:
        name = self._identifier("CTE name")
        columns: list[str] = []
        if self._match(TokenType.LPAREN):
            columns.append(self._identifier("column name"))
            while self._match(TokenType.COMMA):
                columns.append(self._identifier("column name"))
            self._expect(TokenType.RPAREN, ")")
        self._expect_keyword("AS")
        self._expect(TokenType.LPAREN, "(")
        query = self._parse_select()
        self._expect(TokenType.RPAREN, ")")
        return ast.CommonTableExpr(name=name, query=query, columns=columns)

    def _parse_select_body(self) -> ast.Select:
        if self._match(TokenType.LPAREN):
            inner = self._parse_select()
            self._expect(TokenType.RPAREN, ")")
            return inner
        self._expect_keyword("SELECT")
        distinct = False
        if self._match_keyword("DISTINCT"):
            distinct = True
        elif self._match_keyword("ALL"):
            pass
        items = [self._parse_select_item()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_select_item())
        from_clause = None
        if self._match_keyword("FROM"):
            from_clause = self._parse_from()
        where = self._parse_expression() if self._match_keyword("WHERE") else None
        group_by: list[ast.Expression] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._match(TokenType.COMMA):
                group_by.append(self._parse_expression())
        having = self._parse_expression() if self._match_keyword("HAVING") else None
        return ast.Select(
            items=items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_order_limit(self, select: ast.Select) -> None:
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            select.order_by.append(self._parse_order_item())
            while self._match(TokenType.COMMA):
                select.order_by.append(self._parse_order_item())
        if self._match_keyword("LIMIT"):
            select.limit = self._parse_expression()
        if self._match_keyword("OFFSET"):
            select.offset = self._parse_expression()

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expression()
        ascending = True
        if self._match_keyword("ASC"):
            ascending = True
        elif self._match_keyword("DESC"):
            ascending = False
        return ast.OrderItem(expr=expr, ascending=ascending)

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            return ast.SelectItem(expr=ast.Star())
        if (
            token.type is TokenType.IDENT
            and self._peek(1).type is TokenType.DOT
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).text == "*"
        ):
            table = self._advance().text
            self._advance()
            self._advance()
            return ast.SelectItem(expr=ast.Star(table=table))
        expr = self._parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._identifier("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return ast.SelectItem(expr=expr, alias=alias)

    # -- FROM / joins ------------------------------------------------------

    def _parse_from(self) -> ast.TableRef:
        left = self._parse_table_ref()
        while True:
            if self._match_keyword("CROSS"):
                self._expect_keyword("JOIN")
                right = self._parse_table_ref()
                left = ast.JoinRef(left=left, right=right, join_type="CROSS")
                continue
            if self._check_keyword("INNER", "LEFT", "RIGHT", "FULL", "JOIN"):
                join_type = "INNER"
                if not self._check_keyword("JOIN"):
                    join_type = self._advance().upper
                    self._match_keyword("OUTER")
                self._expect_keyword("JOIN")
                right = self._parse_table_ref()
                condition = None
                using: list[str] = []
                if self._match_keyword("ON"):
                    condition = self._parse_expression()
                elif self._match_keyword("USING"):
                    self._expect(TokenType.LPAREN, "(")
                    using.append(self._identifier("column name"))
                    while self._match(TokenType.COMMA):
                        using.append(self._identifier("column name"))
                    self._expect(TokenType.RPAREN, ")")
                left = ast.JoinRef(
                    left=left,
                    right=right,
                    join_type=join_type,
                    condition=condition,
                    using=using,
                )
                continue
            if self._match(TokenType.COMMA):
                right = self._parse_table_ref()
                left = ast.JoinRef(left=left, right=right, join_type="CROSS")
                continue
            return left

    def _parse_table_ref(self) -> ast.TableRef:
        if self._match(TokenType.LPAREN):
            query = self._parse_select()
            self._expect(TokenType.RPAREN, ")")
            self._match_keyword("AS")
            alias = self._identifier("subquery alias")
            return ast.SubqueryRef(query=query, alias=alias)
        name = self._identifier("table name")
        schema = None
        if self._match(TokenType.DOT):
            schema = name
            name = self._identifier("table name")
        alias = None
        if self._match_keyword("AS"):
            alias = self._identifier("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return ast.BaseTableRef(name=name, alias=alias, schema=schema)

    # -- expressions -------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._match_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp(op="OR", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp(op="AND", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._match_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_comparison()
        while True:
            if self._match_keyword("IS"):
                negated = bool(self._match_keyword("NOT"))
                self._expect_keyword("NULL")
                left = ast.IsNull(operand=left, negated=negated)
                continue
            negated = False
            if self._check_keyword("NOT") and self._peek(1).upper in ("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
            if self._match_keyword("IN"):
                self._expect(TokenType.LPAREN, "(")
                if self._check_keyword("SELECT", "WITH"):
                    query = self._parse_select()
                    self._expect(TokenType.RPAREN, ")")
                    sub = ast.ScalarSubquery(query=query)
                    left = ast.InList(operand=left, items=[sub], negated=negated)
                else:
                    items = [self._parse_expression()]
                    while self._match(TokenType.COMMA):
                        items.append(self._parse_expression())
                    self._expect(TokenType.RPAREN, ")")
                    left = ast.InList(operand=left, items=items, negated=negated)
                continue
            if self._match_keyword("BETWEEN"):
                low = self._parse_comparison()
                self._expect_keyword("AND")
                high = self._parse_comparison()
                left = ast.Between(operand=left, low=low, high=high, negated=negated)
                continue
            if self._match_keyword("LIKE"):
                pattern = self._parse_comparison()
                left = ast.Like(operand=left, pattern=pattern, negated=negated)
                continue
            return left

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in _COMPARISON_OPS:
            op = self._advance().text
            if op == "!=":
                op = "<>"
            right = self._parse_additive()
            return ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in _ADDITIVE_OPS:
                op = self._advance().text
                right = self._parse_multiplicative()
                left = ast.BinaryOp(op=op, left=left, right=right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in _MULTIPLICATIVE_OPS:
                op = self._advance().text
                right = self._parse_unary()
                left = ast.BinaryOp(op=op, left=left, right=right)
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in ("-", "+"):
            op = self._advance().text
            return ast.UnaryOp(op=op, operand=self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expr = self._parse_primary()
        while self._match(TokenType.OPERATOR, "::"):
            type_name = self._identifier("type name")
            width = None
            if self._match(TokenType.LPAREN):
                width = int(self._expect(TokenType.NUMBER, "width").text)
                self._expect(TokenType.RPAREN, ")")
            expr = ast.Cast(operand=expr, type_name=type_name, width=width)
        return expr

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.type is TokenType.PARAMETER:
            self._advance()
            self._parameter_count += 1
            return ast.Parameter(index=self._parameter_count - 1)
        if token.matches("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.matches("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches("CASE"):
            return self._parse_case()
        if token.matches("CAST"):
            return self._parse_cast()
        if token.matches("EXISTS"):
            self._advance()
            self._expect(TokenType.LPAREN, "(")
            query = self._parse_select()
            self._expect(TokenType.RPAREN, ")")
            return ast.Exists(query=query)
        if token.matches("NOT") and self._peek(1).matches("EXISTS"):
            self._advance()
            self._advance()
            self._expect(TokenType.LPAREN, "(")
            query = self._parse_select()
            self._expect(TokenType.RPAREN, ")")
            return ast.Exists(query=query, negated=True)
        if token.type is TokenType.LPAREN:
            self._advance()
            if self._check_keyword("SELECT", "WITH"):
                query = self._parse_select()
                self._expect(TokenType.RPAREN, ")")
                return ast.ScalarSubquery(query=query)
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN, ")")
            return expr
        if token.type is TokenType.IDENT or token.type is TokenType.KEYWORD:
            return self._parse_identifier_expression()
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _parse_identifier_expression(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.upper not in ("LEFT", "RIGHT", "REPLACE", "KEY", "INDEX", "VIEW", "VALUES"):
            raise self._error(f"unexpected keyword {token.text!r} in expression")
        name = self._advance().text
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            distinct = bool(self._match_keyword("DISTINCT"))
            args: list[ast.Expression] = []
            star = self._peek()
            if star.type is TokenType.OPERATOR and star.text == "*":
                self._advance()
                args.append(ast.Star())
            elif self._peek().type is not TokenType.RPAREN:
                args.append(self._parse_expression())
                while self._match(TokenType.COMMA):
                    args.append(self._parse_expression())
            self._expect(TokenType.RPAREN, ")")
            return ast.FunctionCall(name=name, args=args, distinct=distinct)
        if self._peek().type is TokenType.DOT:
            self._advance()
            column = self._identifier("column name")
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("CASE")
        operand = None
        if not self._check_keyword("WHEN"):
            operand = self._parse_expression()
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self._match_keyword("WHEN"):
            when = self._parse_expression()
            self._expect_keyword("THEN")
            then = self._parse_expression()
            branches.append((when, then))
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        else_result = None
        if self._match_keyword("ELSE"):
            else_result = self._parse_expression()
        self._expect_keyword("END")
        return ast.Case(operand=operand, branches=branches, else_result=else_result)

    def _parse_cast(self) -> ast.Expression:
        self._expect_keyword("CAST")
        self._expect(TokenType.LPAREN, "(")
        operand = self._parse_expression()
        self._expect_keyword("AS")
        type_name = self._identifier("type name")
        width = None
        if self._match(TokenType.LPAREN):
            width = int(self._expect(TokenType.NUMBER, "width").text)
            self._expect(TokenType.RPAREN, ")")
        self._expect(TokenType.RPAREN, ")")
        return ast.Cast(operand=operand, type_name=type_name, width=width)

    # -- CREATE / DROP -----------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        unique = bool(self._match_keyword("UNIQUE"))
        if self._match_keyword("TABLE"):
            return self._parse_create_table()
        if self._match_keyword("INDEX"):
            return self._parse_create_index(unique)
        if self._match_keyword("VIEW"):
            return self._parse_create_view(materialized=False)
        if self._check_keyword("MATERIALIZED"):
            if not self._allow_materialized:
                raise self._error(
                    "MATERIALIZED views are not supported by the core parser"
                )
            self._advance()
            self._expect_keyword("VIEW")
            return self._parse_create_view(materialized=True)
        raise self._error("expected TABLE, INDEX or VIEW after CREATE")

    def _parse_if_not_exists(self) -> bool:
        if self._match_keyword("IF"):
            self._expect_keyword("NOT")
            token = self._peek()
            if token.type is TokenType.IDENT and token.text.upper() == "EXISTS":
                self._advance()
            else:
                self._expect_keyword("EXISTS")
            return True
        return False

    def _parse_create_table(self) -> ast.CreateTable:
        if_not_exists = self._parse_if_not_exists()
        name = self._identifier("table name")
        if self._match_keyword("AS"):
            query = self._parse_select()
            return ast.CreateTable(
                name=name, columns=[], if_not_exists=if_not_exists, as_query=query
            )
        self._expect(TokenType.LPAREN, "(")
        columns: list[ast.ColumnDef] = []
        primary_key: list[str] = []
        while True:
            if self._check_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                self._expect(TokenType.LPAREN, "(")
                primary_key.append(self._identifier("column name"))
                while self._match(TokenType.COMMA):
                    primary_key.append(self._identifier("column name"))
                self._expect(TokenType.RPAREN, ")")
            else:
                columns.append(self._parse_column_def())
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN, ")")
        for col in columns:
            if col.primary_key:
                primary_key.append(col.name)
        return ast.CreateTable(
            name=name,
            columns=columns,
            primary_key=primary_key,
            if_not_exists=if_not_exists,
        )

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._identifier("column name")
        type_name = self._identifier("type name")
        width = None
        if self._match(TokenType.LPAREN):
            width = int(self._expect(TokenType.NUMBER, "width").text)
            # DECIMAL(p, s): consume the scale, we map to DOUBLE anyway.
            if self._match(TokenType.COMMA):
                self._expect(TokenType.NUMBER, "scale")
            self._expect(TokenType.RPAREN, ")")
        column = ast.ColumnDef(name=name, type_name=type_name, width=width)
        while True:
            if self._match_keyword("NOT"):
                self._expect_keyword("NULL")
                column.not_null = True
            elif self._match_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
                column.not_null = True
            elif self._match_keyword("DEFAULT"):
                column.default = self._parse_expression()
            elif self._match_keyword("UNIQUE"):
                pass
            else:
                return column

    def _parse_create_index(self, unique: bool) -> ast.CreateIndex:
        if_not_exists = self._parse_if_not_exists()
        name = self._identifier("index name")
        self._expect_keyword("ON")
        table = self._identifier("table name")
        self._expect(TokenType.LPAREN, "(")
        columns = [self._identifier("column name")]
        while self._match(TokenType.COMMA):
            columns.append(self._identifier("column name"))
        self._expect(TokenType.RPAREN, ")")
        return ast.CreateIndex(
            name=name,
            table=table,
            columns=columns,
            unique=unique,
            if_not_exists=if_not_exists,
        )

    def _parse_create_view(self, materialized: bool) -> ast.CreateView:
        if_not_exists = self._parse_if_not_exists()
        name = self._identifier("view name")
        self._expect_keyword("AS")
        query = self._parse_select()
        return ast.CreateView(
            name=name,
            query=query,
            materialized=materialized,
            if_not_exists=if_not_exists,
        )

    def _parse_drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._match_keyword("TABLE"):
            if_exists = self._parse_if_exists()
            return ast.DropTable(name=self._identifier("table name"), if_exists=if_exists)
        if self._match_keyword("INDEX"):
            if_exists = self._parse_if_exists()
            return ast.DropIndex(name=self._identifier("index name"), if_exists=if_exists)
        if self._match_keyword("VIEW") or (
            self._match_keyword("MATERIALIZED") and self._match_keyword("VIEW")
        ):
            if_exists = self._parse_if_exists()
            return ast.DropView(name=self._identifier("view name"), if_exists=if_exists)
        raise self._error("expected TABLE, INDEX or VIEW after DROP")

    def _parse_if_exists(self) -> bool:
        if self._match_keyword("IF"):
            token = self._peek()
            if token.type is TokenType.IDENT and token.text.upper() == "EXISTS":
                self._advance()
            else:
                self._expect_keyword("EXISTS")
            return True
        return False

    # -- DML ----------------------------------------------------------------

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        or_replace = False
        if self._match_keyword("OR"):
            self._expect_keyword("REPLACE")
            or_replace = True
        self._expect_keyword("INTO")
        table = self._identifier("table name")
        columns: list[str] = []
        if self._peek().type is TokenType.LPAREN and not self._peek(1).matches("SELECT"):
            self._advance()
            columns.append(self._identifier("column name"))
            while self._match(TokenType.COMMA):
                columns.append(self._identifier("column name"))
            self._expect(TokenType.RPAREN, ")")
        if self._match_keyword("VALUES"):
            values: list[list[ast.Expression]] = []
            while True:
                self._expect(TokenType.LPAREN, "(")
                row = [self._parse_expression()]
                while self._match(TokenType.COMMA):
                    row.append(self._parse_expression())
                self._expect(TokenType.RPAREN, ")")
                values.append(row)
                if not self._match(TokenType.COMMA):
                    break
            return ast.Insert(table=table, columns=columns, values=values, or_replace=or_replace)
        query = self._parse_select()
        return ast.Insert(table=table, columns=columns, query=query, or_replace=or_replace)

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._identifier("table name")
        where = self._parse_expression() if self._match_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._parse_set_clause()]
        while self._match(TokenType.COMMA):
            assignments.append(self._parse_set_clause())
        where = self._parse_expression() if self._match_keyword("WHERE") else None
        return ast.Update(table=table, assignments=assignments, where=where)

    def _parse_set_clause(self) -> ast.SetClause:
        column = self._identifier("column name")
        token = self._peek()
        if token.type is not TokenType.OPERATOR or token.text != "=":
            raise self._error("expected = in SET clause")
        self._advance()
        return ast.SetClause(column=column, value=self._parse_expression())

    # -- misc ----------------------------------------------------------------

    def _parse_pragma(self) -> ast.Pragma:
        self._expect_keyword("PRAGMA")
        name = self._identifier("pragma name")
        value = None
        if self._match(TokenType.OPERATOR, "="):
            token = self._peek()
            if token.type is TokenType.NUMBER:
                self._advance()
                value = float(token.text) if "." in token.text else int(token.text)
            elif token.type is TokenType.STRING:
                self._advance()
                value = token.text
            elif token.matches("TRUE"):
                self._advance()
                value = True
            elif token.matches("FALSE"):
                self._advance()
                value = False
            else:
                value = self._identifier("pragma value")
        return ast.Pragma(name=name, value=value)

    def _parse_attach(self) -> ast.Attach:
        self._expect_keyword("ATTACH")
        target = self._expect(TokenType.STRING, "attach target").text
        self._expect_keyword("AS")
        name = self._identifier("database alias")
        return ast.Attach(target=target, name=name)

    def _parse_refresh(self) -> ast.RefreshView:
        self._expect_keyword("REFRESH")
        self._expect_keyword("MATERIALIZED")
        self._expect_keyword("VIEW")
        return ast.RefreshView(name=self._identifier("view name"))


def parse_script(sql: str, allow_materialized: bool = False) -> list[ast.Statement]:
    """Parse a semicolon-separated batch of statements."""
    return Parser(sql, allow_materialized=allow_materialized).parse_statements()


def parse_one(sql: str, allow_materialized: bool = False) -> ast.Statement:
    """Parse exactly one statement; raises if the batch is empty or longer."""
    statements = parse_script(sql, allow_materialized=allow_materialized)
    if len(statements) != 1:
        raise ParserError(f"expected exactly one statement, got {len(statements)}")
    return statements[0]
