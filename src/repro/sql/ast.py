"""Parsed SQL syntax tree.

Two node families: expressions (:class:`Expression` subclasses) and
statements (:class:`Statement` subclasses).  Nodes are plain dataclasses —
binding information (resolved columns, types) lives in the logical plan, not
here, so the same AST can be re-bound against different catalogs.  That
property is what lets the IVM compiler re-target a view definition at delta
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class Node:
    """Base class for all AST nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Base class for scalar expressions."""


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean, or NULL (value ``None``)."""

    value: Any


@dataclass
class ColumnRef(Expression):
    """A possibly-qualified column reference like ``t.col`` or ``col``."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass
class Star(Expression):
    """``*`` or ``t.*`` in a select list or ``COUNT(*)``."""

    table: str | None = None


@dataclass
class Parameter(Expression):
    """A positional ``?`` placeholder bound at execution time."""

    index: int


@dataclass
class UnaryOp(Expression):
    """``-x``, ``+x`` or ``NOT x``."""

    op: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    """Arithmetic, comparison, string concat, AND/OR."""

    op: str
    left: Expression
    right: Expression


@dataclass
class IsNull(Expression):
    """``x IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    """``x [NOT] IN (e1, e2, ...)`` with a literal/expression list."""

    operand: Expression
    items: list[Expression]
    negated: bool = False


@dataclass
class Between(Expression):
    """``x [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class Like(Expression):
    """``x [NOT] LIKE pattern`` with ``%``/``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass
class Case(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Expression | None
    branches: list[tuple[Expression, Expression]]
    else_result: Expression | None


@dataclass
class Cast(Expression):
    """``CAST(expr AS TYPE)`` or ``expr::TYPE``."""

    operand: Expression
    type_name: str
    width: int | None = None


@dataclass
class FunctionCall(Expression):
    """A scalar or aggregate function call.

    ``distinct`` is only meaningful for aggregates (``COUNT(DISTINCT x)``).
    """

    name: str
    args: list[Expression]
    distinct: bool = False

    @property
    def upper_name(self) -> str:
        return self.name.upper()


@dataclass
class Exists(Expression):
    """``[NOT] EXISTS (subquery)``."""

    query: "Select"
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    """A parenthesized subquery used as a scalar value."""

    query: "Select"


AGGREGATE_FUNCTIONS = frozenset({"SUM", "COUNT", "MIN", "MAX", "AVG"})


def is_aggregate_call(expr: Expression) -> bool:
    return isinstance(expr, FunctionCall) and expr.upper_name in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: Expression) -> bool:
    """True if any node inside ``expr`` is an aggregate function call."""
    if is_aggregate_call(expr):
        return True
    return any(contains_aggregate(child) for child in expression_children(expr))


def expression_children(expr: Expression) -> list[Expression]:
    """Direct sub-expressions of ``expr`` (for generic traversals)."""
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, Like):
        return [expr.operand, expr.pattern]
    if isinstance(expr, Case):
        children: list[Expression] = []
        if expr.operand is not None:
            children.append(expr.operand)
        for when, then in expr.branches:
            children.extend((when, then))
        if expr.else_result is not None:
            children.append(expr.else_result)
        return children
    if isinstance(expr, Cast):
        return [expr.operand]
    if isinstance(expr, FunctionCall):
        return list(expr.args)
    return []


def walk_expression(expr: Expression):
    """Yield ``expr`` and every descendant expression, pre-order."""
    yield expr
    for child in expression_children(expr):
        yield from walk_expression(child)


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    """One select-list entry: an expression with an optional alias."""

    expr: Expression
    alias: str | None = None


class TableRef(Node):
    """Base class for FROM-clause items."""


@dataclass
class BaseTableRef(TableRef):
    """A named table (optionally schema-qualified) with an optional alias."""

    name: str
    alias: str | None = None
    schema: str | None = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef(TableRef):
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "Select"
    alias: str


@dataclass
class JoinRef(TableRef):
    """A join of two table refs.  ``join_type`` in INNER/LEFT/RIGHT/FULL/CROSS."""

    left: TableRef
    right: TableRef
    join_type: str
    condition: Expression | None = None
    using: list[str] = field(default_factory=list)


@dataclass
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Expression
    ascending: bool = True
    nulls_first: bool | None = None


@dataclass
class CommonTableExpr(Node):
    """One CTE in a WITH clause."""

    name: str
    query: "Select"
    columns: list[str] = field(default_factory=list)


class Statement(Node):
    """Base class for executable statements."""


@dataclass
class Select(Statement):
    """A full SELECT, possibly with CTEs and set operations.

    ``set_ops`` holds ``(operator, select)`` pairs applied left-to-right,
    where operator is ``UNION``, ``UNION ALL``, ``EXCEPT`` or ``INTERSECT``.
    """

    items: list[SelectItem]
    from_clause: TableRef | None = None
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Expression | None = None
    offset: Expression | None = None
    distinct: bool = False
    ctes: list[CommonTableExpr] = field(default_factory=list)
    set_ops: list[tuple[str, "Select"]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef(Node):
    """One column in CREATE TABLE."""

    name: str
    type_name: str
    width: int | None = None
    not_null: bool = False
    primary_key: bool = False
    default: Expression | None = None


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef]
    primary_key: list[str] = field(default_factory=list)
    if_not_exists: bool = False
    as_query: Select | None = None


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    columns: list[str]
    unique: bool = False
    if_not_exists: bool = False


@dataclass
class DropIndex(Statement):
    name: str
    if_exists: bool = False


@dataclass
class CreateView(Statement):
    """CREATE [MATERIALIZED] VIEW.

    The base engine only understands plain views; the MATERIALIZED form is
    rejected by the core parser and picked up by the IVM fall-back parser,
    mirroring how the paper's extension hooks DuckDB.
    """

    name: str
    query: Select
    materialized: bool = False
    if_not_exists: bool = False


@dataclass
class DropView(Statement):
    name: str
    if_exists: bool = False


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class Insert(Statement):
    """INSERT [OR REPLACE] INTO t [(cols)] VALUES ... | SELECT ..."""

    table: str
    columns: list[str] = field(default_factory=list)
    values: list[list[Expression]] = field(default_factory=list)
    query: Select | None = None
    or_replace: bool = False


@dataclass
class Delete(Statement):
    table: str
    where: Expression | None = None


@dataclass
class SetClause(Node):
    column: str
    value: Expression


@dataclass
class Update(Statement):
    table: str
    assignments: list[SetClause]
    where: Expression | None = None


# ---------------------------------------------------------------------------
# Misc statements
# ---------------------------------------------------------------------------


@dataclass
class Pragma(Statement):
    """``PRAGMA name`` or ``PRAGMA name = value`` (engine/IVM switches)."""

    name: str
    value: Any = None


@dataclass
class Attach(Statement):
    """``ATTACH 'target' AS name`` — used by the HTAP scanner bridge."""

    target: str
    name: str


@dataclass
class RefreshView(Statement):
    """``REFRESH MATERIALIZED VIEW name`` — IVM extension statement."""

    name: str


@dataclass
class Transaction(Statement):
    """BEGIN / COMMIT / ROLLBACK."""

    action: str


@dataclass
class Explain(Statement):
    """``EXPLAIN <select>`` — returns the optimized plan tree as rows."""

    query: Select
