"""Hand-written SQL lexer.

Produces a flat token stream for the recursive-descent parser.  Keywords are
recognized case-insensitively but the original text is preserved on the
token so error messages quote the user's spelling.  Comments (``--`` and
``/* */``) are skipped.  Identifiers may be double-quoted; strings use
single quotes with ``''`` escaping, as in standard SQL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParserError


class TokenType(enum.Enum):
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    DOT = "DOT"
    SEMICOLON = "SEMICOLON"
    PARAMETER = "PARAMETER"
    EOF = "EOF"


# Every word the parser treats specially.  Words not in this set lex as
# identifiers, which keeps the grammar permissive about column names.
KEYWORDS = frozenset(
    """
    ALL AND AS ASC ATTACH BEGIN BETWEEN BY CASCADE CASE CAST COMMIT CREATE
    CROSS DEFAULT DELETE DESC DISTINCT DROP ELSE END ESCAPE EXCEPT EXISTS EXPLAIN
    FALSE FOR FROM FULL GROUP HAVING IF IN INDEX INNER INSERT INTERSECT INTO
    IS JOIN KEY LEFT LIKE LIMIT MATERIALIZED NOT NULL OFFSET ON OR ORDER
    OUTER PRAGMA PRIMARY REFRESH REPLACE RIGHT ROLLBACK SELECT SET TABLE
    THEN TRIGGER TRUE TRUNCATE UNION UNIQUE UPDATE USING VALUES VIEW WHEN
    WHERE WITH
    """.split()
)

_TWO_CHAR_OPERATORS = ("<>", "!=", "<=", ">=", "||", "::")
_ONE_CHAR_OPERATORS = "+-*/%<>=!"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error reporting)."""

    type: TokenType
    text: str
    position: int
    line: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def matches(self, keyword: str) -> bool:
        return self.type is TokenType.KEYWORD and self.upper == keyword


class Lexer:
    """Single-pass lexer over a SQL string."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._pos = 0
        self._line = 1

    def tokens(self) -> list[Token]:
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def _error(self, message: str) -> ParserError:
        return ParserError(message, position=self._pos, line=self._line)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._sql):
            return self._sql[index]
        return ""

    def _skip_whitespace_and_comments(self) -> None:
        sql = self._sql
        while self._pos < len(sql):
            ch = sql[self._pos]
            if ch == "\n":
                self._line += 1
                self._pos += 1
            elif ch.isspace():
                self._pos += 1
            elif ch == "-" and self._peek(1) == "-":
                end = sql.find("\n", self._pos)
                self._pos = len(sql) if end == -1 else end
            elif ch == "/" and self._peek(1) == "*":
                end = sql.find("*/", self._pos + 2)
                if end == -1:
                    raise self._error("unterminated block comment")
                self._line += sql.count("\n", self._pos, end)
                self._pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        start, line = self._pos, self._line
        if self._pos >= len(self._sql):
            return Token(TokenType.EOF, "", start, line)
        ch = self._sql[self._pos]
        if ch == "(":
            self._pos += 1
            return Token(TokenType.LPAREN, "(", start, line)
        if ch == ")":
            self._pos += 1
            return Token(TokenType.RPAREN, ")", start, line)
        if ch == ",":
            self._pos += 1
            return Token(TokenType.COMMA, ",", start, line)
        if ch == ";":
            self._pos += 1
            return Token(TokenType.SEMICOLON, ";", start, line)
        if ch == "?":
            self._pos += 1
            return Token(TokenType.PARAMETER, "?", start, line)
        if ch == "'":
            return self._lex_string(start, line)
        if ch == '"':
            return self._lex_quoted_identifier(start, line)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(start, line)
        if ch == ".":
            self._pos += 1
            return Token(TokenType.DOT, ".", start, line)
        for op in _TWO_CHAR_OPERATORS:
            if self._sql.startswith(op, self._pos):
                self._pos += 2
                return Token(TokenType.OPERATOR, op, start, line)
        if ch in _ONE_CHAR_OPERATORS:
            self._pos += 1
            return Token(TokenType.OPERATOR, ch, start, line)
        if ch.isalpha() or ch == "_":
            return self._lex_word(start, line)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_string(self, start: int, line: int) -> Token:
        sql = self._sql
        self._pos += 1
        pieces: list[str] = []
        while True:
            if self._pos >= len(sql):
                raise self._error("unterminated string literal")
            ch = sql[self._pos]
            if ch == "'":
                if self._peek(1) == "'":
                    pieces.append("'")
                    self._pos += 2
                    continue
                self._pos += 1
                return Token(TokenType.STRING, "".join(pieces), start, line)
            if ch == "\n":
                self._line += 1
            pieces.append(ch)
            self._pos += 1

    def _lex_quoted_identifier(self, start: int, line: int) -> Token:
        sql = self._sql
        self._pos += 1
        pieces: list[str] = []
        while True:
            if self._pos >= len(sql):
                raise self._error("unterminated quoted identifier")
            ch = sql[self._pos]
            if ch == '"':
                if self._peek(1) == '"':
                    pieces.append('"')
                    self._pos += 2
                    continue
                self._pos += 1
                return Token(TokenType.IDENT, "".join(pieces), start, line)
            pieces.append(ch)
            self._pos += 1

    def _lex_number(self, start: int, line: int) -> Token:
        sql = self._sql
        seen_dot = False
        seen_exp = False
        while self._pos < len(sql):
            ch = sql[self._pos]
            if ch.isdigit():
                self._pos += 1
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                self._pos += 1
            elif ch in "eE" and not seen_exp and self._pos > start:
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    seen_exp = True
                    self._pos += 2 if nxt in "+-" else 1
                else:
                    break
            else:
                break
        return Token(TokenType.NUMBER, sql[start:self._pos], start, line)

    def _lex_word(self, start: int, line: int) -> Token:
        sql = self._sql
        while self._pos < len(sql) and (sql[self._pos].isalnum() or sql[self._pos] == "_"):
            self._pos += 1
        text = sql[start:self._pos]
        if text.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, text, start, line)
        return Token(TokenType.IDENT, text, start, line)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token."""
    return Lexer(sql).tokens()
