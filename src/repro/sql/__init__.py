"""SQL frontend: lexer, AST, recursive-descent parser, dialect rules."""

from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.parser import Parser, parse_one, parse_script

__all__ = [
    "Lexer",
    "Parser",
    "Token",
    "TokenType",
    "parse_one",
    "parse_script",
    "tokenize",
]
