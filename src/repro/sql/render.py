"""Render expression and statement ASTs back to SQL text.

Used by the DuckAST emitters (:mod:`repro.core.emit`) and by tooling that
round-trips SQL.  Rendering is dialect-aware only where dialects actually
differ; expression syntax is shared.
"""

from __future__ import annotations

from repro.datatypes.values import sql_format_literal
from repro.errors import UnsupportedError
from repro.sql import ast
from repro.sql.dialect import DUCKDB, Dialect

# Binding strength for parenthesization decisions; higher binds tighter.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
}


def render_expression(expr: ast.Expression, dialect: Dialect = DUCKDB) -> str:
    """Render ``expr`` to SQL text in ``dialect``."""
    return _Renderer(dialect).expression(expr)


def render_select(select: ast.Select, dialect: Dialect = DUCKDB) -> str:
    """Render a SELECT statement (with CTEs and set ops) to SQL text."""
    return _Renderer(dialect).select(select)


class _Renderer:
    def __init__(self, dialect: Dialect) -> None:
        self._dialect = dialect

    # -- expressions ----------------------------------------------------

    def expression(self, expr: ast.Expression, parent_prec: int = 0) -> str:
        if isinstance(expr, ast.Literal):
            return sql_format_literal(expr.value)
        if isinstance(expr, ast.ColumnRef):
            quoted = self._dialect.quote_identifier(expr.name)
            if expr.table:
                return f"{self._dialect.quote_identifier(expr.table)}.{quoted}"
            return quoted
        if isinstance(expr, ast.Star):
            if expr.table:
                return f"{self._dialect.quote_identifier(expr.table)}.*"
            return "*"
        if isinstance(expr, ast.Parameter):
            return "?"
        if isinstance(expr, ast.UnaryOp):
            inner = self.expression(expr.operand, parent_prec=7)
            if expr.op == "NOT":
                return f"NOT {inner}"
            return f"{expr.op}{inner}"
        if isinstance(expr, ast.BinaryOp):
            prec = _PRECEDENCE.get(expr.op, 4)
            left = self.expression(expr.left, parent_prec=prec)
            right = self.expression(expr.right, parent_prec=prec + 1)
            text = f"{left} {expr.op} {right}"
            if prec < parent_prec:
                return f"({text})"
            return text
        if isinstance(expr, ast.IsNull):
            inner = self.expression(expr.operand, parent_prec=4)
            negation = " NOT" if expr.negated else ""
            return f"{inner} IS{negation} NULL"
        if isinstance(expr, ast.InList):
            inner = self.expression(expr.operand, parent_prec=4)
            items = ", ".join(self.expression(item) for item in expr.items)
            negation = "NOT " if expr.negated else ""
            return f"{inner} {negation}IN ({items})"
        if isinstance(expr, ast.Between):
            inner = self.expression(expr.operand, parent_prec=4)
            low = self.expression(expr.low, parent_prec=5)
            high = self.expression(expr.high, parent_prec=5)
            negation = "NOT " if expr.negated else ""
            return f"{inner} {negation}BETWEEN {low} AND {high}"
        if isinstance(expr, ast.Like):
            inner = self.expression(expr.operand, parent_prec=4)
            pattern = self.expression(expr.pattern, parent_prec=5)
            negation = "NOT " if expr.negated else ""
            return f"{inner} {negation}LIKE {pattern}"
        if isinstance(expr, ast.Case):
            pieces = ["CASE"]
            if expr.operand is not None:
                pieces.append(self.expression(expr.operand))
            for when, then in expr.branches:
                pieces.append(f"WHEN {self.expression(when)} THEN {self.expression(then)}")
            if expr.else_result is not None:
                pieces.append(f"ELSE {self.expression(expr.else_result)}")
            pieces.append("END")
            return " ".join(pieces)
        if isinstance(expr, ast.Cast):
            inner = self.expression(expr.operand)
            type_text = expr.type_name.upper()
            if expr.width is not None:
                type_text = f"{type_text}({expr.width})"
            return f"CAST({inner} AS {type_text})"
        if isinstance(expr, ast.FunctionCall):
            distinct = "DISTINCT " if expr.distinct else ""
            args = ", ".join(self.expression(arg) for arg in expr.args)
            return f"{expr.name.upper()}({distinct}{args})"
        if isinstance(expr, ast.Exists):
            negation = "NOT " if expr.negated else ""
            return f"{negation}EXISTS ({self.select(expr.query)})"
        if isinstance(expr, ast.ScalarSubquery):
            return f"({self.select(expr.query)})"
        raise UnsupportedError(f"cannot render expression {type(expr).__name__}")

    # -- SELECT ---------------------------------------------------------

    def select(self, select: ast.Select) -> str:
        pieces: list[str] = []
        if select.ctes:
            ctes = ", ".join(
                f"{self._dialect.quote_identifier(cte.name)} AS ({self.select(cte.query)})"
                for cte in select.ctes
            )
            pieces.append(f"WITH {ctes}")
        pieces.append(self._select_core(select))
        for op, right in select.set_ops:
            pieces.append(op)
            pieces.append(self._select_core(right))
        if select.order_by:
            keys = ", ".join(
                self.expression(item.expr) + ("" if item.ascending else " DESC")
                for item in select.order_by
            )
            pieces.append(f"ORDER BY {keys}")
        if select.limit is not None:
            pieces.append(f"LIMIT {self.expression(select.limit)}")
        if select.offset is not None:
            pieces.append(f"OFFSET {self.expression(select.offset)}")
        return " ".join(pieces)

    def _select_core(self, select: ast.Select) -> str:
        items = ", ".join(self._select_item(item) for item in select.items)
        distinct = "DISTINCT " if select.distinct else ""
        pieces = [f"SELECT {distinct}{items}"]
        if select.from_clause is not None:
            pieces.append(f"FROM {self._table_ref(select.from_clause)}")
        if select.where is not None:
            pieces.append(f"WHERE {self.expression(select.where)}")
        if select.group_by:
            keys = ", ".join(self.expression(key) for key in select.group_by)
            pieces.append(f"GROUP BY {keys}")
        if select.having is not None:
            pieces.append(f"HAVING {self.expression(select.having)}")
        return " ".join(pieces)

    def _select_item(self, item: ast.SelectItem) -> str:
        text = self.expression(item.expr)
        if item.alias:
            return f"{text} AS {self._dialect.quote_identifier(item.alias)}"
        return text

    def _table_ref(self, ref: ast.TableRef) -> str:
        if isinstance(ref, ast.BaseTableRef):
            name = self._dialect.quote_identifier(ref.name)
            if ref.schema:
                name = f"{self._dialect.quote_identifier(ref.schema)}.{name}"
            if ref.alias:
                return f"{name} AS {self._dialect.quote_identifier(ref.alias)}"
            return name
        if isinstance(ref, ast.SubqueryRef):
            return f"({self.select(ref.query)}) AS {self._dialect.quote_identifier(ref.alias)}"
        if isinstance(ref, ast.JoinRef):
            left = self._table_ref(ref.left)
            right = self._table_ref(ref.right)
            if ref.join_type == "CROSS":
                return f"{left} CROSS JOIN {right}"
            keyword = {"INNER": "JOIN", "LEFT": "LEFT JOIN",
                       "RIGHT": "RIGHT JOIN", "FULL": "FULL OUTER JOIN"}[ref.join_type]
            if ref.using:
                cols = ", ".join(self._dialect.quote_identifier(c) for c in ref.using)
                return f"{left} {keyword} {right} USING ({cols})"
            condition = self.expression(ref.condition) if ref.condition else "TRUE"
            return f"{left} {keyword} {right} ON {condition}"
        raise UnsupportedError(f"cannot render table ref {type(ref).__name__}")
