"""Compile bound expressions into Python closures — and column kernels.

Each bound expression becomes a function ``(row, ctx) -> value`` where
``row`` is the child operator's output tuple and ``ctx`` the
:class:`~repro.execution.executor.ExecutionContext` (parameters, subquery
cache).  Compilation happens once per plan; evaluation is then a plain
closure call per row, which keeps the interpreter overhead tolerable at
benchmark scale.

The second half of this module is the *vectorized* form of the same
compiler: :func:`compile_batch_expression` turns a bound expression into
a ``(columns, n, ctx) -> ndarray`` evaluator that walks the tree once
per *batch* instead of once per row — every node is one C-dispatched
pass over object-dtype column arrays (``np.frompyfunc`` of the node's
scalar kernel), so evaluating an expression over a
:class:`~repro.zset.batch.ZSetBatch` costs O(nodes) array passes rather
than O(rows × nodes) closure calls.  :func:`batch_eval` is the batch
entry point; its boolean results feed
:func:`repro.zset.operators.batch_filter` through :func:`true_mask`.

All evaluators implement SQL three-valued logic: NULL (``None``)
propagates through operators, AND/OR use Kleene logic, and comparisons
with NULL yield NULL.  The batch evaluators are held equal to the row
evaluators — value for value, including which sub-expressions are
(not) evaluated: AND/OR only evaluate their right side on rows the left
side did not decide, and CASE branches only run on the rows that reach
them, so data-dependent errors (division by zero in a guarded branch)
surface identically on both paths.  The one deliberate batch/row
difference: zero-argument function calls are evaluated once per batch
and broadcast (all engine functions are pure).
"""

from __future__ import annotations

import math
import re
from functools import lru_cache
from typing import Any, Callable, Sequence

import numpy as np

from repro.datatypes.values import cast_value, sql_compare
from repro.errors import ExecutionError
from repro.planner.expressions import (
    BoundBetween,
    BoundBinary,
    BoundCase,
    BoundCast,
    BoundColumn,
    BoundConstant,
    BoundExists,
    BoundExpression,
    BoundFunction,
    BoundInList,
    BoundInSubquery,
    BoundIsNull,
    BoundLike,
    BoundParameter,
    BoundSubquery,
    BoundUnary,
)

Evaluator = Callable[[tuple, Any], Any]


def compile_expression(expr: BoundExpression) -> Evaluator:
    """Compile a bound expression tree into an evaluator closure."""
    if isinstance(expr, BoundConstant):
        value = expr.value
        return lambda row, ctx: value
    if isinstance(expr, BoundColumn):
        index = expr.index
        return lambda row, ctx: row[index]
    if isinstance(expr, BoundParameter):
        slot = expr.index
        return lambda row, ctx: ctx.parameter(slot)
    if isinstance(expr, BoundUnary):
        return _compile_unary(expr)
    if isinstance(expr, BoundBinary):
        return _compile_binary(expr)
    if isinstance(expr, BoundIsNull):
        inner = compile_expression(expr.operand)
        if expr.negated:
            return lambda row, ctx: inner(row, ctx) is not None
        return lambda row, ctx: inner(row, ctx) is None
    if isinstance(expr, BoundInList):
        return _compile_in_list(expr)
    if isinstance(expr, BoundBetween):
        return _compile_between(expr)
    if isinstance(expr, BoundLike):
        return _compile_like(expr)
    if isinstance(expr, BoundCase):
        return _compile_case(expr)
    if isinstance(expr, BoundCast):
        inner = compile_expression(expr.operand)
        target = expr.type
        return lambda row, ctx: cast_value(inner(row, ctx), target)
    if isinstance(expr, BoundFunction):
        return _compile_function(expr)
    if isinstance(expr, BoundSubquery):
        plan = expr.plan
        return lambda row, ctx: ctx.scalar_subquery(plan)
    if isinstance(expr, BoundExists):
        plan, negated = expr.plan, expr.negated
        if negated:
            return lambda row, ctx: not ctx.subquery_rows(plan)
        return lambda row, ctx: bool(ctx.subquery_rows(plan))
    if isinstance(expr, BoundInSubquery):
        return _compile_in_subquery(expr)
    raise ExecutionError(f"cannot compile expression {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


def _compile_unary(expr: BoundUnary) -> Evaluator:
    inner = compile_expression(expr.operand)
    if expr.op == "-":
        def negate(row, ctx):
            value = inner(row, ctx)
            return None if value is None else -value
        return negate
    if expr.op == "+":
        return inner
    if expr.op == "NOT":
        def invert(row, ctx):
            value = inner(row, ctx)
            return None if value is None else (not value)
        return invert
    raise ExecutionError(f"unknown unary operator {expr.op!r}")


def _compile_binary(expr: BoundBinary) -> Evaluator:
    op = expr.op
    left = compile_expression(expr.left)
    right = compile_expression(expr.right)
    if op == "AND":
        def kleene_and(row, ctx):
            lhs = left(row, ctx)
            if lhs is False:
                return False
            rhs = right(row, ctx)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True
        return kleene_and
    if op == "OR":
        def kleene_or(row, ctx):
            lhs = left(row, ctx)
            if lhs is True:
                return True
            rhs = right(row, ctx)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False
        return kleene_or
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _compile_comparison(op, left, right)
    if op == "||":
        def concat(row, ctx):
            lhs, rhs = left(row, ctx), right(row, ctx)
            if lhs is None or rhs is None:
                return None
            return _to_text(lhs) + _to_text(rhs)
        return concat
    if op == "+":
        def add(row, ctx):
            lhs, rhs = left(row, ctx), right(row, ctx)
            if lhs is None or rhs is None:
                return None
            return lhs + rhs
        return add
    if op == "-":
        def sub(row, ctx):
            lhs, rhs = left(row, ctx), right(row, ctx)
            if lhs is None or rhs is None:
                return None
            return lhs - rhs
        return sub
    if op == "*":
        def mul(row, ctx):
            lhs, rhs = left(row, ctx), right(row, ctx)
            if lhs is None or rhs is None:
                return None
            return lhs * rhs
        return mul
    if op == "/":
        def div(row, ctx):
            lhs, rhs = left(row, ctx), right(row, ctx)
            if lhs is None or rhs is None:
                return None
            if rhs == 0:
                raise ExecutionError("division by zero")
            return lhs / rhs
        return div
    if op == "%":
        def mod(row, ctx):
            lhs, rhs = left(row, ctx), right(row, ctx)
            if lhs is None or rhs is None:
                return None
            if rhs == 0:
                raise ExecutionError("modulo by zero")
            return math.fmod(lhs, rhs) if isinstance(lhs, float) or isinstance(rhs, float) else lhs % rhs
        return mod
    raise ExecutionError(f"unknown binary operator {op!r}")


def _compile_comparison(op: str, left: Evaluator, right: Evaluator) -> Evaluator:
    def compare(row, ctx):
        ordering = sql_compare(left(row, ctx), right(row, ctx))
        if ordering is None:
            return None
        if op == "=":
            return ordering == 0
        if op == "<>":
            return ordering != 0
        if op == "<":
            return ordering < 0
        if op == "<=":
            return ordering <= 0
        if op == ">":
            return ordering > 0
        return ordering >= 0
    return compare


def _compile_in_list(expr: BoundInList) -> Evaluator:
    operand = compile_expression(expr.operand)
    items = [compile_expression(item) for item in expr.items]
    negated = expr.negated

    def contains(row, ctx):
        value = operand(row, ctx)
        if value is None:
            return None
        saw_null = False
        for item in items:
            candidate = item(row, ctx)
            ordering = sql_compare(value, candidate)
            if ordering is None:
                saw_null = True
            elif ordering == 0:
                return not negated
        if saw_null:
            return None
        return negated

    return contains


def _compile_in_subquery(expr: BoundInSubquery) -> Evaluator:
    operand = compile_expression(expr.operand)
    plan, negated = expr.plan, expr.negated

    def contains(row, ctx):
        value = operand(row, ctx)
        if value is None:
            return None
        rows = ctx.subquery_rows(plan)
        saw_null = False
        for (candidate,) in rows:
            ordering = sql_compare(value, candidate)
            if ordering is None:
                saw_null = True
            elif ordering == 0:
                return not negated
        if saw_null:
            return None
        return negated

    return contains


def _compile_between(expr: BoundBetween) -> Evaluator:
    operand = compile_expression(expr.operand)
    low = compile_expression(expr.low)
    high = compile_expression(expr.high)
    negated = expr.negated

    def between(row, ctx):
        value = operand(row, ctx)
        low_cmp = sql_compare(value, low(row, ctx))
        high_cmp = sql_compare(value, high(row, ctx))
        if low_cmp is None or high_cmp is None:
            return None
        result = low_cmp >= 0 and high_cmp <= 0
        return (not result) if negated else result

    return between


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> re.Pattern:
    regex = ["^"]
    for ch in pattern:
        if ch == "%":
            regex.append(".*")
        elif ch == "_":
            regex.append(".")
        else:
            regex.append(re.escape(ch))
    regex.append("$")
    return re.compile("".join(regex), re.DOTALL)


def _compile_like(expr: BoundLike) -> Evaluator:
    operand = compile_expression(expr.operand)
    pattern = compile_expression(expr.pattern)
    negated = expr.negated

    def like(row, ctx):
        value = operand(row, ctx)
        pat = pattern(row, ctx)
        if value is None or pat is None:
            return None
        result = bool(_like_regex(pat).match(_to_text(value)))
        return (not result) if negated else result

    return like


def _compile_case(expr: BoundCase) -> Evaluator:
    branches = [
        (compile_expression(when), compile_expression(then))
        for when, then in expr.branches
    ]
    else_eval = (
        compile_expression(expr.else_result) if expr.else_result is not None else None
    )
    if expr.operand is None:
        def searched(row, ctx):
            for when, then in branches:
                if when(row, ctx) is True:
                    return then(row, ctx)
            return else_eval(row, ctx) if else_eval else None
        return searched

    operand = compile_expression(expr.operand)

    def simple(row, ctx):
        value = operand(row, ctx)
        for when, then in branches:
            if sql_compare(value, when(row, ctx)) == 0:
                return then(row, ctx)
        return else_eval(row, ctx) if else_eval else None

    return simple


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _to_text(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _fn_coalesce(args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _fn_round(args):
    if args[0] is None:
        return None
    digits = int(args[1]) if len(args) > 1 and args[1] is not None else 0
    return round(float(args[0]), digits)


def _fn_substr(args):
    text = args[0]
    if text is None or args[1] is None:
        return None
    start = int(args[1]) - 1
    if start < 0:
        start = 0
    if len(args) > 2 and args[2] is not None:
        return text[start:start + int(args[2])]
    return text[start:]


def _null_guard(fn):
    def wrapped(args):
        if any(a is None for a in args):
            return None
        return fn(args)
    return wrapped


_FUNCTIONS: dict[str, Callable[[list], Any]] = {
    "COALESCE": _fn_coalesce,
    "ABS": _null_guard(lambda a: abs(a[0])),
    "ROUND": _fn_round,
    "FLOOR": _null_guard(lambda a: math.floor(a[0])),
    "CEIL": _null_guard(lambda a: math.ceil(a[0])),
    "CEILING": _null_guard(lambda a: math.ceil(a[0])),
    "LENGTH": _null_guard(lambda a: len(_to_text(a[0]))),
    "STRLEN": _null_guard(lambda a: len(_to_text(a[0]))),
    "LOWER": _null_guard(lambda a: _to_text(a[0]).lower()),
    "UPPER": _null_guard(lambda a: _to_text(a[0]).upper()),
    "TRIM": _null_guard(lambda a: _to_text(a[0]).strip()),
    "LTRIM": _null_guard(lambda a: _to_text(a[0]).lstrip()),
    "RTRIM": _null_guard(lambda a: _to_text(a[0]).rstrip()),
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "CONCAT": lambda a: "".join(_to_text(x) for x in a if x is not None),
    "REPLACE": _null_guard(lambda a: _to_text(a[0]).replace(_to_text(a[1]), _to_text(a[2]))),
    "NULLIF": lambda a: None if sql_compare(a[0], a[1]) == 0 else a[0],
    "GREATEST": lambda a: max((x for x in a if x is not None), default=None),
    "LEAST": lambda a: min((x for x in a if x is not None), default=None),
    "MOD": _null_guard(lambda a: a[0] % a[1]),
    "POWER": _null_guard(lambda a: float(a[0]) ** float(a[1])),
    "POW": _null_guard(lambda a: float(a[0]) ** float(a[1])),
    "SQRT": _null_guard(lambda a: math.sqrt(a[0])),
    "LN": _null_guard(lambda a: math.log(a[0])),
    "EXP": _null_guard(lambda a: math.exp(a[0])),
    "SIGN": _null_guard(lambda a: (a[0] > 0) - (a[0] < 0)),
    "LEFT": _null_guard(lambda a: _to_text(a[0])[: int(a[1])]),
    "RIGHT": _null_guard(lambda a: _to_text(a[0])[-int(a[1]):] if int(a[1]) else ""),
}


def _compile_function(expr: BoundFunction) -> Evaluator:
    try:
        fn = _FUNCTIONS[expr.name.upper()]
    except KeyError:
        raise ExecutionError(f"unknown function {expr.name!r}") from None
    arg_evals = [compile_expression(arg) for arg in expr.args]

    def call(row, ctx):
        return fn([arg(row, ctx) for arg in arg_evals])

    return call


# ---------------------------------------------------------------------------
# Vectorized (batch) compilation
# ---------------------------------------------------------------------------

# A batch evaluator maps (column arrays, entry count, execution context)
# to one object-dtype ndarray of per-entry values.  ``n`` is passed
# explicitly so constants can broadcast over zero-column batches.
BatchEvaluator = Callable[[Sequence[np.ndarray], int, Any], np.ndarray]

_is_true_ufunc = np.frompyfunc(lambda v: v is True, 1, 1)


def true_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of entries whose value is exactly ``True``.

    SQL WHERE keeps rows whose predicate is TRUE (not NULL); this is the
    adapter between a batch-evaluated predicate and the ``mask`` argument
    of :func:`repro.zset.operators.batch_filter`.
    """
    if len(values) == 0:
        return np.zeros(0, dtype=bool)
    return _is_true_ufunc(values).astype(bool)


def batch_eval(evaluator: BatchEvaluator, batch, ctx) -> np.ndarray:
    """Evaluate a compiled batch expression over a Z-set batch.

    ``batch`` is duck-typed (anything exposing ``columns`` and
    ``__len__`` — in practice a :class:`~repro.zset.batch.ZSetBatch`);
    weights are irrelevant here, expressions see values only.
    """
    return evaluator(batch.columns, len(batch), ctx)


def _broadcast(value: Any, n: int) -> np.ndarray:
    out = np.empty(n, dtype=object)
    out.fill(value)
    return out


def _lift(scalar_fn: Callable, arg_evals: list[BatchEvaluator]) -> BatchEvaluator:
    """One vectorized pass of a scalar kernel over the argument columns."""
    ufunc = np.frompyfunc(scalar_fn, len(arg_evals), 1)

    def evaluate(columns, n, ctx):
        args = [arg(columns, n, ctx) for arg in arg_evals]
        if n == 0:
            return np.empty(0, dtype=object)
        return ufunc(*args)

    return evaluate


def compile_batch_expression(expr: BoundExpression) -> BatchEvaluator:
    """Compile a bound expression into a column-at-a-time evaluator.

    Semantics are identical to :func:`compile_expression` applied per
    row (property-tested in ``tests/execution/test_expression_batch.py``),
    including *which* sub-expressions are evaluated: AND/OR guard their
    right side and CASE guards its branches by sub-batch masking, so
    conditionally-unreachable errors stay unreachable.
    """
    if isinstance(expr, BoundConstant):
        value = expr.value
        return lambda columns, n, ctx: _broadcast(value, n)
    if isinstance(expr, BoundColumn):
        index = expr.index
        return lambda columns, n, ctx: np.asarray(columns[index], dtype=object)
    if isinstance(expr, BoundParameter):
        slot = expr.index
        return lambda columns, n, ctx: _broadcast(ctx.parameter(slot), n)
    if isinstance(expr, BoundUnary):
        inner = compile_batch_expression(expr.operand)
        if expr.op == "+":
            return inner
        if expr.op == "-":
            return _lift(lambda v: None if v is None else -v, [inner])
        if expr.op == "NOT":
            return _lift(lambda v: None if v is None else (not v), [inner])
        raise ExecutionError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BoundBinary):
        return _compile_batch_binary(expr)
    if isinstance(expr, BoundIsNull):
        inner = compile_batch_expression(expr.operand)
        if expr.negated:
            return _lift(lambda v: v is not None, [inner])
        return _lift(lambda v: v is None, [inner])
    if isinstance(expr, BoundInList):
        evals = [compile_batch_expression(e) for e in [expr.operand] + expr.items]
        negated = expr.negated

        def contains(value, *candidates):
            if value is None:
                return None
            saw_null = False
            for candidate in candidates:
                ordering = sql_compare(value, candidate)
                if ordering is None:
                    saw_null = True
                elif ordering == 0:
                    return not negated
            if saw_null:
                return None
            return negated

        return _lift(contains, evals)
    if isinstance(expr, BoundBetween):
        evals = [
            compile_batch_expression(e)
            for e in (expr.operand, expr.low, expr.high)
        ]
        negated = expr.negated

        def between(value, low, high):
            low_cmp = sql_compare(value, low)
            high_cmp = sql_compare(value, high)
            if low_cmp is None or high_cmp is None:
                return None
            result = low_cmp >= 0 and high_cmp <= 0
            return (not result) if negated else result

        return _lift(between, evals)
    if isinstance(expr, BoundLike):
        evals = [
            compile_batch_expression(e) for e in (expr.operand, expr.pattern)
        ]
        negated = expr.negated

        def like(value, pattern):
            if value is None or pattern is None:
                return None
            result = bool(_like_regex(pattern).match(_to_text(value)))
            return (not result) if negated else result

        return _lift(like, evals)
    if isinstance(expr, BoundCase):
        return _compile_batch_case(expr)
    if isinstance(expr, BoundCast):
        inner = compile_batch_expression(expr.operand)
        target = expr.type
        return _lift(lambda v: cast_value(v, target), [inner])
    if isinstance(expr, BoundFunction):
        try:
            fn = _FUNCTIONS[expr.name.upper()]
        except KeyError:
            raise ExecutionError(f"unknown function {expr.name!r}") from None
        if not expr.args:
            # Zero-argument calls: engine functions are pure, so one call
            # per batch broadcast beats one per row.
            return lambda columns, n, ctx: _broadcast(fn([]), n)
        arg_evals = [compile_batch_expression(a) for a in expr.args]
        return _lift(lambda *args: fn(list(args)), arg_evals)
    if isinstance(expr, BoundSubquery):
        plan = expr.plan
        return lambda columns, n, ctx: _broadcast(ctx.scalar_subquery(plan), n)
    if isinstance(expr, BoundExists):
        plan, negated = expr.plan, expr.negated
        if negated:
            return lambda columns, n, ctx: _broadcast(
                not ctx.subquery_rows(plan), n
            )
        return lambda columns, n, ctx: _broadcast(
            bool(ctx.subquery_rows(plan)), n
        )
    if isinstance(expr, BoundInSubquery):
        operand = compile_batch_expression(expr.operand)
        plan, negated = expr.plan, expr.negated

        def contains_sub(columns, n, ctx):
            rows = ctx.subquery_rows(plan)

            def contains(value):
                if value is None:
                    return None
                saw_null = False
                for (candidate,) in rows:
                    ordering = sql_compare(value, candidate)
                    if ordering is None:
                        saw_null = True
                    elif ordering == 0:
                        return not negated
                if saw_null:
                    return None
                return negated

            values = operand(columns, n, ctx)
            if n == 0:
                return np.empty(0, dtype=object)
            return np.frompyfunc(contains, 1, 1)(values)

        return contains_sub
    raise ExecutionError(
        f"cannot batch-compile expression {type(expr).__name__}"
    )


_BINARY_KERNELS: dict[str, Callable] = {}


def _binary_kernel(op: str):
    def register(fn):
        _BINARY_KERNELS[op] = fn
        return fn
    return register


@_binary_kernel("||")
def _k_concat(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    return _to_text(lhs) + _to_text(rhs)


@_binary_kernel("+")
def _k_add(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    return lhs + rhs


@_binary_kernel("-")
def _k_sub(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    return lhs - rhs


@_binary_kernel("*")
def _k_mul(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    return lhs * rhs


@_binary_kernel("/")
def _k_div(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    if rhs == 0:
        raise ExecutionError("division by zero")
    return lhs / rhs


@_binary_kernel("%")
def _k_mod(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    if rhs == 0:
        raise ExecutionError("modulo by zero")
    if isinstance(lhs, float) or isinstance(rhs, float):
        return math.fmod(lhs, rhs)
    return lhs % rhs


def _comparison_kernel(op: str):
    def compare(lhs, rhs):
        ordering = sql_compare(lhs, rhs)
        if ordering is None:
            return None
        if op == "=":
            return ordering == 0
        if op == "<>":
            return ordering != 0
        if op == "<":
            return ordering < 0
        if op == "<=":
            return ordering <= 0
        if op == ">":
            return ordering > 0
        return ordering >= 0
    return compare


_kleene_and_ufunc = np.frompyfunc(
    lambda l, r: False
    if (l is False or r is False)
    else (None if (l is None or r is None) else True),
    2, 1,
)
_kleene_or_ufunc = np.frompyfunc(
    lambda l, r: True
    if (l is True or r is True)
    else (None if (l is None or r is None) else False),
    2, 1,
)


def _compile_batch_binary(expr: BoundBinary) -> BatchEvaluator:
    op = expr.op
    left = compile_batch_expression(expr.left)
    right = compile_batch_expression(expr.right)
    if op in ("AND", "OR"):
        # Mirror the row evaluator's short-circuit: the right side runs
        # only on entries the left side did not already decide, via a
        # gather / evaluate / scatter on the undecided sub-batch.
        decided = False if op == "AND" else True
        combine = _kleene_and_ufunc if op == "AND" else _kleene_or_ufunc

        def kleene(columns, n, ctx):
            lhs = left(columns, n, ctx)
            undecided = np.fromiter(
                (v is not decided for v in lhs), dtype=bool, count=n
            )
            if n and undecided.all():
                # Common case (a selective left side decides nothing):
                # no sub-batch gather, combine in place over the full
                # columns.
                return combine(lhs, right(columns, n, ctx))
            result = _broadcast(decided, n)
            if undecided.any():
                idx = np.nonzero(undecided)[0]
                sub = [column[idx] for column in columns]
                rhs = right(sub, len(idx), ctx)
                result[idx] = combine(lhs[idx], rhs)
            return result

        return kleene
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _lift(_comparison_kernel(op), [left, right])
    try:
        kernel = _BINARY_KERNELS[op]
    except KeyError:
        raise ExecutionError(f"unknown binary operator {op!r}") from None
    return _lift(kernel, [left, right])


def _compile_batch_case(expr: BoundCase) -> BatchEvaluator:
    branches = [
        (compile_batch_expression(when), compile_batch_expression(then))
        for when, then in expr.branches
    ]
    else_eval = (
        compile_batch_expression(expr.else_result)
        if expr.else_result is not None
        else None
    )
    operand = (
        compile_batch_expression(expr.operand)
        if expr.operand is not None
        else None
    )

    def case(columns, n, ctx):
        result = _broadcast(None, n)
        remaining = np.arange(n)
        operand_values = (
            operand(columns, n, ctx) if operand is not None else None
        )
        for when_eval, then_eval in branches:
            if len(remaining) == 0:
                break
            sub = [column[remaining] for column in columns]
            conditions = when_eval(sub, len(remaining), ctx)
            if operand_values is None:
                hit = np.fromiter(
                    (v is True for v in conditions),
                    dtype=bool, count=len(remaining),
                )
            else:
                hit = np.fromiter(
                    (
                        sql_compare(value, candidate) == 0
                        for value, candidate in zip(
                            operand_values[remaining], conditions
                        )
                    ),
                    dtype=bool, count=len(remaining),
                )
            if hit.any():
                taken = remaining[hit]
                taken_sub = [column[taken] for column in columns]
                result[taken] = then_eval(taken_sub, len(taken), ctx)
            remaining = remaining[~hit]
        if else_eval is not None and len(remaining):
            sub = [column[remaining] for column in columns]
            result[remaining] = else_eval(sub, len(remaining), ctx)
        return result

    return case
