"""Aggregate function state machines for hash aggregation.

Each aggregate is a small class with ``update(value)`` and ``result()``.
SQL semantics: NULL inputs are skipped; SUM/MIN/MAX/AVG over zero non-NULL
inputs yield NULL; COUNT yields 0.  DISTINCT variants wrap a base state
with a seen-set.
"""

from __future__ import annotations

from typing import Any

from repro.datatypes.values import sql_compare
from repro.errors import ExecutionError


class _SumState:
    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total: Any = 0
        self.seen = False

    def update(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.seen = True

    def result(self) -> Any:
        return self.total if self.seen else None


class _CountState:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def update(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class _CountStarState:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def update(self, value: Any) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


class _AvgState:
    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def result(self) -> Any:
        if self.count == 0:
            return None
        return self.total / self.count


class _MinState:
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or sql_compare(value, self.best) < 0:
            self.best = value

    def result(self) -> Any:
        return self.best


class _MaxState:
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or sql_compare(value, self.best) > 0:
            self.best = value

    def result(self) -> Any:
        return self.best


class _DistinctState:
    """Wraps a base state, forwarding each distinct non-NULL value once."""

    __slots__ = ("inner", "seen")

    def __init__(self, inner) -> None:
        self.inner = inner
        self.seen: set = set()

    def update(self, value: Any) -> None:
        if value is None:
            return
        if value in self.seen:
            return
        self.seen.add(value)
        self.inner.update(value)

    def result(self) -> Any:
        return self.inner.result()


_STATES = {
    "SUM": _SumState,
    "COUNT": _CountState,
    "AVG": _AvgState,
    "MIN": _MinState,
    "MAX": _MaxState,
}


def make_aggregate_state(function: str, star: bool, distinct: bool):
    """Create the state object for one aggregate call instance."""
    upper = function.upper()
    if upper == "COUNT" and star:
        return _CountStarState()
    try:
        state = _STATES[upper]()
    except KeyError:
        raise ExecutionError(f"unknown aggregate {function!r}") from None
    if distinct:
        return _DistinctState(state)
    return state
