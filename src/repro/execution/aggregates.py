"""Aggregate function state machines and weighted batch kernels.

Each aggregate is a small class with ``update(value)`` and ``result()``.
SQL semantics: NULL inputs are skipped; SUM/MIN/MAX/AVG over zero non-NULL
inputs yield NULL; COUNT yields 0.  DISTINCT variants wrap a base state
with a seen-set.

The ``grouped_weighted_*`` functions at the bottom are the *linear*
aggregates (SUM / COUNT / COUNT(*)) lifted to Z-set batches: inputs are
parallel arrays (dense group ids, values, integer weights) and each kernel
folds a whole batch per group in vectorized NumPy instead of per-row state
updates.  They are shared by the Z-set batch operators
(:func:`repro.zset.operators.batch_aggregate`) and the engine's batched
delta propagation (:mod:`repro.core.batched`).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.datatypes.values import sql_compare
from repro.errors import ExecutionError


class _SumState:
    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total: Any = 0
        self.seen = False

    def update(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.seen = True

    def result(self) -> Any:
        return self.total if self.seen else None


class _CountState:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def update(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class _CountStarState:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def update(self, value: Any) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


class _AvgState:
    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def result(self) -> Any:
        if self.count == 0:
            return None
        return self.total / self.count


class _MinState:
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or sql_compare(value, self.best) < 0:
            self.best = value

    def result(self) -> Any:
        return self.best


class _MaxState:
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or sql_compare(value, self.best) > 0:
            self.best = value

    def result(self) -> Any:
        return self.best


class _DistinctState:
    """Wraps a base state, forwarding each distinct non-NULL value once."""

    __slots__ = ("inner", "seen")

    def __init__(self, inner) -> None:
        self.inner = inner
        self.seen: set = set()

    def update(self, value: Any) -> None:
        if value is None:
            return
        if value in self.seen:
            return
        self.seen.add(value)
        self.inner.update(value)

    def result(self) -> Any:
        return self.inner.result()


_STATES = {
    "SUM": _SumState,
    "COUNT": _CountState,
    "AVG": _AvgState,
    "MIN": _MinState,
    "MAX": _MaxState,
}


def make_aggregate_state(function: str, star: bool, distinct: bool):
    """Create the state object for one aggregate call instance."""
    upper = function.upper()
    if upper == "COUNT" and star:
        return _CountStarState()
    try:
        state = _STATES[upper]()
    except KeyError:
        raise ExecutionError(f"unknown aggregate {function!r}") from None
    if distinct:
        return _DistinctState(state)
    return state


# ---------------------------------------------------------------------------
# Weighted batch kernels (linear aggregates over Z-set batches)
# ---------------------------------------------------------------------------

_is_null = np.frompyfunc(lambda v: v is None, 1, 1)


def null_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of NULL entries in an object-dtype value column."""
    return _is_null(values).astype(bool)


def grouped_weighted_sum(
    ids: np.ndarray, values: np.ndarray, weights: np.ndarray, num_groups: int
) -> list:
    """SUM lifted to Z-sets: per group, Σ value·weight over non-NULL values.

    Matches the row-at-a-time reference (``state += value * weight``): a
    group whose values are all NULL yields 0, not NULL — delta partial sums
    start from the additive identity.  Integer inputs produce integer
    results (the float accumulation is exact below 2**53, which the
    memcomparable key encoding already requires of this engine's numbers).
    """
    nulls = null_mask(values)
    clean = np.where(nulls, 0, values)
    try:
        numeric = np.asarray(clean, dtype=np.float64)
    except (TypeError, ValueError):
        # Non-numeric payloads (Decimals etc.): object-level fallback.
        sums: list[Any] = [0] * num_groups
        for g, value, weight in zip(ids, clean, weights):
            sums[int(g)] = sums[int(g)] + value * int(weight)
        return sums
    totals = np.bincount(ids, weights=numeric * weights, minlength=num_groups)
    keep_int = not any(isinstance(v, float) for v in values[~nulls])
    if keep_int:
        return [int(total) for total in totals]
    return [float(total) for total in totals]


def grouped_weighted_count(
    ids: np.ndarray, values: np.ndarray, weights: np.ndarray, num_groups: int
) -> list:
    """COUNT(x) lifted to Z-sets: per group, Σ weight over non-NULL x."""
    present = (~null_mask(values)).astype(np.int64)
    totals = np.bincount(ids, weights=weights * present, minlength=num_groups)
    return [int(total) for total in totals]


def grouped_weighted_count_star(
    ids: np.ndarray, weights: np.ndarray, num_groups: int
) -> list:
    """COUNT(*) lifted to Z-sets: per group, Σ weight (the group liveness)."""
    totals = np.bincount(ids, weights=weights, minlength=num_groups)
    return [int(total) for total in totals]


def merge_additive(stored: Any, delta: Any) -> Any:
    """Fold a collapsed additive delta into a stored SUM/COUNT partial.

    Mirrors the SQL upsert's ``COALESCE(stored, 0) + COALESCE(delta, 0)``
    (Listing 2): a missing or NULL stored value contributes the additive
    identity, so brand-new groups take the delta verbatim.
    """
    if stored is None:
        stored = 0
    if delta is None:
        delta = 0
    return stored + delta


def merge_minmax(stored: Any, delta: Any, want_max: bool) -> Any:
    """Fold an insert-side MIN/MAX partial into the stored extremum.

    Mirrors the SQL upsert's ``LEAST``/``GREATEST``, which skip NULLs:
    retraction of an extremum is *not* invertible from the partial alone,
    so deletions are handled by the step-2b rescan (native extrema state
    or the SQL fallback), and this merge only ever tightens the stored
    value with insert-side partials.
    """
    if stored is None:
        return delta
    if delta is None:
        return stored
    direction = 1 if want_max else -1
    return delta if sql_compare(delta, stored) * direction > 0 else stored


def derive_avg(total: Any, count: Any) -> Any:
    """AVG from its hidden sum/count companions — the SQL emits
    ``CAST(sum AS DOUBLE) / NULLIF(count, 0)``."""
    if not count:
        return None
    return float(total) / count


def grouped_minmax(
    ids: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray,
    num_groups: int,
    want_max: bool,
) -> list:
    """MIN/MAX over a *positive* batch partition (presence = weight > 0).

    MIN/MAX are not linear, so this kernel is only meaningful on a
    sign-partitioned batch (all weights > 0), where it reduces to a plain
    grouped extremum over the distinct rows present.  NULLs are skipped;
    an all-NULL group yields NULL, as in SQL.
    """
    if len(weights) and np.any(weights <= 0):
        raise ValueError(
            "grouped_minmax requires a positive batch partition; "
            "split signs before aggregating MIN/MAX"
        )
    best: list[Any] = [None] * num_groups
    direction = 1 if want_max else -1
    for g, value in zip(ids, values):
        if value is None:
            continue
        g = int(g)
        if best[g] is None or sql_compare(value, best[g]) * direction > 0:
            best[g] = value
    return best
