"""Materializing plan executor.

Each logical operator is interpreted into a Python list of row tuples.
Materialization (rather than a streaming iterator model) keeps the code
obvious and is fine at the data scale the benchmarks use; the join and
aggregate operators use hash tables, so asymptotics match a real engine.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Any, Sequence

from repro.datatypes.values import sql_compare
from repro.errors import ExecutionError
from repro.execution.aggregates import make_aggregate_state
from repro.execution.expression import compile_expression
from repro.planner.expressions import (
    BoundBinary,
    BoundColumn,
    BoundExpression,
)
from repro.planner.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalMaterializedCTE,
    LogicalOperator,
    LogicalOrder,
    LogicalProject,
    LogicalSetOp,
    LogicalValues,
)

if TYPE_CHECKING:
    from repro.catalog.catalog import Catalog

Row = tuple


class ExecutionContext:
    """Runtime state for one statement execution."""

    def __init__(self, catalog: "Catalog", parameters: Sequence[Any] = ()) -> None:
        self.catalog = catalog
        self._parameters = list(parameters)
        self._cte_cache: dict[int, list[Row]] = {}
        self._subquery_cache: dict[int, list[Row]] = {}

    def parameter(self, index: int) -> Any:
        try:
            return self._parameters[index]
        except IndexError:
            raise ExecutionError(
                f"statement requires at least {index + 1} parameters, "
                f"got {len(self._parameters)}"
            ) from None

    def cte_rows(self, plan: LogicalOperator) -> list[Row]:
        key = id(plan)
        if key not in self._cte_cache:
            self._cte_cache[key] = execute_plan(plan, self)
        return self._cte_cache[key]

    def subquery_rows(self, plan: LogicalOperator) -> list[Row]:
        key = id(plan)
        if key not in self._subquery_cache:
            self._subquery_cache[key] = execute_plan(plan, self)
        return self._subquery_cache[key]

    def scalar_subquery(self, plan: LogicalOperator) -> Any:
        rows = self.subquery_rows(plan)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        return rows[0][0]


def execute_plan(plan: LogicalOperator, ctx: ExecutionContext) -> list[Row]:
    """Execute ``plan`` and return its rows."""
    if isinstance(plan, LogicalGet):
        catalog = ctx.catalog
        if plan.database:
            catalog = catalog.attached(plan.database)
        table = catalog.table(plan.table)
        return list(table.scan())
    if isinstance(plan, LogicalValues):
        rows = []
        for exprs in plan.rows:
            evaluators = [compile_expression(e) for e in exprs]
            rows.append(tuple(e((), ctx) for e in evaluators))
        return rows
    if isinstance(plan, LogicalMaterializedCTE):
        return list(ctx.cte_rows(plan.plan))
    if isinstance(plan, LogicalFilter):
        rows = execute_plan(plan.child, ctx)
        predicate = compile_expression(plan.predicate)
        return [row for row in rows if predicate(row, ctx) is True]
    if isinstance(plan, LogicalProject):
        rows = execute_plan(plan.child, ctx)
        evaluators = [compile_expression(e) for e in plan.expressions]
        return [tuple(e(row, ctx) for e in evaluators) for row in rows]
    if isinstance(plan, LogicalAggregate):
        return _execute_aggregate(plan, ctx)
    if isinstance(plan, LogicalJoin):
        return _execute_join(plan, ctx)
    if isinstance(plan, LogicalSetOp):
        return _execute_set_op(plan, ctx)
    if isinstance(plan, LogicalDistinct):
        rows = execute_plan(plan.child, ctx)
        seen: set = set()
        result = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                result.append(row)
        return result
    if isinstance(plan, LogicalOrder):
        return _execute_order(plan, ctx)
    if isinstance(plan, LogicalLimit):
        rows = execute_plan(plan.child, ctx)
        start = plan.offset
        end = None if plan.limit is None else start + plan.limit
        return rows[start:end]
    raise ExecutionError(f"cannot execute {type(plan).__name__}")


# ---------------------------------------------------------------------------
# Aggregate
# ---------------------------------------------------------------------------


def _execute_aggregate(plan: LogicalAggregate, ctx: ExecutionContext) -> list[Row]:
    rows = execute_plan(plan.child, ctx)
    group_evals = [compile_expression(g) for g in plan.groups]
    agg_specs = []
    for call in plan.aggregates:
        arg_eval = (
            compile_expression(call.argument) if call.argument is not None else None
        )
        agg_specs.append((call, arg_eval))

    def new_states():
        return [
            make_aggregate_state(call.function, call.argument is None, call.distinct)
            for call, _ in agg_specs
        ]

    if not plan.groups:
        # Scalar aggregation: always exactly one output row.
        states = new_states()
        for row in rows:
            for (call, arg_eval), state in zip(agg_specs, states):
                state.update(arg_eval(row, ctx) if arg_eval else row)
        return [tuple(state.result() for state in states)]

    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    for row in rows:
        key = tuple(g(row, ctx) for g in group_evals)
        states = groups.get(key)
        if states is None:
            states = new_states()
            groups[key] = states
            order.append(key)
        for (call, arg_eval), state in zip(agg_specs, states):
            state.update(arg_eval(row, ctx) if arg_eval else row)
    return [
        key + tuple(state.result() for state in groups[key]) for key in order
    ]


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


def _split_equi_keys(
    condition: BoundExpression | None, left_arity: int
) -> tuple[list[tuple[int, int]], list[BoundExpression]]:
    """Extract equi-join key pairs (left_idx, right_idx) from a condition.

    Returns the key pairs and the residual conjuncts that must still be
    evaluated per candidate pair.  Right indexes are relative to the right
    child's row.
    """
    keys: list[tuple[int, int]] = []
    residual: list[BoundExpression] = []

    def visit(expr: BoundExpression) -> None:
        if isinstance(expr, BoundBinary) and expr.op == "AND":
            visit(expr.left)
            visit(expr.right)
            return
        if (
            isinstance(expr, BoundBinary)
            and expr.op == "="
            and isinstance(expr.left, BoundColumn)
            and isinstance(expr.right, BoundColumn)
        ):
            a, b = expr.left.index, expr.right.index
            if a < left_arity <= b:
                keys.append((a, b - left_arity))
                return
            if b < left_arity <= a:
                keys.append((b, a - left_arity))
                return
        residual.append(expr)

    if condition is not None:
        visit(condition)
    return keys, residual


def _index_join_candidate(plan: LogicalJoin, ctx: ExecutionContext, keys):
    """An ART index on the right side covering the equi keys, if usable.

    The paper motivates exactly this: the ART built for the materialized
    aggregate "can be used in the future to speed up joins".  Returns
    (table, index_name, ordered_right_ordinals) or None.
    """
    if plan.join_type not in ("INNER", "LEFT") or not keys:
        return None
    right_ordinals = [ri for _, ri in keys]
    if len(set(right_ordinals)) != len(right_ordinals):
        return None  # composite conditions on one column: use the hash join
    right = plan.right
    if not isinstance(right, LogicalGet):
        return None
    catalog = ctx.catalog
    if right.database:
        catalog = catalog.attached(right.database)
    table = catalog.table(right.table)
    index_name = table.find_index_on([ri for _, ri in keys])
    if index_name is None:
        return None
    return table, index_name, table.index_key_columns(index_name)


def _execute_index_join(
    plan: LogicalJoin, ctx: ExecutionContext, keys, residual_ok, candidate
) -> list[Row]:
    """Index-nested-loop join: probe the right table's ART per left row."""
    table, index_name, index_ordinals = candidate
    left_rows = execute_plan(plan.left, ctx)
    # Map each index key slot to the left-row ordinal that feeds it.
    right_to_left = {ri: li for li, ri in keys}
    probe_ordinals = [right_to_left[ri] for ri in index_ordinals]
    null_right = (None,) * plan.right.arity
    result: list[Row] = []
    for lrow in left_rows:
        probe = [lrow[i] for i in probe_ordinals]
        matched = False
        if not any(v is None for v in probe):
            for row_id in table.lookup_row_ids(index_name, probe):
                combined = lrow + table.row(row_id)
                if residual_ok(combined):
                    result.append(combined)
                    matched = True
        if not matched and plan.join_type == "LEFT":
            result.append(lrow + null_right)
    return result


def _execute_join(plan: LogicalJoin, ctx: ExecutionContext) -> list[Row]:
    left_arity = plan.left.arity
    right_arity = plan.right.arity
    join_type = plan.join_type

    if join_type == "CROSS":
        left_rows = execute_plan(plan.left, ctx)
        right_rows = execute_plan(plan.right, ctx)
        return [l + r for l in left_rows for r in right_rows]

    keys, residual = _split_equi_keys(plan.condition, left_arity)
    residual_evals = [compile_expression(r) for r in residual]

    def residual_ok(combined: Row) -> bool:
        return all(e(combined, ctx) is True for e in residual_evals)

    candidate = _index_join_candidate(plan, ctx, keys)
    if candidate is not None:
        return _execute_index_join(plan, ctx, keys, residual_ok, candidate)

    left_rows = execute_plan(plan.left, ctx)
    right_rows = execute_plan(plan.right, ctx)
    null_left = (None,) * left_arity
    null_right = (None,) * right_arity
    result: list[Row] = []

    if keys:
        # Hash join: build on the right side.
        build: dict[tuple, list[int]] = {}
        for j, row in enumerate(right_rows):
            key = tuple(row[ri] for _, ri in keys)
            if any(v is None for v in key):
                continue  # NULL keys never match
            build.setdefault(key, []).append(j)
        right_matched = [False] * len(right_rows)
        for lrow in left_rows:
            key = tuple(lrow[li] for li, _ in keys)
            matched = False
            if not any(v is None for v in key):
                for j in build.get(key, ()):
                    combined = lrow + right_rows[j]
                    if residual_ok(combined):
                        result.append(combined)
                        matched = True
                        right_matched[j] = True
            if not matched and join_type in ("LEFT", "FULL"):
                result.append(lrow + null_right)
        if join_type in ("RIGHT", "FULL"):
            for j, matched in enumerate(right_matched):
                if not matched:
                    result.append(null_left + right_rows[j])
        return result

    # Nested-loop join for non-equi conditions.
    condition_eval = (
        compile_expression(plan.condition) if plan.condition is not None else None
    )
    right_matched = [False] * len(right_rows)
    for lrow in left_rows:
        matched = False
        for j, rrow in enumerate(right_rows):
            combined = lrow + rrow
            if condition_eval is None or condition_eval(combined, ctx) is True:
                result.append(combined)
                matched = True
                right_matched[j] = True
        if not matched and join_type in ("LEFT", "FULL"):
            result.append(lrow + null_right)
    if join_type in ("RIGHT", "FULL"):
        for j, matched in enumerate(right_matched):
            if not matched:
                result.append(null_left + right_rows[j])
    return result


# ---------------------------------------------------------------------------
# Set operations and ordering
# ---------------------------------------------------------------------------


def _execute_set_op(plan: LogicalSetOp, ctx: ExecutionContext) -> list[Row]:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    if plan.op == "UNION ALL":
        return left + right
    if plan.op == "UNION":
        seen: set = set()
        result = []
        for row in left + right:
            if row not in seen:
                seen.add(row)
                result.append(row)
        return result
    if plan.op == "EXCEPT":
        exclude = set(right)
        seen = set()
        result = []
        for row in left:
            if row not in exclude and row not in seen:
                seen.add(row)
                result.append(row)
        return result
    if plan.op == "INTERSECT":
        keep = set(right)
        seen = set()
        result = []
        for row in left:
            if row in keep and row not in seen:
                seen.add(row)
                result.append(row)
        return result
    raise ExecutionError(f"unknown set operation {plan.op!r}")


def _execute_order(plan: LogicalOrder, ctx: ExecutionContext) -> list[Row]:
    rows = execute_plan(plan.child, ctx)
    key_evals = [(compile_expression(e), asc) for e, asc in plan.keys]

    def comparator(a: Row, b: Row) -> int:
        for evaluator, ascending in key_evals:
            va, vb = evaluator(a, ctx), evaluator(b, ctx)
            if va is None and vb is None:
                continue
            # NULLS LAST for ASC, NULLS FIRST for DESC (DuckDB default).
            if va is None:
                return 1 if ascending else -1
            if vb is None:
                return -1 if ascending else 1
            ordering = sql_compare(va, vb)
            if ordering is None or ordering == 0:
                continue
            return ordering if ascending else -ordering
        return 0

    return sorted(rows, key=functools.cmp_to_key(comparator))
