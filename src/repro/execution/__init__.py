"""Pull-based plan execution: expression closures, aggregates, joins."""

from repro.execution.executor import ExecutionContext, execute_plan

__all__ = ["ExecutionContext", "execute_plan"]
