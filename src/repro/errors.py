"""Exception hierarchy shared by the engine substrate and the IVM compiler.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch a single base class.  The sub-classes mirror the
stages of query processing: lexing/parsing, binding (name/type resolution),
catalog lookups, constraint enforcement, execution, and IVM compilation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParserError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Carries the offending position so callers (and the extension
    fall-back-parser machinery) can report or recover from it.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1) -> None:
        super().__init__(message)
        self.position = position
        self.line = line


class BinderError(ReproError):
    """Raised when names or types in a parsed statement cannot be resolved."""


class CatalogError(ReproError):
    """Raised for missing/duplicate tables, views, or indexes."""


class TypeError_(ReproError):
    """Raised when a value cannot be coerced to the required SQL type."""


class ConstraintError(ReproError):
    """Raised on primary-key or not-null violations."""


class ExecutionError(ReproError):
    """Raised when a bound plan fails at runtime (e.g. division by zero)."""


class IVMError(ReproError):
    """Raised when a view definition cannot be incrementally maintained."""


class WALError(ReproError):
    """Raised for corrupt write-ahead-log records (CRC mismatch, bad
    magic, non-monotone LSNs).  Torn tails are *not* errors — a partial
    final record is the expected shape of a crash and is truncated."""


class RecoveryError(ReproError):
    """Raised when replay-on-restart cannot reconstruct a consistent
    engine state (e.g. WAL records with no covering checkpoint)."""


class BackpressureError(ReproError):
    """Raised by the ingest queue when admission control rejects a delta
    batch: the ``shed`` policy raises on overflow, and the ``block``
    policy raises after waiting ``queue_block_timeout`` seconds without
    the drainer relieving the queue.  The base-table mutation that
    produced the batch has already been applied (capture runs in AFTER
    triggers); the watching views are flagged for full recompute so they
    converge despite the dropped capture."""


class WorkerTimeoutError(ReproError):
    """Raised when a sharded refresh worker exceeds
    ``CompilerFlags.worker_timeout`` and cannot be safely retried.  The
    worker pool is abandoned (hung threads are fenced off from shard
    state by the round token) and the view self-heals via recompute."""

    def __init__(self, message: str, shards: tuple = ()) -> None:
        super().__init__(message)
        self.shards = tuple(shards)


class FaultInjectedError(ReproError):
    """An artificial failure raised by the deterministic fault-injection
    layer (:mod:`repro.core.faults`).  ``site`` names the injection
    point; ``retryable`` tells retry loops whether the fault models a
    transient error (safe to retry — injected before any state
    mutation) or a hard one."""

    def __init__(
        self, site: str, retryable: bool = True, detail: str = ""
    ) -> None:
        message = f"injected fault at {site}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.site = site
        self.retryable = retryable


class UnsupportedError(IVMError):
    """Raised for SQL constructs outside the compiler's supported surface."""


class DependencyCycleError(IVMError):
    """Raised at CREATE MATERIALIZED VIEW time when a view definition
    would close a cycle in the view dependency DAG (including the
    degenerate self-reference).  ``cycle`` carries the offending path as
    a tuple of view names, first == last."""

    def __init__(self, message: str, cycle: tuple = ()) -> None:
        super().__init__(message)
        self.cycle = tuple(cycle)
