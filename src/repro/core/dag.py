"""View dependency DAG.

When ``cascade_views`` is on, a materialized view's FROM clause may name
other materialized views.  This module tracks the resulting dependency
graph so the extension can (a) reject cycles and self-references at
CREATE time with a typed :class:`~repro.errors.DependencyCycleError`,
(b) order refreshes topologically (upstreams before dependents), and
(c) answer the closure queries the cascade runtime needs: "which views
must be fresh before this one refreshes?" (upstream closure) and "which
views consume this one's output delta?" (dependents closure).

The graph is tiny (one node per view) and mutated only under the
extension's statement path, so plain dicts + recomputed traversals are
the right weight — no incremental topo maintenance.
"""

from __future__ import annotations

from repro.errors import DependencyCycleError

__all__ = ["ViewDependencyGraph"]


class ViewDependencyGraph:
    """Directed acyclic graph of view-over-view dependencies.

    Edges point *upstream*: ``upstream(v)`` is the set of views ``v``
    reads from; ``dependents(v)`` is the reverse.  Base tables are not
    nodes — a view with no view-sources is a root (depth 0).
    """

    def __init__(self) -> None:
        # view name (lower) -> set of upstream view names (lower)
        self._upstream: dict[str, set[str]] = {}
        # reverse adjacency, maintained in lockstep
        self._dependents: dict[str, set[str]] = {}

    # -- mutation ----------------------------------------------------------

    def add_view(self, name: str, upstream: set[str] | frozenset[str] | list[str] | tuple[str, ...] = ()) -> None:
        """Register ``name`` reading from the views in ``upstream``.

        Raises :class:`DependencyCycleError` (leaving the graph
        untouched) if the new edges would close a cycle — including the
        degenerate ``name in upstream`` self-reference.  Upstream names
        that are not registered views are ignored: callers pass only
        known view names, but being lenient here keeps the graph usable
        during recovery replay.
        """
        key = name.lower()
        ups = {u.lower() for u in upstream}
        if key in ups:
            raise DependencyCycleError(
                f"view {name} references itself", cycle=(key, key)
            )
        known_ups = {u for u in ups if u in self._upstream}
        # A cycle through the new node needs a path from one of its
        # upstreams back to it — impossible unless ``key`` already
        # exists (CREATE OR REPLACE over a view with dependents).
        if key in self._upstream:
            for start in known_ups:
                path = self._find_path(start, key)
                if path is not None:
                    raise DependencyCycleError(
                        f"view {name} would close a dependency cycle: "
                        + " -> ".join((key, *path)),
                        cycle=(key, *path),
                    )
        self._upstream[key] = known_ups
        self._dependents.setdefault(key, set())
        for up in known_ups:
            self._dependents.setdefault(up, set()).add(key)

    def remove_view(self, name: str) -> None:
        key = name.lower()
        for up in self._upstream.pop(key, set()):
            self._dependents.get(up, set()).discard(key)
        self._dependents.pop(key, None)
        # Dangling edges from dependents of a dropped view cannot exist:
        # the extension refuses to drop a view that still has dependents.

    # -- queries -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._upstream

    def upstream(self, name: str) -> set[str]:
        """Direct view-sources of ``name``."""
        return set(self._upstream.get(name.lower(), set()))

    def dependents(self, name: str) -> set[str]:
        """Views reading directly from ``name``."""
        return set(self._dependents.get(name.lower(), set()))

    def upstream_closure(self, name: str) -> list[str]:
        """All transitive upstreams of ``name``, topologically ordered
        (furthest upstream first).  Excludes ``name`` itself."""
        members = self._closure(name, self._upstream)
        return [v for v in self.topo_sort() if v in members]

    def dependents_closure(self, name: str) -> list[str]:
        """All transitive dependents of ``name``, topologically ordered
        (nearest dependent first).  Excludes ``name`` itself."""
        members = self._closure(name, self._dependents)
        return [v for v in self.topo_sort() if v in members]

    def topo_sort(self) -> list[str]:
        """Every registered view, upstreams before dependents.  Ties are
        broken by registration order, so the result is deterministic and
        matches creation order for a creation-ordered input (recovery
        relies on this)."""
        indegree = {v: len(ups) for v, ups in self._upstream.items()}
        order: list[str] = []
        ready = [v for v in self._upstream if indegree[v] == 0]
        while ready:
            node = ready.pop(0)
            order.append(node)
            for dep in sorted(self._dependents.get(node, set())):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        return order

    def depth(self, name: str) -> int:
        """Longest upstream chain below ``name``; 0 for a view over base
        tables only."""
        key = name.lower()
        if key not in self._upstream:
            return 0
        best = 0
        for up in self._upstream[key]:
            best = max(best, self.depth(up) + 1)
        return best

    # -- internals ---------------------------------------------------------

    def _closure(self, name: str, adjacency: dict[str, set[str]]) -> set[str]:
        seen: set[str] = set()
        stack = list(adjacency.get(name.lower(), set()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, set()) - seen)
        return seen

    def _find_path(self, start: str, goal: str) -> tuple[str, ...] | None:
        """Path start -> ... -> goal following upstream edges, or None."""
        stack: list[tuple[str, tuple[str, ...]]] = [(start, (start,))]
        seen: set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for up in self._upstream.get(node, set()):
                stack.append((up, path + (up,)))
        return None
