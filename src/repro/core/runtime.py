"""The async ingestion runtime: bounded queue, backpressure, degradation.

This module is the overload-and-partial-failure layer in front of the
IVM capture path:

* :class:`IngestQueue` — a bounded, thread-safe queue of captured delta
  batches.  The AFTER triggers enqueue (instead of writing WAL + ΔT
  synchronously); the refresher drains on batch-size, deadline, and
  high-watermark triggers.  Overflow is governed by a pluggable
  backpressure policy:

  - ``block``: the writer waits for the drainer to pull the queue below
    the low watermark — or, when no background refresher is attached,
    pays for the drain itself (inline), which is backpressure in its
    purest form.  A blocked writer gives up with
    :class:`~repro.errors.BackpressureError` after
    ``queue_block_timeout`` seconds so a dead drainer cannot deadlock
    the write path.
  - ``shed``: the batch is rejected with a typed
    :class:`~repro.errors.BackpressureError`.  The caller (the
    extension's capture trigger) flags the watching views for full
    recompute, because the base mutation has already been applied — shed
    load trades refresh work for bounded memory, never correctness.
  - ``coalesce``: opposite-sign rows already queued annihilate (an
    insert and its later delete cancel before ever reaching ΔT), which
    absorbs churny burst patterns in place; if compaction cannot get
    under capacity the policy degrades to ``block``.

* :class:`DegradationLadder` — the escalating response to repeated
  refresh failures: ``parallel-sharded → serial-sharded → unsharded
  (SQL fallback) → full recompute``, one rung per failure, healing one
  rung back after N consecutive clean refreshes.  Every demotion and
  heal is recorded as a structured event in
  :class:`~repro.core.propagate.RefreshStats`.

* :class:`RefreshDaemon` — the optional background refresher thread
  (``CompilerFlags.queue_async``): wakes on the deadline tick or a
  high-watermark signal and runs the extension's pump under its runtime
  lock.  Off by default; the synchronous pump path (piggybacked on the
  next statement) is deterministic and is what the tests drive.

Fault injection: ``queue.enqueue`` is a named site of
:class:`~repro.core.faults.FaultPlan`; an injected admission fault is
indistinguishable from a shed to the caller.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import BackpressureError
from repro.storage.keys import encode_key

# Degradation-ladder rungs, mildest to most degraded.
RUNG_PARALLEL = 0  # full plan: sharded parallel / native pipeline
RUNG_SERIAL = 1  # sharded refresh on the calling thread, no pool
RUNG_UNSHARDED = 2  # per-statement SQL fallback (native steps disabled)
RUNG_RECOMPUTE = 3  # every refresh is a full recompute
RUNG_NAMES = ("parallel", "serial", "unsharded", "recompute")


@dataclass
class DeltaBatch:
    """One captured delta batch waiting in the ingest queue."""

    table: str
    # Full delta rows: base columns + trailing boolean multiplicity.
    rows: list
    # How many rows carry FALSE multiplicity (the retraction-rate feed).
    retractions: int = 0
    enqueued_at: float = 0.0


class IngestQueue:
    """Bounded admission control in front of the capture path.

    ``drain_callback`` is invoked (without the queue lock) when a
    blocked writer must relieve the queue itself — the extension wires
    its drain-to-ΔT routine here.  ``wake_callback`` pokes the
    background refresher (when one is attached) on high-watermark
    crossings.
    """

    def __init__(
        self,
        capacity: int = 4096,
        policy: str = "block",
        high_watermark: float = 0.8,
        low_watermark: float = 0.5,
        block_timeout: float = 5.0,
        drain_callback: Callable[[], Any] | None = None,
        wake_callback: Callable[[], None] | None = None,
        fault_plan: Any = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.capacity = int(capacity)
        self.policy = policy
        self.high_rows = max(1, int(self.capacity * high_watermark))
        self.low_rows = max(0, int(self.capacity * low_watermark))
        self.block_timeout = float(block_timeout)
        self.drain_callback = drain_callback
        self.wake_callback = wake_callback
        self.fault_plan = fault_plan
        self.clock = clock
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._batches: deque[DeltaBatch] = deque()
        self._rows = 0
        # True while a background refresher owns draining; blocked
        # writers then wait instead of draining inline.
        self._has_drainer = False
        # Admission-control counters (all monotone; snapshot() copies).
        self.counters = {
            "enqueued_batches": 0,
            "enqueued_rows": 0,
            "drained_batches": 0,
            "drained_rows": 0,
            "shed_batches": 0,
            "shed_rows": 0,
            "coalesced_rows": 0,
            "blocked_enqueues": 0,
            "inline_drains": 0,
            "high_watermark_hits": 0,
            "max_depth_rows": 0,
        }

    # -- producer side ---------------------------------------------------

    def enqueue(self, table: str, rows, retractions: int = 0) -> None:
        """Admit one delta batch, applying the backpressure policy.

        Raises :class:`~repro.errors.BackpressureError` when the policy
        sheds the batch (or a blocked writer times out) — the caller is
        responsible for the recompute self-heal of the watching views.
        """
        if self.fault_plan is not None:
            self.fault_plan.check("queue.enqueue", table=table)
        rows = list(rows)
        if not rows:
            return
        deadline = self.clock() + self.block_timeout
        with self._not_full:
            while self._rows + len(rows) > self.capacity:
                if self.policy == "shed":
                    self.counters["shed_batches"] += 1
                    self.counters["shed_rows"] += len(rows)
                    raise BackpressureError(
                        f"ingest queue over capacity ({self._rows} rows "
                        f"queued, capacity {self.capacity}); batch of "
                        f"{len(rows)} rows for {table!r} shed"
                    )
                if self.policy == "coalesce":
                    if self._coalesce_locked(table, rows, retractions):
                        return  # admitted via joint compaction
                if self._rows == 0 and len(rows) > self.capacity:
                    # A single batch larger than the whole queue can
                    # never fit; once the queue has drained empty, admit
                    # it anyway — capacity bounds *accumulation*, and
                    # waiting forever would wedge the block/coalesce
                    # policies (shed keeps its hard bound and raised
                    # above).
                    break
                # block (and coalesce-after-compaction): wait for the
                # drainer, or drain inline when none is attached.
                self.counters["blocked_enqueues"] += 1
                if self._has_drainer:
                    remaining = deadline - self.clock()
                    if remaining <= 0 or not self._not_full.wait(
                        timeout=min(remaining, 0.05)
                    ):
                        if self.clock() >= deadline:
                            self.counters["shed_batches"] += 1
                            self.counters["shed_rows"] += len(rows)
                            raise BackpressureError(
                                f"writer blocked longer than "
                                f"{self.block_timeout}s waiting for the "
                                f"queue drainer; batch for {table!r} shed"
                            )
                    continue
                if self.drain_callback is None:
                    self.counters["shed_batches"] += 1
                    self.counters["shed_rows"] += len(rows)
                    raise BackpressureError(
                        "ingest queue full and no drainer attached; "
                        f"batch for {table!r} shed"
                    )
                self.counters["inline_drains"] += 1
                self._not_full.release()
                try:
                    self.drain_callback()
                finally:
                    self._not_full.acquire()
            self._admit_locked(table, rows, retractions)
        if self.wake_callback is not None and self._rows >= self.high_rows:
            self.wake_callback()

    def _admit_locked(self, table: str, rows: list, retractions: int) -> None:
        self._batches.append(
            DeltaBatch(
                table=table,
                rows=rows,
                retractions=int(retractions),
                enqueued_at=self.clock(),
            )
        )
        self._rows += len(rows)
        self.counters["enqueued_batches"] += 1
        self.counters["enqueued_rows"] += len(rows)
        if self._rows > self.counters["max_depth_rows"]:
            self.counters["max_depth_rows"] = self._rows
        if self._rows >= self.high_rows:
            self.counters["high_watermark_hits"] += 1

    def _coalesce_locked(
        self, table: str, rows: list, retractions: int
    ) -> bool:
        """Compact the queue *jointly with the incoming batch* by
        cancelling opposite-sign rows per table.

        Rows are grouped per table by the memcomparable encoding of
        their value columns; the signed multiplicities sum, and a key
        whose net count is zero vanishes entirely.  Z-set semantics make
        this exact: ΔT order never matters, only the signed multiset.

        Returns True when the compacted whole (queue + incoming batch)
        fits under capacity and has been installed — the incoming batch
        is then admitted.  Otherwise the queue alone is compacted
        in place and False is returned (caller falls back to blocking).
        """
        incoming = DeltaBatch(
            table=table,
            rows=rows,
            retractions=int(retractions),
            enqueued_at=self.clock(),
        )
        compacted, total = self._merge(list(self._batches) + [incoming])
        admitted = total <= self.capacity
        if admitted:
            cancelled = (self._rows + len(rows)) - total
            self.counters["enqueued_batches"] += 1
            self.counters["enqueued_rows"] += len(rows)
        else:
            compacted, total = self._merge(list(self._batches))
            cancelled = self._rows - total
        self._batches = deque(compacted)
        self._rows = total
        self.counters["coalesced_rows"] += cancelled
        if self._rows > self.counters["max_depth_rows"]:
            self.counters["max_depth_rows"] = self._rows
        return admitted

    @staticmethod
    def _merge(batches: list) -> tuple[list, int]:
        """Net out the signed row multiset of ``batches`` per table.
        Returns (compacted batch list, total surviving rows)."""
        merged: dict[str, dict[bytes, list]] = {}
        order: list[str] = []
        oldest: dict[str, float] = {}
        for batch in batches:
            per_table = merged.setdefault(batch.table, {})
            if batch.table not in oldest:
                order.append(batch.table)
                oldest[batch.table] = batch.enqueued_at
            for row in batch.rows:
                key = encode_key(tuple(row[:-1]))
                entry = per_table.get(key)
                if entry is None:
                    per_table[key] = [row, 1 if row[-1] else -1]
                else:
                    entry[1] += 1 if row[-1] else -1
        out: list[DeltaBatch] = []
        total = 0
        for table in order:
            survivors: list = []
            retractions = 0
            for row, net in merged[table].values():
                if net == 0:
                    continue
                multiplicity = net > 0
                values = tuple(row[:-1]) + (multiplicity,)
                if not multiplicity:
                    retractions += abs(net)
                survivors.extend([values] * abs(net))
            if survivors:
                out.append(
                    DeltaBatch(
                        table=table,
                        rows=survivors,
                        retractions=retractions,
                        enqueued_at=oldest[table],
                    )
                )
                total += len(survivors)
        return out, total

    # -- consumer side ---------------------------------------------------

    def drain(self) -> list[DeltaBatch]:
        """Pop every queued batch (enqueue order) and release blocked
        writers.  The caller moves the rows to WAL + ΔT."""
        with self._not_full:
            batches = list(self._batches)
            self._batches.clear()
            self.counters["drained_batches"] += len(batches)
            self.counters["drained_rows"] += self._rows
            self._rows = 0
            self._not_full.notify_all()
        return batches

    def attach_drainer(self) -> None:
        """Mark that a background refresher owns draining (blocked
        writers wait for it instead of draining inline)."""
        self._has_drainer = True

    def detach_drainer(self) -> None:
        with self._not_full:
            self._has_drainer = False
            self._not_full.notify_all()

    # -- triggers & introspection ----------------------------------------

    def depth(self) -> int:
        """Queued rows right now."""
        return self._rows

    def oldest_age(self) -> float:
        """Seconds the oldest queued batch has waited (0.0 when empty)."""
        with self._lock:
            if not self._batches:
                return 0.0
            return max(0.0, self.clock() - self._batches[0].enqueued_at)

    def drain_due(self, batch_rows: int = 0, deadline: float = 0.0) -> bool:
        """Should the refresher drain now?  True when the queued rows
        reach ``batch_rows`` (0 disables), the oldest batch is older
        than ``deadline`` seconds (0 disables), or the high watermark
        has been crossed."""
        if self._rows == 0:
            return False
        if batch_rows > 0 and self._rows >= batch_rows:
            return True
        if self._rows >= self.high_rows:
            return True
        return deadline > 0 and self.oldest_age() >= deadline

    def snapshot(self) -> dict:
        """JSON-shaped admission-control counters + current depth."""
        with self._lock:
            out = dict(self.counters)
            out["depth_rows"] = self._rows
            out["depth_batches"] = len(self._batches)
        out["capacity_rows"] = self.capacity
        out["policy"] = self.policy
        out["high_watermark_rows"] = self.high_rows
        out["low_watermark_rows"] = self.low_rows
        return out


@dataclass
class DegradationLadder:
    """Escalating refresh degradation with heal-back.

    One failed refresh demotes one rung; ``heal_after`` consecutive
    clean refreshes at a demoted rung heal one rung back.  The extension
    translates the rung into a plan: rung 0 runs the compiled plan
    (sharded parallel where available), rung 1 forces serial shard
    execution, rung 2 disables the native steps entirely (the compiled
    SQL script is the always-available unsharded fallback), and rung 3
    rebuilds the view from the base tables every round.  Demotions and
    heals are appended to the view's RefreshStats event log by the
    caller.
    """

    heal_after: int = 3
    rung: int = RUNG_PARALLEL
    consecutive_clean: int = 0
    demotions: int = 0
    heals: int = 0

    @property
    def rung_name(self) -> str:
        return RUNG_NAMES[self.rung]

    def note_failure(self) -> tuple[int, int]:
        """One refresh failed: demote (bounded at the recompute rung).
        Returns ``(from_rung, to_rung)``."""
        previous = self.rung
        self.rung = min(self.rung + 1, RUNG_RECOMPUTE)
        self.consecutive_clean = 0
        if self.rung != previous:
            self.demotions += 1
        return previous, self.rung

    def note_clean(self) -> tuple[int, int] | None:
        """One refresh succeeded; heal one rung after ``heal_after``
        consecutive cleans.  Returns ``(from_rung, to_rung)`` when a
        heal happened, else None."""
        if self.rung == RUNG_PARALLEL:
            self.consecutive_clean = 0
            return None
        self.consecutive_clean += 1
        if self.consecutive_clean < self.heal_after:
            return None
        previous = self.rung
        self.rung -= 1
        self.consecutive_clean = 0
        self.heals += 1
        return previous, self.rung

    def snapshot(self) -> dict:
        return {
            "rung": self.rung,
            "rung_name": self.rung_name,
            "consecutive_clean": self.consecutive_clean,
            "demotions": self.demotions,
            "heals": self.heals,
        }


class RefreshDaemon:
    """Background refresher: drains the queue on deadline ticks and
    high-watermark wakes, serialized through ``pump`` (the extension's
    drain-and-refresh entry, which takes the runtime lock).

    Lifecycle: ``start()`` attaches it as the queue's drainer;
    ``stop()`` joins the thread and detaches.  Errors from ``pump`` are
    counted and swallowed — a background refresh failure must not kill
    the drainer; the degradation ladder and recompute self-heal handle
    the view-side consequences.
    """

    def __init__(
        self,
        queue: IngestQueue,
        pump: Callable[[], Any],
        tick: float = 0.01,
    ) -> None:
        self.queue = queue
        self.pump = pump
        self.tick = float(tick)
        self.errors = 0
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self.queue.attach_drainer()
        self.queue.wake_callback = self._wake.set
        self._thread = threading.Thread(
            target=self._run, name="ivm-refresher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.queue.detach_drainer()
        self.queue.wake_callback = None

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.tick)
            self._wake.clear()
            if self._stop.is_set():
                break
            if self.queue.depth() == 0:
                continue
            try:
                self.pump()
            except Exception:
                self.errors += 1
