"""Analytic per-refresh cost model: UES-style upper bounds per step.

The adaptive planner (:mod:`repro.core.adaptive`) must rank candidate
refresh plans *before* running them, from statistics that cost O(1) to
collect.  Following the UES recipe (Hertzschuch et al., CIDR'21 — simple
upper bounds beat mis-estimated exact models), each plan's predicted
cost is a **positive linear functional** over the per-refresh signals:

    cost(plan, s) = Σ_f  coef(plan)[f] · s[f]        (coef ≥ 0)

with one pseudo-signal ``constant = 1`` carrying per-statement fixed
overheads.  The coefficients are per-step formulas:

* step 1 — rows probed: native kernels touch each delta row once
  (ART descent per distinct key); the SQL form pays interpreter
  overhead per row plus a fixed statement cost.
* step 2 — keys upserted: the native upsert/regroup/outer-merge kernels
  are linear in the *touched-group* count (bounded UES-style by
  ``min(delta_rows, view_rows)`` — a group must appear in the delta,
  and there are only |V| groups); the SQL forms of the regroup/outer
  strategies rebuild the stored table, hence a ``view_rows`` term.
* step 3 — liveness: native tests only the touched keys; the SQL DELETE
  scans the view (``view_rows``).
* sharded — routing is linear in delta rows; with a parallel pool the
  per-shard fold is bounded by the *hottest* shard
  (``max_shard_load``), plus a merge-barrier overhead per shard.

Calibration: the constants below are fitted against the measured
ablations of ``BENCH_pipeline.json`` (15k-row join view, 50-row deltas:
full-native ≈ 2.2 ms vs pure-SQL ≈ 14 ms; sharded 100k-row skewed
config: 4 shards ≈ 2.8x over 1).  They only need to get *ratios* right
— the planner replaces them with observed wall seconds per arm after a
few rounds (BAO-style; Marcus et al., SIGMOD'22).

Ranking stability (the property tests hold this): because every cost is
a positive linear functional, multiplying each signal by a factor in
``(1 − ε, 1 + ε)`` changes each cost by at most that factor.  For the
top two plans with costs ``c1 ≤ c2`` the ranking therefore survives any
perturbation with

    ε  <  ε* = (c2 − c1) / (c2 + c1)

since perturbed costs satisfy ``c1' ≤ c1·(1+ε) < c2·(1−ε) ≤ c2'``
exactly when ``ε < ε*``.  :func:`stability_epsilon` reports that margin
for a ranking; a decision is only "confident" when the margin is wide.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

# -- calibrated constants (seconds), fitted from BENCH_pipeline.json ------

# SQL path: per-statement parse/plan/dispatch overhead and per-row
# interpreter cost (pure-SQL refresh of the 15k-row join view spends
# ~14 ms over ~8 statements scanning the 15k-row view twice).
SQL_STATEMENT_SECONDS = 3e-4
SQL_ROW_SECONDS = 5e-7
# Native step 1: one ART probe + fold per delta row.
NATIVE_DELTA_ROW_SECONDS = 1.2e-5
# Native step 2 kernels: per touched group — point lookup, merge, upsert.
NATIVE_UPSERT_KEY_SECONDS = 2.0e-5
NATIVE_REGROUP_KEY_SECONDS = 3.0e-5
NATIVE_OUTER_KEY_SECONDS = 2.2e-5
# Native step 3 / 2b: one stored-row probe per touched (or retracted) key.
NATIVE_PROBE_KEY_SECONDS = 8e-6
# Sharded refresh: per-row routing cost and per-shard barrier overhead.
SHARD_ROUTE_ROW_SECONDS = 6e-6
SHARD_BARRIER_SECONDS = 1.5e-4

# Signal field names, in a fixed order (the "constant" pseudo-signal is
# always 1; it carries the fixed per-statement overheads).
SIGNAL_FIELDS = (
    "constant",
    "delta_rows",
    "view_rows",
    "touched_groups",
    "retraction_rows",
    "max_shard_load",
)


@dataclass(frozen=True)
class RefreshSignals:
    """Cheap per-refresh statistics; every field is O(1) to collect.

    ``delta_rows`` — unconsumed ΔT rows (live counts of the delta
    tables); ``view_rows`` — |V| (live count of the stored view);
    ``touched_groups`` — UES bound on distinct groups in the delta
    (:meth:`bound_touched`); ``retraction_rows`` — captured rows with
    FALSE multiplicity since the last refresh; ``max_shard_load`` —
    projected hottest-shard row count (from the last round's observed
    shard loads); ``shard_skew`` — last observed max/mean load ratio
    (carried for diagnostics/regime detection, not a cost term).
    """

    delta_rows: int = 0
    view_rows: int = 0
    touched_groups: int = 0
    retraction_rows: int = 0
    max_shard_load: int = 0
    shard_skew: float = 0.0

    @staticmethod
    def bound_touched(delta_rows: int, view_rows: int) -> int:
        """UES-style upper bound on the distinct touched-group count: a
        touched group needs at least one delta row, and there are at
        most |V| (+ the new groups, themselves ≤ delta_rows) of them."""
        return max(1, min(int(delta_rows), max(int(view_rows), 1)))

    def as_dict(self) -> dict:
        return {
            "delta_rows": self.delta_rows,
            "view_rows": self.view_rows,
            "touched_groups": self.touched_groups,
            "retraction_rows": self.retraction_rows,
            "max_shard_load": self.max_shard_load,
            "shard_skew": self.shard_skew,
        }

    def value(self, fieldname: str) -> float:
        if fieldname == "constant":
            return 1.0
        return float(getattr(self, fieldname))


@dataclass(frozen=True)
class PlanShape:
    """The cost-relevant shape of one candidate plan.

    ``step2_kind``/``step3_kind`` name the chosen execution form
    (``None`` = the step does not exist for this view); the booleans
    say whether the remaining steps run natively.  Sharded plans carry
    the shard count and the serial/parallel choice instead.
    """

    step1_native: bool = True
    step2_kind: str | None = None  # native-upsert|native-regroup|native-outer|sql
    step2b_native: bool = False
    step3_kind: str | None = None  # "native" | "sql"
    step4_native: bool = True
    sharded: bool = False
    parallel: bool = False
    shard_count: int = 1


@functools.lru_cache(maxsize=256)
def coefficients(shape: PlanShape) -> dict[str, float]:
    """Non-negative cost coefficients of ``shape`` over SIGNAL_FIELDS.

    Cached per shape (frozen, hence hashable): the planner re-ranks its
    arms every refresh round, and the coefficients never change — only
    the signals do.  Callers must not mutate the returned dict.
    """
    coef = {fieldname: 0.0 for fieldname in SIGNAL_FIELDS}
    if shape.sharded:
        # Routing touches every delta row once; the folds run per shard
        # — bounded by the hottest shard when parallel, by the full
        # delta when serial — and the merge barrier costs a fixed
        # overhead per shard (submit + wait + combined write pass).
        coef["delta_rows"] += SHARD_ROUTE_ROW_SECONDS
        if shape.parallel:
            coef["max_shard_load"] += NATIVE_DELTA_ROW_SECONDS
            coef["constant"] += 2 * SHARD_BARRIER_SECONDS * shape.shard_count
        else:
            coef["delta_rows"] += NATIVE_DELTA_ROW_SECONDS
        coef["touched_groups"] += NATIVE_UPSERT_KEY_SECONDS
        coef["retraction_rows"] += NATIVE_PROBE_KEY_SECONDS
        return coef

    if shape.step1_native:
        coef["delta_rows"] += NATIVE_DELTA_ROW_SECONDS
    else:
        coef["delta_rows"] += 4 * SQL_ROW_SECONDS
        coef["constant"] += SQL_STATEMENT_SECONDS

    kind = shape.step2_kind
    if kind == "native-upsert":
        coef["touched_groups"] += NATIVE_UPSERT_KEY_SECONDS
    elif kind == "native-regroup":
        coef["touched_groups"] += NATIVE_REGROUP_KEY_SECONDS
    elif kind == "native-outer":
        coef["touched_groups"] += NATIVE_OUTER_KEY_SECONDS
    elif kind == "sql":
        # The SQL upsert joins ΔV against the stored table; the SQL
        # regroup/outer forms rebuild it outright.  Either way the
        # statement's cost scales with |V|, plus fixed overhead.
        coef["view_rows"] += SQL_ROW_SECONDS
        coef["touched_groups"] += 2 * SQL_ROW_SECONDS
        coef["constant"] += SQL_STATEMENT_SECONDS

    if shape.step2b_native:
        # One extrema-state descent per retraction-touched group.
        coef["retraction_rows"] += NATIVE_PROBE_KEY_SECONDS

    if shape.step3_kind == "native":
        coef["touched_groups"] += NATIVE_PROBE_KEY_SECONDS
    elif shape.step3_kind == "sql":
        coef["view_rows"] += SQL_ROW_SECONDS
        coef["constant"] += SQL_STATEMENT_SECONDS

    if not shape.step4_native:
        coef["constant"] += SQL_STATEMENT_SECONDS
    return coef


def plan_cost(shape: PlanShape, signals: RefreshSignals) -> float:
    """Predicted refresh seconds for ``shape`` under ``signals``."""
    return sum(
        weight * signals.value(fieldname)
        for fieldname, weight in coefficients(shape).items()
    )


def rank_plans(
    shapes: dict[str, PlanShape], signals: RefreshSignals
) -> list[tuple[str, float]]:
    """Candidate plans ranked cheapest-first.

    Ties break on the arm id so the ranking is total and deterministic.
    """
    ranked = [
        (arm_id, plan_cost(shape, signals))
        for arm_id, shape in shapes.items()
    ]
    ranked.sort(key=lambda item: (item[1], item[0]))
    return ranked


def decision_margin(ranked: list[tuple[str, float]]) -> float:
    """Absolute cost gap between the best and second-best plan
    (``inf`` with fewer than two candidates)."""
    if len(ranked) < 2:
        return float("inf")
    return ranked[1][1] - ranked[0][1]


def stability_epsilon(ranked: list[tuple[str, float]]) -> float:
    """The relative-perturbation margin ε* = (c2 − c1) / (c2 + c1).

    Any multiplicative signal perturbation with every factor inside
    ``(1 − ε, 1 + ε)`` for ``ε < ε*`` leaves the top-ranked plan on
    top (positive linear costs scale by at most the same factor; see
    the module docstring for the two-line proof).  ``inf`` with fewer
    than two candidates; 0.0 on an exact tie.
    """
    if len(ranked) < 2:
        return float("inf")
    c1, c2 = ranked[0][1], ranked[1][1]
    if c1 + c2 <= 0.0:
        return 0.0
    return max(0.0, (c2 - c1) / (c2 + c1))
