"""Adaptive per-refresh plan selection (``CompilerFlags.adaptive``).

Static flags pick one refresh plan forever; the benchmark ablations
show different winners per workload (``BENCH_pipeline.json``).  This
module picks the plan *per refresh round*, with the two-layer recipe of
the SIGMOD'25 optimizer-prototyping tutorial: the analytic UES-style
cost model of :mod:`repro.core.costmodel` ranks the candidate arms from
cheap signals before anything has been observed, and BAO-style runtime
feedback (an EWMA of observed wall seconds per arm) takes over as
rounds accumulate, with epsilon-greedy exploration and a forced
re-exploration burst when the signal regime shifts (e.g. the retraction
rate spikes or the delta size changes by orders of magnitude).

**What is an arm.**  Only *stateless* choices are switchable per round.
The native step 1 owns the integrated join state, the step-2b extrema
multisets and the counter-mode step 3 integrate source-level deltas
every round — running any of those on SQL for one round would let their
state go stale and corrupt later rounds, so they are never offered as
alternatives.  What remains:

* **step 2 kernel** — for views whose folds are all key/additive/AVG,
  the upsert, union-regroup and outer-merge kernels are interchangeable
  (they fold the same :func:`~repro.core.batched._column_folds` layout
  per key), and the compiled SQL step 2 is a fourth form.  MIN/MAX
  views keep their compiled upsert (+ step 2b) fixed.
* **step 3** — with a *stored* liveness column the native test and the
  SQL ``DELETE ... WHERE count <= 0`` are equivalent, so either runs.
  Counter-mode step 3 is stateful (never switched); paper-mode scalar
  views switch freely (both forms evaluate the same predicate).
* **sharded views** — serial vs parallel shard execution
  (:meth:`~repro.core.sharded.ShardedRefresh.set_parallel`); the
  routing, folds and merge barrier are identical either way.

Activation wiring: when an arm pairs a native step 2 with the SQL
step 3, the step-2 → step-3 touched-key handoff is disconnected for the
round (otherwise ``pending_keys`` would accumulate unboundedly on a
step that never runs), and any keys a previous arm left behind on an
excluded step are dropped.  Arms that exclude a native step simply omit
it from the ``native_steps`` list handed to ``run_pipeline`` — the
compiled SQL script is total, so the statement takes over.

Determinism: each planner's RNG is seeded from
``CompilerFlags.adaptive_seed`` and the view name, so a replayed
workload makes the same decisions — the differential oracles rely on
this only for debuggability; correctness holds for *any* decision
sequence, which is exactly what they prove.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.costmodel import (
    SIGNAL_FIELDS,
    PlanShape,
    RefreshSignals,
    coefficients,
    decision_margin,
    plan_cost,
    stability_epsilon,
)


@dataclass(frozen=True)
class PlanArm:
    """One executable plan candidate: its cost shape plus the native
    steps that realize it (SQL fills every step the list omits)."""

    arm_id: str
    shape: PlanShape
    steps: tuple  # NativeStep objects, possibly empty (pure SQL)
    parallel: bool | None = None  # sharded arms only

    def describe(self) -> dict:
        """JSON-shaped decision record for RefreshStats.

        Memoized — it is built per refresh round on the hot path, and
        ``RefreshStats.record_decision`` copies it before storing.
        """
        cached = self.__dict__.get("_described")
        if cached is None:
            cached = {
                "arm": self.arm_id,
                "step2": self.shape.step2_kind,
                "step3": self.shape.step3_kind,
                "native_steps": sorted(step.name for step in self.steps),
                "shard_count": self.shape.shard_count,
                "parallel": self.parallel,
            }
            object.__setattr__(self, "_described", cached)
        return cached


@dataclass
class PlanDecision:
    """One round's choice, with everything the stats record needs."""

    arm: PlanArm
    signals: RefreshSignals
    predicted_cost: float
    margin: float  # absolute cost gap best vs runner-up
    stability: float  # relative perturbation margin ε*
    explored: bool  # True when not the greedy pick
    regime_shift: bool  # True when this round triggered re-exploration


def build_plan_arms(model, native_steps: list) -> list[PlanArm]:
    """The switchable plan arms for one compiled view.

    ``native_steps`` is the compiled pipeline (what the static flags
    selected); its stateful steps are carried into every arm unchanged.
    Always returns at least one arm (the as-compiled plan), so the
    planner degenerates gracefully for shapes with nothing to switch.
    """
    steps: dict[str, Any] = {}
    for step in native_steps:
        steps.setdefault(step.name, step)

    sharded = steps.get("sharded")
    if sharded is not None:
        base = dict(sharded=True, shard_count=sharded.shard_count)
        return [
            PlanArm(
                arm_id="sharded=parallel",
                shape=PlanShape(parallel=True, **base),
                steps=(sharded,),
                parallel=True,
            ),
            PlanArm(
                arm_id="sharded=serial",
                shape=PlanShape(parallel=False, **base),
                steps=(sharded,),
                parallel=False,
            ),
        ]

    step1 = steps.get("step1")
    step2 = steps.get("step2")
    step2b = steps.get("step2b")
    step3 = steps.get("step3")
    step4 = steps.get("step4")

    # Step-2 alternatives: the compiled kernel first, then the sibling
    # kernels (same fold layout) and the SQL statement — only for
    # MIN/MAX-free views; extremum folds exist in the upsert kernel
    # alone, and its step-2b pairing must not be reshuffled.
    step2_choices: list[tuple[str, Any]]
    if step2 is None:
        step2_choices = [("sql", None)]
    else:
        from repro.core.strategies import step2_kind

        current = step2_kind(model.flags.strategy)
        step2_choices = [(current, step2)]
        if not model.minmax_columns():
            from repro.core.batched import build_step2_variants

            for kind, variant in build_step2_variants(model).items():
                if kind == current:
                    continue
                variant.replaces = step2.replaces
                step2_choices.append((kind, variant))
            step2_choices.append(("sql", None))

    # Step-3 alternatives: only the stored-liveness and paper-mode forms
    # are stateless; counter-mode step 3 stays native in every arm.
    if step3 is None:
        step3_choices = [(None, None)]
    elif step3.counters is not None:
        step3_choices = [("native", step3)]
    else:
        step3_choices = [("native", step3), ("sql", None)]

    arms: list[PlanArm] = []
    for s2_kind, s2_obj in step2_choices:
        for s3_kind, s3_obj in step3_choices:
            chosen = tuple(
                step
                for step in (step1, s2_obj, step2b, s3_obj, step4)
                if step is not None
            )
            arms.append(
                PlanArm(
                    arm_id=f"step2={s2_kind}|step3={s3_kind or 'sql-scan'}",
                    shape=PlanShape(
                        step1_native=step1 is not None,
                        step2_kind=s2_kind,
                        step2b_native=step2b is not None,
                        step3_kind=s3_kind
                        if s3_kind is not None or step3 is None
                        else "sql",
                        step4_native=step4 is not None,
                    ),
                    steps=chosen,
                )
            )
    return arms


class AdaptivePlanner:
    """Epsilon-greedy arm selector over one view's plan arms.

    ``choose`` ranks the arms with the analytic model, then picks:
    first-time through, a model-ranked round-robin over every arm (each
    gets one observation, and the model-best arm a second, warm one —
    see :meth:`_robin`); afterwards the arm with the best score —
    observed floor seconds where available, model cost scaled to the
    observed regime otherwise — except for an ``epsilon`` fraction of
    random exploration.  A change in the bucketed signal signature
    (delta magnitude, retraction-rate band, skew band) restarts the
    round-robin and forgets the observations: the old regime's timings
    no longer describe the new one.
    """

    def __init__(
        self,
        arms: list[PlanArm],
        all_steps: list | tuple = (),
        *,
        epsilon: float = 0.1,
        seed: int = 0,
        alpha: float = 0.4,
    ) -> None:
        if not arms:
            raise ValueError("AdaptivePlanner needs at least one arm")
        self.arms = list(arms)
        self._by_id = {arm.arm_id: arm for arm in self.arms}
        self._shapes = {arm.arm_id: arm.shape for arm in self.arms}
        # Per-arm nonzero cost coefficients, precomputed: choose() ranks
        # every round, and only the signals change between rounds.
        self._coef = {
            arm.arm_id: tuple(
                (fieldname, weight)
                for fieldname, weight in coefficients(arm.shape).items()
                if weight > 0.0
            )
            for arm in self.arms
        }
        self._all_steps = list(all_steps)
        self._epsilon = float(epsilon)
        self._alpha = float(alpha)
        self._rng = random.Random(seed)
        self._runtime: dict[str, float] = {}  # arm -> EWMA wall seconds
        self._floor: dict[str, float] = {}  # arm -> best observed seconds
        self._observations: dict[str, int] = {}
        self._explore_queue: list[str] | None = None
        self._signature_seen: tuple | None = None
        self.regime_shifts = 0

    # -- selection ----------------------------------------------------------

    def choose(self, signals: RefreshSignals) -> PlanDecision:
        ranked = self._rank(signals)
        costs = dict(ranked)
        signature = self._signature(signals)
        regime_shift = (
            self._signature_seen is not None
            and signature != self._signature_seen
            and len(self.arms) > 1
        )
        if regime_shift:
            self.regime_shifts += 1
            self._explore_queue = self._robin(ranked)
            self._runtime.clear()
            self._floor.clear()
            self._observations.clear()
        self._signature_seen = signature

        explored = False
        if self._explore_queue is None:
            # First round ever: seed the round-robin with the model's
            # ranking, so the presumed-best arm runs first.
            self._explore_queue = self._robin(ranked)
        if self._explore_queue:
            arm_id = self._explore_queue.pop(0)
            explored = arm_id != ranked[0][0]
        elif len(self.arms) > 1 and self._rng.random() < self._epsilon:
            arm_id = self.arms[self._rng.randrange(len(self.arms))].arm_id
            explored = True
        else:
            arm_id = self._exploit(ranked)
        return PlanDecision(
            arm=self._by_id[arm_id],
            signals=signals,
            predicted_cost=costs[arm_id],
            margin=decision_margin(ranked),
            stability=stability_epsilon(ranked),
            explored=explored,
            regime_shift=regime_shift,
        )

    def _rank(self, signals: RefreshSignals) -> list[tuple[str, float]]:
        """:func:`~repro.core.costmodel.rank_plans` over the precomputed
        nonzero coefficients — same ordering, no per-round dict builds."""
        values = {f: signals.value(f) for f in SIGNAL_FIELDS}
        ranked = [
            (
                arm_id,
                sum(weight * values[f] for f, weight in coef),
            )
            for arm_id, coef in self._coef.items()
        ]
        ranked.sort(key=lambda item: (item[1], item[0]))
        return ranked

    @staticmethod
    def _robin(ranked: list[tuple[str, float]]) -> list[str]:
        """The exploration round-robin: every arm once in model-ranked
        order, then the model-best arm once more.  The first sample of a
        fresh regime lands on a cold system (unwarmed caches, first ART
        descents), and it lands on the presumed-best arm — without the
        repeat, that arm's floor carries a systematic cold-start penalty
        and feedback steers away from exactly the arm the model likes."""
        queue = [arm_id for arm_id, _ in ranked]
        if len(queue) > 1:
            queue.append(queue[0])
        return queue

    def _exploit(self, ranked: list[tuple[str, float]]) -> str:
        """Best arm by observed floor seconds; unobserved arms compete
        with their model cost rescaled to the observed cost/seconds
        regime (median ratio), so one good-looking stranger can still
        win.  The floor (best observed), not the EWMA, is the score:
        refresh-time noise is one-sided — GC pauses and cache misses
        only ever inflate a sample — so an arm's floor estimates its
        achievable cost and one slow outlier cannot bury a good arm."""
        if not self._floor:
            return ranked[0][0]
        costs = dict(ranked)
        ratios = sorted(
            seconds / costs[arm_id]
            for arm_id, seconds in self._floor.items()
            if costs[arm_id] > 0.0
        )
        scale = ratios[len(ratios) // 2] if ratios else 1.0

        def score(arm_id: str, cost: float) -> float:
            seconds = self._floor.get(arm_id)
            return seconds if seconds is not None else cost * scale

        return min(
            ranked, key=lambda item: (score(item[0], item[1]), item[0])
        )[0]

    # -- feedback -----------------------------------------------------------

    def observe(self, decision: PlanDecision, wall_seconds: float) -> None:
        """Fold one observed refresh wall time into the chosen arm: the
        floor drives exploitation, the EWMA is kept for introspection
        and regime diagnostics."""
        arm_id = decision.arm.arm_id
        seconds = float(wall_seconds)
        previous = self._runtime.get(arm_id)
        self._runtime[arm_id] = (
            seconds
            if previous is None
            else (1.0 - self._alpha) * previous + self._alpha * seconds
        )
        best = self._floor.get(arm_id)
        self._floor[arm_id] = seconds if best is None else min(best, seconds)
        self._observations[arm_id] = self._observations.get(arm_id, 0) + 1

    # -- activation ---------------------------------------------------------

    def activate(self, decision: PlanDecision) -> list:
        """Wire the chosen arm and return its native-step list for
        ``run_pipeline``."""
        arm = decision.arm
        step2 = step3 = None
        for step in arm.steps:
            if step.name == "sharded" and arm.parallel is not None:
                step.set_parallel(arm.parallel)
            elif step.name == "step2":
                step2 = step
            elif step.name == "step3":
                step3 = step
        if step2 is not None and hasattr(step2, "liveness_step"):
            # Hand touched keys to the native step 3 only when this arm
            # actually runs it (and it tests a stored liveness column).
            step2.liveness_step = (
                step3
                if step3 is not None
                and getattr(step3, "liveness_ordinal", None) is not None
                else None
            )
        # Steps this arm benches must not keep keys an earlier arm's
        # step 2 handed them — they would be tested twice next time.
        chosen = {id(step) for step in arm.steps}
        for step in self._all_steps:
            if id(step) in chosen:
                continue
            pending_keys = getattr(step, "pending_keys", None)
            if isinstance(pending_keys, list):
                pending_keys.clear()
        return list(arm.steps)

    # -- regime detection ---------------------------------------------------

    @staticmethod
    def _signature(signals: RefreshSignals) -> tuple:
        """Bucketed signal signature; a change re-triggers exploration.

        Buckets are deliberately coarse (order-of-magnitude delta size,
        three retraction-rate bands, one skew threshold) so ordinary
        round-to-round jitter never thrashes the learned state.
        """
        delta = int(signals.delta_rows)
        retraction = int(signals.retraction_rows)
        if retraction == 0:
            retraction_band = 0
        elif retraction * 4 <= max(delta, 1):
            retraction_band = 1
        else:
            retraction_band = 2
        return (
            delta.bit_length() // 2,
            int(signals.view_rows).bit_length() // 3,
            retraction_band,
            1 if signals.shard_skew > 2.0 else 0,
        )


def planner_seed(base_seed: int, view_name: str) -> int:
    """Deterministic per-view RNG seed (process-salt-free)."""
    from zlib import crc32

    return int(base_seed) ^ crc32(view_name.lower().encode("utf-8"))


__all__ = [
    "AdaptivePlanner",
    "PlanArm",
    "PlanDecision",
    "build_plan_arms",
    "plan_cost",
    "planner_seed",
]
