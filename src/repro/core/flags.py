"""Compiler switches.

The paper (Figure 1): "Users can specify the expected optimization
strategies through flags" and §2: "choosing one is controlled manually
using compiler switches".  These are those switches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import IVMError

# Backpressure policies accepted by CompilerFlags.queue_policy.
QUEUE_POLICIES = ("block", "shed", "coalesce")


class MaterializationStrategy(enum.Enum):
    """How ΔV is folded into the materialized table V (paper §2).

    The paper enumerates: "replacing the materialized table with a UNION
    and regrouping, or through a full-outer-join, or maintaining it with a
    left-join with an UPSERT".
    """

    LEFT_JOIN_UPSERT = "left_join_upsert"
    UNION_REGROUP = "union_regroup"
    FULL_OUTER_JOIN = "full_outer_join"


class PropagationMode(enum.Enum):
    """When propagation runs (paper §3: eagerly on each change, or lazily
    when the view is queried).  BATCH defers until ``batch_size`` base-table
    changes accumulate — the recency/amortization trade-off from §1."""

    EAGER = "eager"
    LAZY = "lazy"
    BATCH = "batch"


@dataclass
class CompilerFlags:
    """All knobs accepted by :class:`~repro.core.compiler.OpenIVMCompiler`.

    Every field, at a glance (defaults in parentheses; the "knobs"
    section of ``docs/batching.md`` discusses when to turn each one):

    ============================ ======================================
    field                        what it controls
    ============================ ======================================
    ``dialect``                  target SQL dialect of the emitted
                                 scripts (``"duckdb"``)
    ``strategy``                 step-2 materialization strategy
                                 (``LEFT_JOIN_UPSERT``)
    ``mode``                     when propagation runs — eager / lazy /
                                 batch (``LAZY``)
    ``batch_size``               deferred-changes threshold for
                                 ``PropagationMode.BATCH`` (64)
    ``batch_kernels``            master switch for the native
                                 ``NativeStep`` pipeline (True)
    ``native_steps``             which steps *may* run natively —
                                 subset of {1, 2, 3, 4} ((1, 2, 3, 4))
    ``native_minmax_rescan``     step 2b from the persistent extrema
                                 state instead of the SQL base-table
                                 rescan (True)
    ``native_union_step2``       step 2 of the UNION-regroup strategy
                                 as the signed union + regroup kernel
                                 instead of the SQL table rebuild (True)
    ``native_foj_step2``         step 2 of the full-outer-join strategy
                                 as the keyed outer-merge kernel instead
                                 of the SQL table rebuild (True)
    ``native_expr_eval``         computed key / aggregate-argument
                                 expressions compiled through the
                                 vectorized expression evaluator so
                                 steps 1/3 stay native (True)
    ``shard_count``              partitions of the incremental state by
                                 group-key hash; > 1 replaces the
                                 per-step pipeline with the sharded
                                 refresh step where supported (1)
    ``parallel_refresh``         run per-shard refresh work on a
                                 thread pool with a merge barrier
                                 instead of a serial shard loop (True)
    ``snapshot_reads``           epoch-pin view tables during refresh
                                 so concurrent readers scan a
                                 consistent copy-on-write snapshot
                                 (True)
    ``cascade_views``            allow views defined over other
                                 materialized views; upstream refreshes
                                 emit their stored-row deltas into
                                 per-view cascade feeds consumed by
                                 dependents (True)
    ``subquery_snapshot``        support uncorrelated IN-subqueries in
                                 a view's WHERE by snapshotting the
                                 subquery result into the compiled
                                 batch predicate, re-seeding on
                                 invalidation (True)
    ``adaptive``                 pick the refresh plan per round with
                                 the cost-based adaptive planner
                                 (core/adaptive.py) instead of the
                                 static flag settings (False)
    ``adaptive_epsilon``         exploration rate of the planner's
                                 epsilon-greedy arm selector (0.1)
    ``adaptive_history``         how many recent plan decisions
                                 ``RefreshStats`` retains (16)
    ``adaptive_seed``            base RNG seed for the per-view arm
                                 selectors — decisions replay
                                 deterministically (0)
    ``ingest_queue``             put the bounded async ingestion queue
                                 in front of the capture path: DML
                                 enqueues delta batches, the refresher
                                 drains on batch-size / deadline /
                                 watermark triggers (False)
    ``queue_capacity``           queue bound, in delta rows (4096)
    ``queue_policy``             overflow behaviour — ``block`` (writer
                                 waits / drains inline), ``shed``
                                 (reject with BackpressureError +
                                 recompute self-heal), ``coalesce``
                                 (cancel opposite-sign rows in place)
                                 (``block``)
    ``queue_high_watermark``     queue fill fraction that requests a
                                 drain before capacity is hit (0.8)
    ``queue_low_watermark``      fill fraction blocked writers wait for
                                 (0.5)
    ``queue_deadline``           seconds the oldest queued batch may
                                 wait before a drain+refresh is forced;
                                 0 disables the deadline trigger (0.0)
    ``queue_block_timeout``      seconds a blocked writer waits for the
                                 drainer before raising
                                 BackpressureError (5.0)
    ``queue_async``              drain on a background refresher thread
                                 instead of piggybacking on the next
                                 statement (False)
    ``worker_timeout``           seconds a sharded refresh worker may
                                 run before the round abandons it; 0
                                 disables the timeout (0.0)
    ``worker_retries``           bounded retries of failed/timed-out
                                 shard workers that have not yet
                                 mutated shard state (2)
    ``worker_backoff``           base of the exponential retry backoff,
                                 seconds (0.01)
    ``degradation_heal_after``   clean refreshes at a demoted rung
                                 before the ladder heals one rung (3)
    ``fault_plan``               deterministic fault-injection schedule
                                 (:class:`~repro.core.faults.FaultPlan`)
                                 consulted at the named sites; None
                                 disables injection (None)
    ``durability``               write captured deltas to a write-ahead
                                 log and allow checkpoints + replay-on-
                                 restart (False; needs a
                                 ``durability_dir`` at load time)
    ``wal_sync``                 fsync the WAL after every append
                                 (False — off in CI and benches)
    ``checkpoint_every``         take a checkpoint automatically every
                                 N refreshes; 0 disables the periodic
                                 trigger (checkpoints still happen at
                                 CREATE MATERIALIZED VIEW and on
                                 demand) (0)
    ``multiplicity_column``      name of the boolean multiplicity
                                 column (the paper's spelling)
    ``hidden_count``             maintain a hidden COUNT(*) liveness
                                 column even when not forced (False)
    ``delta_prefix``             delta-table name prefix (``delta_``)
    ``hidden_prefix``            hidden-column name prefix
                                 (``_duckdb_ivm_``)
    ``emit_key_index``           emit an explicit unique key index in
                                 addition to the PRIMARY KEY (None:
                                 follow the dialect default)
    ============================ ======================================
    """

    # Target SQL dialect for emitted scripts ("duckdb" or "postgres").
    dialect: str = "duckdb"
    # ΔV application strategy for aggregate views.
    strategy: MaterializationStrategy = MaterializationStrategy.LEFT_JOIN_UPSERT
    # Eager / lazy / batched refresh (used by the extension module).
    mode: PropagationMode = PropagationMode.LAZY
    # Batch size for PropagationMode.BATCH.
    batch_size: int = 64
    # Run propagation on the vectorized Z-set batch kernels (ART-indexed
    # join state for step 1, signed-collapse upsert for step 2, exact
    # liveness deletes for step 3, in-memory truncation for step 4)
    # instead of executing the compiled SQL.  Selection is *per step*:
    # steps whose shape the kernels don't cover fall back to SQL
    # individually.  The emitted scripts always contain the portable SQL
    # either way.
    batch_kernels: bool = True
    # Which propagation steps may run natively when ``batch_kernels`` is
    # on — a subset of {1, 2, 3, 4}.  The default allows the whole
    # pipeline; ``(1,)`` reproduces the step-1-only batching of the first
    # batching milestone (used as a benchmark baseline and by the
    # differential oracle's "mixed" engine).
    native_steps: tuple[int, ...] = (1, 2, 3, 4)
    # Answer MIN/MAX retractions from the persistent per-group extrema
    # state (O(log n) per touched group) instead of the step-2b SQL
    # rescan of the base tables.  Requires a native step 1 (the state is
    # fed source-level deltas there); off reproduces the rescan-on-SQL
    # behaviour of the full-pipeline milestone, which the MIN/MAX bench
    # config uses as its baseline.
    native_minmax_rescan: bool = True
    # Run step 2 of the UNION_REGROUP strategy as the native signed
    # union + regroup kernel (stored touched rows UNION ALL signed ΔV,
    # regrouped per key) instead of the SQL scratch-table rebuild.  The
    # SQL rebuild rewrites the whole view per refresh; the kernel only
    # touches the ΔV keys.  Off restores the SQL step 2 for this
    # strategy (steps 1/3/4 keep their own selection either way).
    native_union_step2: bool = True
    # Run step 2 of the FULL_OUTER_JOIN strategy as the native keyed
    # outer-merge kernel (collapsed ΔV outer-merged with the stored row
    # through the view's primary-key ART) instead of the SQL FULL OUTER
    # JOIN rebuild.  Off restores the SQL step 2 for this strategy.
    native_foj_step2: bool = True
    # Compile computed key expressions and computed aggregate arguments
    # (e.g. GROUP BY UPPER(g), SUM(v + 1)) through the vectorized
    # expression evaluator (execution/expression.py:batch_eval) so such
    # views keep native steps 1 and 3.  Off restores the pre-evaluator
    # behaviour: expression-keyed views fall back to the SQL step 1 (and
    # consequently the SQL step 3 where liveness needs source counts).
    native_expr_eval: bool = True
    # Partition each view's incremental state (join / extrema / liveness
    # ARTs) into this many shards by hashing the memcomparable group-key
    # encoding (storage/keys.py).  With > 1 shard and a supported view
    # shape (LEFT_JOIN_UPSERT, fully native pipeline) the whole refresh
    # runs as one sharded step: deltas are routed once, every shard
    # folds its own key range, and a merge barrier applies the combined
    # writes before step 4.  1 keeps the per-step pipeline untouched.
    shard_count: int = 1
    # Execute the per-shard refresh work on a ThreadPoolExecutor (one
    # worker per shard) with a merge barrier, instead of iterating the
    # shards serially on the calling thread.  Only consulted when
    # ``shard_count`` > 1.  Wall-clock parallelism requires a
    # free-threaded / multi-core runtime; under a single-core GIL build
    # the sharded path still wins through per-distinct-key folding.
    parallel_refresh: bool = True
    # Epoch-pin the view table for the duration of a refresh: the first
    # mutation inside the pinned window publishes a copy-on-write row
    # snapshot, so concurrent readers scan a consistent pre-refresh
    # epoch and never observe a half-applied refresh.  The refreshing
    # thread always sees its own writes.
    snapshot_reads: bool = True
    # Allow a view's FROM clause to name another materialized view.  The
    # upstream view's refresh emits its stored-row delta (retract old
    # physical row / insert new physical row) into a cascade feed table
    # (``cascade_delta_table``) that every dependent reads like a base
    # ΔT, so one base-table DML propagates through an N-level DAG with
    # no recomputation.  Off rejects view-over-view definitions with
    # UnsupportedError (the pre-cascade behaviour).
    cascade_views: bool = True
    # Support ``WHERE col [NOT] IN (SELECT ...)`` with an uncorrelated
    # subquery by pinning the subquery's result rows into the compiled
    # batch predicate at initialize time.  DML against the subquery's
    # source tables marks the snapshot dirty; the next native refresh
    # re-evaluates the subquery (zero SQL) and injects the retract /
    # insert delta for stored rows whose predicate verdict flipped.  Off
    # rejects subqueries in WHERE with UnsupportedError.
    subquery_snapshot: bool = True
    # Pick the refresh plan per round: before run_pipeline, the adaptive
    # planner (core/adaptive.py) ranks the view's interchangeable plan
    # arms — step-2 kernel (upsert / regroup / outer-merge / SQL), the
    # stored-liveness step 3 on native vs SQL, serial vs parallel shard
    # execution — with the analytic cost model (core/costmodel.py) over
    # cheap per-refresh signals, then lets observed wall-clock feedback
    # take over per arm (epsilon-greedy).  Stateful choices (native
    # step 1's join state, the extrema/counter states) are never
    # switched: they integrate deltas every round and would go stale.
    # Decisions land in RefreshStats.  Off keeps the static flags.
    adaptive: bool = False
    # Exploration rate of the epsilon-greedy arm selector: fraction of
    # refreshes that try a random arm instead of the current best.
    adaptive_epsilon: float = 0.1
    # How many recent plan decisions RefreshStats.decisions retains.
    adaptive_history: int = 16
    # Base seed for the per-view selector RNGs (each view XORs in a hash
    # of its name), so adaptive runs replay deterministically.
    adaptive_seed: int = 0
    # Put the bounded ingestion queue (core/runtime.py) in front of the
    # delta-capture path: the AFTER triggers enqueue batches instead of
    # writing WAL + ΔT directly, and the refresher drains on batch-size,
    # deadline, and high-watermark triggers.  Off keeps the synchronous
    # capture path untouched.
    ingest_queue: bool = False
    # Queue bound, counted in delta rows across all queued batches.
    queue_capacity: int = 4096
    # What an enqueue that would exceed the capacity does: "block" makes
    # the writer wait for the drainer (or drain inline when no
    # background refresher runs), "shed" rejects the batch with a typed
    # BackpressureError and flags the watching views for recompute
    # self-heal, "coalesce" cancels opposite-sign rows already queued
    # (insert + delete of the same row annihilate) and only then falls
    # back to blocking.
    queue_policy: str = "block"
    # Fill fraction at which the queue requests a drain (the admission
    # path flags it; the next pump or the background refresher drains).
    queue_high_watermark: float = 0.8
    # Fill fraction a blocked writer waits for before re-admitting.
    queue_low_watermark: float = 0.5
    # Deadline trigger: seconds the oldest queued batch may sit before a
    # drain + refresh is forced on the next pump.  0 disables.
    queue_deadline: float = 0.0
    # How long a blocked writer waits for the drainer before giving up
    # with BackpressureError (prevents deadlock when the drainer died).
    queue_block_timeout: float = 5.0
    # Drain on a dedicated background refresher thread (deadline ticks
    # fire without waiting for the next statement).  Off drains
    # synchronously on the statement path — deterministic, the default.
    queue_async: bool = False
    # Per-shard worker timeout for the sharded refresh, in seconds.  A
    # worker still running past it is abandoned behind the round token
    # (it can never mutate shard state afterwards) and retried or
    # escalated.  0 disables the timeout.
    worker_timeout: float = 0.0
    # How many times a failed or timed-out shard worker is retried
    # (with exponential backoff) before the refresh escalates.  Only
    # workers that have not yet mutated their shard's state are retried;
    # a worker that failed mid-mutation always escalates to recompute.
    worker_retries: int = 2
    # Base of the exponential retry backoff: attempt k sleeps
    # worker_backoff * 2**(k-1) seconds.
    worker_backoff: float = 0.01
    # Degradation ladder: after this many consecutive clean refreshes at
    # a demoted rung, heal one rung back toward the full plan.
    degradation_heal_after: int = 3
    # Deterministic fault-injection schedule (core/faults.FaultPlan),
    # consulted at wal.append / checkpoint.write / shard.compute /
    # queue.enqueue.  None disables injection.  Runtime-only: never
    # serialized into checkpoints.
    fault_plan: Any = None
    # Durability: log every captured delta batch to an append-only WAL
    # (storage/wal.py) before it reaches ΔT, checkpoint view columns and
    # incremental states (storage/checkpoint.py), and support
    # Connection.recover(path) replay.  Requires a durability directory
    # to be passed to load_ivm; without one the flag is inert.
    durability: bool = False
    # fsync the WAL file after every append.  Off trades the tail of the
    # log on an OS crash for append speed (process crashes lose nothing
    # either way); CI and benchmarks run with it off.
    wal_sync: bool = False
    # Take a checkpoint automatically after every N refresh rounds
    # (0 = never; checkpoints are still written at CREATE MATERIALIZED
    # VIEW time and by IVMExtension.checkpoint()).
    checkpoint_every: int = 0
    # Name of the boolean multiplicity column (paper's spelling).
    multiplicity_column: str = "_duckdb_ivm_multiplicity"
    # Maintain a hidden COUNT(*) column for exact group liveness.  The
    # paper's Listing 2 instead deletes rows whose SUM is 0; that form is
    # kept when this flag is False.  MIN/MAX/AVG and non-aggregate views
    # force it on because they need exact liveness.
    hidden_count: bool = False
    # Prefix for delta tables (paper uses delta_<table>).
    delta_prefix: str = "delta_"
    # Prefix for internal (hidden) columns.
    hidden_prefix: str = "_duckdb_ivm_"
    # Emit an explicit unique index statement on the view keys in addition
    # to the PRIMARY KEY (PostgreSQL upserts want a named unique index).
    emit_key_index: bool | None = None  # None: follow the dialect default

    def __post_init__(self) -> None:
        """Reject nonsensical knob values up front, with the knob named —
        plan construction would otherwise fail (or silently misbehave)
        several layers down."""
        if self.shard_count < 1:
            raise IVMError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )
        if self.batch_size < 1:
            raise IVMError(f"batch_size must be >= 1, got {self.batch_size}")
        invalid = set(self.native_steps) - {1, 2, 3, 4}
        if invalid:
            raise IVMError(
                "native_steps must be a subset of {1, 2, 3, 4}, got "
                f"{tuple(sorted(invalid))} in {tuple(self.native_steps)}"
            )
        if not 0.0 <= self.adaptive_epsilon <= 1.0:
            raise IVMError(
                "adaptive_epsilon must be in [0, 1], got "
                f"{self.adaptive_epsilon}"
            )
        if self.adaptive_history < 1:
            raise IVMError(
                f"adaptive_history must be >= 1, got {self.adaptive_history}"
            )
        if self.checkpoint_every < 0:
            raise IVMError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.queue_policy not in QUEUE_POLICIES:
            raise IVMError(
                f"queue_policy must be one of {QUEUE_POLICIES}, got "
                f"{self.queue_policy!r}"
            )
        if self.queue_capacity < 1:
            raise IVMError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if not 0.0 < self.queue_low_watermark <= self.queue_high_watermark <= 1.0:
            raise IVMError(
                "queue watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={self.queue_low_watermark} "
                f"high={self.queue_high_watermark}"
            )
        if self.queue_deadline < 0:
            raise IVMError(
                f"queue_deadline must be >= 0, got {self.queue_deadline}"
            )
        if self.queue_block_timeout <= 0:
            raise IVMError(
                "queue_block_timeout must be > 0, got "
                f"{self.queue_block_timeout}"
            )
        if self.worker_timeout < 0:
            raise IVMError(
                f"worker_timeout must be >= 0, got {self.worker_timeout}"
            )
        if self.worker_retries < 0:
            raise IVMError(
                f"worker_retries must be >= 0, got {self.worker_retries}"
            )
        if self.worker_backoff < 0:
            raise IVMError(
                f"worker_backoff must be >= 0, got {self.worker_backoff}"
            )
        if self.degradation_heal_after < 1:
            raise IVMError(
                "degradation_heal_after must be >= 1, got "
                f"{self.degradation_heal_after}"
            )

    def hidden_count_column(self) -> str:
        return f"{self.hidden_prefix}count"

    def delta_table(self, table: str) -> str:
        return f"{self.delta_prefix}{table}"

    def cascade_delta_table(self, view: str) -> str:
        """Feed table an upstream view's stored-row deltas land in.

        Distinct from ``delta_table(view)``, which is the view's *own*
        ΔV staging table; the ``__out`` suffix keeps the two namespaces
        apart.  One feed per upstream view, shared by all dependents —
        mirroring how base tables share one ΔT across watchers."""
        return f"{self.delta_prefix}{view}__out"
