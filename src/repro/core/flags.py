"""Compiler switches.

The paper (Figure 1): "Users can specify the expected optimization
strategies through flags" and §2: "choosing one is controlled manually
using compiler switches".  These are those switches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MaterializationStrategy(enum.Enum):
    """How ΔV is folded into the materialized table V (paper §2).

    The paper enumerates: "replacing the materialized table with a UNION
    and regrouping, or through a full-outer-join, or maintaining it with a
    left-join with an UPSERT".
    """

    LEFT_JOIN_UPSERT = "left_join_upsert"
    UNION_REGROUP = "union_regroup"
    FULL_OUTER_JOIN = "full_outer_join"


class PropagationMode(enum.Enum):
    """When propagation runs (paper §3: eagerly on each change, or lazily
    when the view is queried).  BATCH defers until ``batch_size`` base-table
    changes accumulate — the recency/amortization trade-off from §1."""

    EAGER = "eager"
    LAZY = "lazy"
    BATCH = "batch"


@dataclass
class CompilerFlags:
    """All knobs accepted by :class:`~repro.core.compiler.OpenIVMCompiler`."""

    # Target SQL dialect for emitted scripts ("duckdb" or "postgres").
    dialect: str = "duckdb"
    # ΔV application strategy for aggregate views.
    strategy: MaterializationStrategy = MaterializationStrategy.LEFT_JOIN_UPSERT
    # Eager / lazy / batched refresh (used by the extension module).
    mode: PropagationMode = PropagationMode.LAZY
    # Batch size for PropagationMode.BATCH.
    batch_size: int = 64
    # Run propagation on the vectorized Z-set batch kernels (ART-indexed
    # join state for step 1, signed-collapse upsert for step 2, exact
    # liveness deletes for step 3, in-memory truncation for step 4)
    # instead of executing the compiled SQL.  Selection is *per step*:
    # steps whose shape the kernels don't cover fall back to SQL
    # individually.  The emitted scripts always contain the portable SQL
    # either way.
    batch_kernels: bool = True
    # Which propagation steps may run natively when ``batch_kernels`` is
    # on — a subset of {1, 2, 3, 4}.  The default allows the whole
    # pipeline; ``(1,)`` reproduces the step-1-only batching of the first
    # batching milestone (used as a benchmark baseline and by the
    # differential oracle's "mixed" engine).
    native_steps: tuple[int, ...] = (1, 2, 3, 4)
    # Answer MIN/MAX retractions from the persistent per-group extrema
    # state (O(log n) per touched group) instead of the step-2b SQL
    # rescan of the base tables.  Requires a native step 1 (the state is
    # fed source-level deltas there); off reproduces the rescan-on-SQL
    # behaviour of the full-pipeline milestone, which the MIN/MAX bench
    # config uses as its baseline.
    native_minmax_rescan: bool = True
    # Name of the boolean multiplicity column (paper's spelling).
    multiplicity_column: str = "_duckdb_ivm_multiplicity"
    # Maintain a hidden COUNT(*) column for exact group liveness.  The
    # paper's Listing 2 instead deletes rows whose SUM is 0; that form is
    # kept when this flag is False.  MIN/MAX/AVG and non-aggregate views
    # force it on because they need exact liveness.
    hidden_count: bool = False
    # Prefix for delta tables (paper uses delta_<table>).
    delta_prefix: str = "delta_"
    # Prefix for internal (hidden) columns.
    hidden_prefix: str = "_duckdb_ivm_"
    # Emit an explicit unique index statement on the view keys in addition
    # to the PRIMARY KEY (PostgreSQL upserts want a named unique index).
    emit_key_index: bool | None = None  # None: follow the dialect default

    def hidden_count_column(self) -> str:
        return f"{self.hidden_prefix}count"

    def delta_table(self, table: str) -> str:
        return f"{self.delta_prefix}{table}"
