"""View-definition analysis and classification.

The compiler front half: bind the view query with the engine's planner
(the paper: "first, it generates the logical plan for Q using the DuckDB
planner"), then classify it into one of the maintainable shapes and pull
out the pieces the rewrite needs — base tables, filter, join condition,
group keys, aggregates, projected expressions, and the output schema.

Supported surface (and what the paper supports):

* PROJECTION — single-table SELECT of scalar expressions with optional
  WHERE (paper: "projections, filters").
* AGGREGATION — single-table GROUP BY with SUM/COUNT (paper) and
  MIN/MAX/AVG (the paper's announced extensions).
* JOIN / JOIN_AGGREGATION — two-table INNER equi-join versions of the
  above (the paper's in-progress JOIN support).

Anything else raises :class:`~repro.errors.UnsupportedError` with a
message saying why, so callers can fall back to full recomputation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.datatypes.types import DataType
from repro.errors import UnsupportedError
from repro.planner.binder import Binder
from repro.planner.expressions import AggregateCall, BoundColumn, BoundExpression
from repro.planner.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalOperator,
    LogicalProject,
)
from repro.sql import ast

if TYPE_CHECKING:
    from repro.catalog.catalog import Catalog


class ViewClass(enum.Enum):
    PROJECTION = "projection"
    AGGREGATION = "aggregation"
    JOIN = "join"
    JOIN_AGGREGATION = "join_aggregation"

    @property
    def has_aggregates(self) -> bool:
        return self in (ViewClass.AGGREGATION, ViewClass.JOIN_AGGREGATION)

    @property
    def has_join(self) -> bool:
        return self in (ViewClass.JOIN, ViewClass.JOIN_AGGREGATION)


@dataclass
class SourceTable:
    """One source feeding the view: a base table, or — when the
    compiler's ``cascade_views`` flag is on — another materialized view,
    in which case ``is_view`` is set and deltas arrive through the
    upstream view's cascade feed instead of a base ΔT."""

    name: str
    alias: str
    is_view: bool = False


@dataclass
class KeyColumn:
    """A view output column that is a group key (or, for projection views,
    any projected column — projection rows are keyed by all columns)."""

    name: str
    type: DataType
    expr: ast.Expression  # source-level expression (references table aliases)


@dataclass
class AggregateColumn:
    """A view output column computed by an aggregate."""

    name: str
    type: DataType
    function: str  # SUM / COUNT / MIN / MAX / AVG
    argument: ast.Expression | None  # None for COUNT(*)


@dataclass
class ViewAnalysis:
    """Everything the rewrite and DDL generation need about one view."""

    view_name: str
    view_class: ViewClass
    query: ast.Select
    plan: LogicalOperator
    tables: list[SourceTable]
    where: ast.Expression | None
    join_condition: ast.Expression | None
    keys: list[KeyColumn]
    aggregates: list[AggregateColumn]
    sql: str = ""
    # Base tables read only by uncorrelated IN-subqueries in WHERE.  DML
    # against them never produces ΔT rows for this view, so the
    # extension watches them separately to invalidate the pinned
    # subquery snapshot (``CompilerFlags.subquery_snapshot``).
    subquery_tables: list[str] = field(default_factory=list)

    @property
    def single_table(self) -> bool:
        return len(self.tables) == 1

    def output_names(self) -> list[str]:
        return [k.name for k in self.keys] + [a.name for a in self.aggregates]


def analyze_view(
    view_name: str, query: ast.Select, catalog: "Catalog"
) -> ViewAnalysis:
    """Classify ``query`` and extract the maintainable structure."""
    _reject_unsupported_query_shape(query)
    binder = Binder(catalog)
    plan = binder.bind_select(query)

    tables, where_bound, join_bound, agg_node, project = _destructure(plan)
    source_tables = [SourceTable(t.table, t.alias) for t in tables]
    single = len(source_tables) == 1

    # Expression ASTs are taken from the parse tree (they reference the
    # original table aliases); the bound plan tells us which select item is
    # a key and which an aggregate.
    items = query.items
    if any(isinstance(item.expr, ast.Star) for item in items):
        raise UnsupportedError(
            "SELECT * in a materialized view is not supported; list columns"
        )

    keys: list[KeyColumn] = []
    aggregates: list[AggregateColumn] = []
    names_seen: set[str] = set()

    if agg_node is not None:
        group_count = len(agg_node.groups)
        if not isinstance(project, LogicalProject):
            raise UnsupportedError("unexpected plan shape above aggregation")
        if len(project.expressions) != len(items):
            raise UnsupportedError("unexpected select-list arity")
        matched_groups: set[int] = set()
        for item, bound, out in zip(items, project.expressions, project.output_columns):
            if not isinstance(bound, BoundColumn):
                raise UnsupportedError(
                    "expressions combining aggregates (e.g. SUM(x)+1) are "
                    "not maintainable; materialize the plain aggregate"
                )
            name = _unique_name(out.name, names_seen)
            if bound.index < group_count:
                keys.append(KeyColumn(name=name, type=bound.type, expr=item.expr))
                matched_groups.add(bound.index)
            else:
                call = agg_node.aggregates[bound.index - group_count]
                if call.distinct:
                    raise UnsupportedError(
                        "DISTINCT aggregates are not incrementally maintainable"
                    )
                fn_item = item.expr
                if not isinstance(fn_item, ast.FunctionCall):
                    raise UnsupportedError("unexpected aggregate select item")
                argument = None
                if fn_item.args and not isinstance(fn_item.args[0], ast.Star):
                    argument = fn_item.args[0]
                aggregates.append(
                    AggregateColumn(
                        name=name,
                        type=call.result_type,
                        function=call.function,
                        argument=argument,
                    )
                )
        if len(matched_groups) != group_count:
            raise UnsupportedError(
                "every GROUP BY expression must appear in the select list"
            )
        if not aggregates:
            raise UnsupportedError(
                "GROUP BY without aggregates: materialize SELECT DISTINCT instead"
            )
        view_class = ViewClass.AGGREGATION if single else ViewClass.JOIN_AGGREGATION
    else:
        if not isinstance(project, LogicalProject):
            raise UnsupportedError("unexpected plan shape for projection view")
        for item, bound, out in zip(items, project.expressions, project.output_columns):
            name = _unique_name(out.name, names_seen)
            keys.append(KeyColumn(name=name, type=bound.type, expr=item.expr))
        view_class = ViewClass.PROJECTION if single else ViewClass.JOIN

    join_ast = None
    if not single:
        join_ast = _join_condition_ast(query)
    subquery_tables = _subquery_source_tables(query.where)
    return ViewAnalysis(
        view_name=view_name,
        view_class=view_class,
        query=query,
        plan=plan,
        tables=source_tables,
        where=query.where,
        join_condition=join_ast,
        keys=keys,
        aggregates=aggregates,
        subquery_tables=subquery_tables,
    )


# ---------------------------------------------------------------------------
# Plan destructuring
# ---------------------------------------------------------------------------


def _destructure(plan: LogicalOperator):
    """Peel Project [Filter] [Aggregate] [Filter] (Get | Join(Get, Get))."""
    project = plan
    if not isinstance(project, LogicalProject):
        raise UnsupportedError(
            f"view plan must be a projection at the top, got {type(plan).__name__}"
        )
    node = project.child
    agg_node = None
    if isinstance(node, LogicalFilter) and isinstance(node.child, LogicalAggregate):
        raise UnsupportedError("HAVING clauses are not supported in views")
    if isinstance(node, LogicalAggregate):
        agg_node = node
        node = node.child
    where_bound = None
    if isinstance(node, LogicalFilter):
        where_bound = node.predicate
        node = node.child
    join_bound = None
    if isinstance(node, LogicalJoin):
        if node.join_type != "INNER":
            raise UnsupportedError(
                f"{node.join_type} joins in views are not supported (INNER only)"
            )
        left, right = node.left, node.right
        if not isinstance(left, LogicalGet) or not isinstance(right, LogicalGet):
            raise UnsupportedError(
                "views may join at most two base tables (no nested joins "
                "or subqueries)"
            )
        if left.database or right.database:
            raise UnsupportedError(
                "views over attached (remote) tables must be compiled on "
                "the hosting system"
            )
        join_bound = node.condition
        return [left, right], where_bound, join_bound, agg_node, project
    if isinstance(node, LogicalGet):
        if node.database:
            raise UnsupportedError(
                "views over attached (remote) tables must be compiled on "
                "the hosting system"
            )
        return [node], where_bound, join_bound, agg_node, project
    raise UnsupportedError(
        f"unsupported view source {type(node).__name__}; views read base "
        "tables directly"
    )


def _reject_unsupported_query_shape(query: ast.Select) -> None:
    if query.ctes:
        raise UnsupportedError("CTEs in materialized views are not supported")
    if query.set_ops:
        raise UnsupportedError("set operations in views are not supported")
    if query.order_by or query.limit is not None or query.offset is not None:
        raise UnsupportedError(
            "ORDER BY / LIMIT in a materialized view is not meaningful"
        )
    if query.distinct:
        raise UnsupportedError(
            "SELECT DISTINCT views are not supported; use GROUP BY"
        )
    if query.having is not None:
        raise UnsupportedError("HAVING clauses are not supported in views")
    if query.where is not None:
        # The one supported subquery shape is an uncorrelated
        # ``col [NOT] IN (SELECT ...)`` — parsed as an InList whose sole
        # item is a ScalarSubquery.  The binder binds its SELECT in a
        # fresh scope, so correlation is impossible by construction.
        allowed: set[int] = set()
        for node in ast.walk_expression(query.where):
            if (
                isinstance(node, ast.InList)
                and len(node.items) == 1
                and isinstance(node.items[0], ast.ScalarSubquery)
            ):
                allowed.add(id(node.items[0]))
        for node in ast.walk_expression(query.where):
            if isinstance(node, ast.Exists):
                raise UnsupportedError(
                    "EXISTS subqueries in view WHERE are not supported"
                )
            if isinstance(node, ast.ScalarSubquery) and id(node) not in allowed:
                raise UnsupportedError(
                    "subqueries in view WHERE are only supported as "
                    "[NOT] IN (SELECT ...)"
                )


def _subquery_source_tables(where: ast.Expression | None) -> list[str]:
    """Names of the tables read by IN-subqueries in ``where`` (deduped,
    in first-appearance order)."""
    if where is None:
        return []
    names: list[str] = []
    seen: set[str] = set()

    def collect_from(ref: ast.TableRef | None) -> None:
        if ref is None:
            return
        if isinstance(ref, ast.BaseTableRef):
            if ref.name.lower() not in seen:
                seen.add(ref.name.lower())
                names.append(ref.name)
        elif isinstance(ref, ast.JoinRef):
            collect_from(ref.left)
            collect_from(ref.right)

    for node in ast.walk_expression(where):
        if isinstance(node, ast.ScalarSubquery):
            collect_from(node.query.from_clause)
    return names


def _join_condition_ast(query: ast.Select) -> ast.Expression | None:
    ref = query.from_clause
    if isinstance(ref, ast.JoinRef):
        if ref.using:
            clauses: list[ast.Expression] = []
            left_alias = _ref_alias(ref.left)
            right_alias = _ref_alias(ref.right)
            for name in ref.using:
                clauses.append(
                    ast.BinaryOp(
                        op="=",
                        left=ast.ColumnRef(name=name, table=left_alias),
                        right=ast.ColumnRef(name=name, table=right_alias),
                    )
                )
            merged = clauses[0]
            for clause in clauses[1:]:
                merged = ast.BinaryOp(op="AND", left=merged, right=clause)
            return merged
        return ref.condition
    return None


def _ref_alias(ref: ast.TableRef) -> str | None:
    if isinstance(ref, ast.BaseTableRef):
        return ref.effective_alias
    return None


def _unique_name(name: str, seen: set[str]) -> str:
    candidate = name
    counter = 1
    while candidate.lower() in seen:
        candidate = f"{name}_{counter}"
        counter += 1
    seen.add(candidate.lower())
    return candidate
