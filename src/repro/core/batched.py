"""Vectorized delta propagation: the paper's steps 1–4 as native kernels.

The compiled propagation script is a four-step SQL program (ΔV compute,
upsert into V, liveness delete, delta truncation).  This module provides
a native :class:`~repro.core.propagate.NativeStep` implementation of each
step, executing over :class:`~repro.zset.batch.ZSetBatch` columns instead
of row-at-a-time SQL:

* **step 1** (:class:`BatchedDeltaStep`): delta tables are read columnarly
  (±1 weights from the boolean multiplicity column); join views probe a
  persistent :class:`~repro.zset.incremental.IndexedJoinState` — per-key
  ART-indexed integrated state on both sides — so propagation cost scales
  with |Δ|, not with |base|; the per-sign partial aggregates are folded by
  the weighted kernels of :mod:`repro.execution.aggregates` and land in
  the ΔV staging table;
* **step 2** — one native form per materialization strategy:
  :class:`NativeUpsertStep` (LEFT_JOIN_UPSERT) collapses ΔV to one
  signed row per group and merges it per key directly into the view's
  stored columns (``merge_additive`` / ``merge_minmax`` / ``derive_avg``
  from :mod:`repro.execution.aggregates`; MIN/MAX retraction is not
  invertible from the stored partials and is repaired by step 2b);
  :class:`NativeRegroupStep` (UNION_REGROUP) re-groups the stored
  touched rows UNION ALL the signed ΔV through the
  :func:`~repro.zset.operators.batch_union_regroup` kernel, replacing
  the strategy's whole-table SQL rebuild with work proportional to
  |ΔV|; :class:`NativeOuterMergeStep` (FULL_OUTER_JOIN) outer-merges
  the collapsed ΔV with the stored row per key through the view's
  primary-key ART — the batch form of the strategy's FULL OUTER JOIN;
* **step 2b** (:class:`NativeRescanStep`): MIN/MAX retraction repair.
  The SQL form recomputes every deletion-touched group from the base
  tables (O(|base|) per refresh containing a delete); the native form
  keeps a persistent :class:`~repro.zset.incremental.GroupExtremaState`
  per MIN/MAX column — an ART-backed ordered multiset of (group, value)
  multiplicities, fed source-level deltas by the native step 1 — and
  repairs each touched group's stored extremum with one O(log n) lookup
  (``CompilerFlags.native_minmax_rescan`` restores the SQL rescan);
* **step 3** (:class:`NativeLivenessStep`): the liveness delete.  With a
  stored COUNT(*)/hidden-count column the test is the exact ``count <= 0``
  restricted to the keys the ΔV batch touched (the SQL form scans the
  whole view).  Without one, the step integrates each group's *weighted
  count* in a persistent :class:`~repro.zset.incremental.
  GroupLivenessState` and deletes on exact integer cancellation — fixing
  the float-residue caveat of the paper's ``DELETE ... WHERE sum = 0``
  fallback (which also deletes live groups whose values genuinely sum to
  zero; the native test matches the recompute specification in both
  cases);
* **step 4** (:class:`NativeTruncateStep`): in-memory truncation of the
  ΔV staging table (delta tables are truncated once per refresh closure
  by the extension, through the same ``Connection.truncate_table`` API).

Selection is *per step* (:func:`build_native_steps`): each step declares
the SQL statement labels it replaces, and any step whose shape falls
outside its kernel surface keeps the SQL form individually.  WHERE
views run step 1 natively: the bound predicate is compiled through the
engine's *vectorized* expression compiler
(:func:`~repro.execution.expression.compile_batch_expression`) and
applied to the delta batch with ``batch_filter`` (selection is linear
over Z-sets).  Computed key expressions and computed aggregate
arguments (``GROUP BY UPPER(g)``, ``SUM(v + 1)``) go through the same
evaluator: each computed expression becomes one appended column of the
source batch (``CompilerFlags.native_expr_eval``), so
expression-keyed views keep native steps 1 and 3.  The remaining
SQL-only step-1 shape is a subquery in WHERE — its result moves with
the base data, so delta-filtering it is not linear; such views run
step 1 on SQL and every other step natively.  The emitted scripts
always contain the full portable SQL regardless.

Equivalence contract: the materialized view contents after a refresh are
identical to the SQL path, with two deliberate caveats:

* the transient ΔV *table* contents may differ when a batch contains
  exactly cancelling changes — the batch path consolidates them to
  nothing, the SQL path writes one row per sign; both fold to the same
  view and ΔV is cleared in step 4 either way;
* for a view relying on the paper's imprecise ``DELETE ... WHERE sum = 0``
  liveness fallback, the native step 3 deletes by exact weighted-count
  cancellation instead of testing float sums.  The historical caveat —
  float residue making the two paths disagree about a group's existence —
  no longer applies to the native pipeline: group liveness is an integer
  on the native path, so a dead group is deleted even when its float sum
  carries residue, and a live group whose values genuinely sum to zero is
  kept.  Both are exactly the recompute answer; the pure-SQL script keeps
  the paper's behaviour as the portable fallback.  Integer SUM values are
  identical on both paths; float SUM *values* may still round differently
  (the two paths sum in different orders).

View shapes outside the step-1 kernel surface (non-equi joins,
subqueries in WHERE, more than two base tables — or computed
expressions with ``native_expr_eval`` off) return ``None`` from
:func:`try_build_batched_step1`.  Because the exact counters and the
extrema state are fed by the native step 1 (only the source rows carry
per-row information), such views keep the SQL step 3 / step 2b as their
per-step fallback.  Scalar-aggregate sum-only views instead run step 3
natively in *paper mode*: their single row is addressed by the constant
key and tested with the compiled ``sum = 0`` predicate (the same
three-valued comparison the SQL DELETE would run), keeping the paper's
semantics while staying off SQL.
"""

from __future__ import annotations

import copy

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.sql import ast
from repro.sql.dialect import Dialect
from repro.core import duckast as d
from repro.core.flags import MaterializationStrategy
from repro.core.model import ColumnRole, MVModel
from repro.core.strategies import delta_column_plan
from repro.execution.aggregates import (
    derive_avg,
    grouped_minmax,
    grouped_weighted_sum,
    merge_additive,
    merge_minmax,
)
from repro.execution.expression import (
    batch_eval,
    compile_batch_expression,
    true_mask,
)
from repro.planner.expressions import (
    BoundBinary,
    BoundColumn,
    BoundConstant,
    BoundExpression,
    BoundInSubquery,
)
from repro.zset.batch import ZSetBatch
from repro.zset.incremental import (
    GroupExtremaState,
    GroupLivenessState,
    IndexedJoinState,
)
from repro.zset.operators import (
    batch_aggregate,
    batch_filter,
    batch_signed_collapse,
    batch_union_regroup,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.connection import Connection


@dataclass
class _Source:
    """Column-resolution info for one base table feeding the view."""

    name: str
    alias: str
    ordinals: dict[str, int]  # lowercase column name -> ordinal
    offset: int  # ordinal offset in the combined (joined) row


class _Unsupported(Exception):
    """Internal: view shape outside the batched kernel surface."""


@dataclass
class _SubquerySnapshot:
    """One pinned IN-subquery result inside a compiled WHERE predicate.

    ``plan`` is the bound logical plan of the subquery SELECT (the same
    object the compiled evaluator looks up by identity through
    ``ExecutionContext.subquery_rows``); ``rows`` is the pinned result,
    seeded at ``initialize()`` (lazily on the first run after recovery)
    and re-evaluated at the start of every refresh.  ``signature``
    summarizes the result as a set — IN only cares about membership and
    NULL presence, so value order and duplicates never force a repair.
    """

    plan: Any
    rows: list | None = None
    signature: Any = None


def _snapshot_signature(rows: list) -> tuple:
    values = [row[0] for row in rows]
    return (
        any(value is None for value in values),
        frozenset(value for value in values if value is not None),
    )


class _SnapshotContext:
    """ExecutionContext wrapper that pins subquery results by plan id.

    The compiled IN-subquery evaluator calls ``subquery_rows(plan)``;
    answering from the pinned map (instead of re-executing the plan)
    is what makes the snapshot the *predicate's* view of the subquery —
    the delta batch and the stored rows are always filtered under the
    same pinned result, and repair swaps the pin explicitly.
    """

    def __init__(self, inner, pinned: dict) -> None:
        self._inner = inner
        self._pinned = pinned
        self.catalog = inner.catalog

    def subquery_rows(self, plan):
        rows = self._pinned.get(id(plan))
        if rows is not None:
            return rows
        return self._inner.subquery_rows(plan)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclass
class BatchedDeltaStep:
    """Executable native form of propagation step 1 for one view."""

    name = "step1"
    step_prefix = "step1:"

    model: MVModel
    delta_tables: list[str]
    # Key columns of the delta view, in model.key_columns() order, as
    # ordinals into the *augmented* source row (base columns first, then
    # one appended column per entry of ``computed``).
    key_ordinals: list[int]
    # Batch evaluators for the appended columns, in append order: one per
    # constant key, computed key expression, or computed aggregate
    # argument (compiled through the vectorized expression evaluator;
    # each references base-column ordinals only).
    computed: list = field(default_factory=list)
    # Aggregate kernels for the non-key delta columns, in delta order:
    # (kernel name, augmented-row ordinal or None for COUNT(*)).
    functions: list = field(default_factory=list)
    # Maps delta-view column positions to batch_aggregate output positions.
    output_permutation: list = field(default_factory=list)
    # Join state (None for single-table views).
    join_left_key: list[int] = field(default_factory=list)
    join_right_key: list[int] = field(default_factory=list)
    state: IndexedJoinState | None = None
    # Constructor for the join state, ``(left_key, right_key) -> state``;
    # the sharded refresh swaps in a hash-partitioned implementation
    # before initialize() runs.  None selects IndexedJoinState.
    state_factory: Any = None
    refresh_rounds: int = 0
    # SQL statement labels this step replaces (assigned at plan assembly).
    replaces: frozenset = frozenset()
    # Wired when the view has no stored liveness column: this step is the
    # only place the *source-level* weighted counts per group are visible
    # (ΔV rows are group rows, one ±1 entry per sign — their weights do
    # not carry row multiplicities), so it feeds the liveness step's exact
    # counters as part of computing ΔV.
    liveness_step: "NativeLivenessStep | None" = None
    # Wired for MIN/MAX views with the native step-2b rescan: the extrema
    # state likewise needs the source-level (group, value) deltas, which
    # only this step sees.
    extrema_step: "NativeRescanStep | None" = None
    # Delta column name -> augmented-row ordinal of its aggregate argument
    # (None for COUNT(*)); lets the rescan builder find each MIN/MAX
    # column's source column without re-deriving the source layout.
    aggregate_ordinals: dict = field(default_factory=dict)
    # Compiled WHERE predicate — a vectorized batch evaluator
    # (:func:`~repro.execution.expression.compile_batch_expression`) over
    # the combined source row, or None for unfiltered views.  Selection
    # is linear, so it applies directly to the delta batch (post-join for
    # join views — the indexed state integrates the unfiltered
    # relations), through ``batch_filter``.
    where_eval: Any = None
    # Pinned IN-subquery results referenced by ``where_eval`` (single-
    # table views under ``CompilerFlags.subquery_snapshot``).  The
    # predicate is only piecewise-linear: between snapshot changes the
    # filter is linear and deltas flow as usual; when a re-evaluation at
    # the start of ``run()`` finds the membership set changed, the step
    # injects the retract/insert delta for integrated rows whose
    # predicate verdict flipped — all in-memory, zero SQL.
    snapshots: list = field(default_factory=list)

    @property
    def is_join(self) -> bool:
        return len(self.delta_tables) == 2

    @property
    def requires_base_tables(self) -> bool:
        """Join views bulk-load the indexed state from the base tables, so
        they can only run where those tables are locally scannable (the
        HTAP pipeline keeps them on the attached OLTP side)."""
        return self.is_join

    # -- lifecycle ----------------------------------------------------------

    def initialize(self, connection: "Connection") -> None:
        """Build the indexed join state from the current base tables.

        Any rows already pending in the delta tables are rewound out, so
        the state always equals ``base − unconsumed ΔT`` — the integrated
        state as of the last refresh.  Subquery snapshots are seeded here
        too, so the pinned predicate matches the state the populate query
        materialized.
        """
        self._seed_snapshots(connection)
        if not self.is_join:
            return
        left, right = self.model.analysis.tables
        factory = self.state_factory or IndexedJoinState
        state = factory(self.join_left_key, self.join_right_key)
        state.load_left(connection.table(left.name).scan())
        state.load_right(connection.table(right.name).scan())
        pending_left = connection.read_delta_batch(self.delta_tables[0])
        pending_right = connection.read_delta_batch(self.delta_tables[1])
        if len(pending_left) or len(pending_right):
            state.rewind(pending_left, pending_right)
        self.state = state

    # -- execution ----------------------------------------------------------

    def run(self, connection: "Connection") -> int:
        """Compute ΔV from the delta tables and append it to the ΔV table.

        Returns the number of ΔV rows written.
        """
        self.refresh_rounds += 1
        # Snapshot repair first: re-pin each IN-subquery result and, when
        # the membership set moved, compute the retract/insert delta for
        # integrated rows whose verdict flipped.  The ΔT batch below is
        # then filtered under the *new* pin, so the two compose to
        # exactly the new predicate's view.
        injected = self._repair_snapshots(connection)
        batches = [
            connection.read_delta_batch(name) for name in self.delta_tables
        ]
        if self.is_join:
            if self.state is None:
                raise RuntimeError(
                    "batched join step used before initialize()"
                )
            source = self.state.apply(batches[0], batches[1])
        else:
            source = batches[0]
        ctx = None
        if self.where_eval is not None and len(source):
            ctx = self._context(connection)
            source = batch_filter(
                source,
                mask=true_mask(batch_eval(self.where_eval, source, ctx)),
            )
        if injected is not None and len(injected):
            source = source + injected
        if len(source) == 0:
            return 0

        source = self._with_computed_columns(source, connection, ctx)
        # Consolidate once up front: the sign split, the liveness feed,
        # and the extrema feed all want the normal form.
        source = source.consolidate()
        key_ordinals = self.key_ordinals
        if self.liveness_step is not None:
            _, keys, net = source.group_structure(key_ordinals)
            self.liveness_step.absorb(keys, net)
        if self.extrema_step is not None:
            self.extrema_step.absorb(source, key_ordinals)

        rows: list[tuple] = []
        positive, negative = source.split_signs()
        for partition, multiplicity in ((positive, True), (negative, False)):
            if len(partition) == 0:
                continue
            aggregated = batch_aggregate(
                partition, key_ordinals, self.functions
            )
            permuted = [
                aggregated.columns[j] for j in self.output_permutation
            ]
            for i in range(len(aggregated)):
                rows.append(
                    tuple(column[i] for column in permuted) + (multiplicity,)
                )
        if rows:
            connection.insert_rows(self.model.delta_view_table, rows)
        return len(rows)

    # -- helpers -------------------------------------------------------------

    def _context(self, connection: "Connection"):
        from repro.execution.executor import ExecutionContext

        ctx = ExecutionContext(connection.catalog)
        if self.snapshots:
            return _SnapshotContext(
                ctx, {id(spec.plan): spec.rows for spec in self.snapshots}
            )
        return ctx

    def _seed_snapshots(self, connection: "Connection") -> None:
        from repro.execution.executor import ExecutionContext, execute_plan

        if not self.snapshots:
            return
        ctx = ExecutionContext(connection.catalog)
        for spec in self.snapshots:
            spec.rows = execute_plan(spec.plan, ctx)
            spec.signature = _snapshot_signature(spec.rows)

    def _repair_snapshots(self, connection: "Connection"):
        """Re-evaluate every pinned subquery (in memory, via the plan
        executor); when a membership set changed, return the signed
        :class:`ZSetBatch` of integrated source rows whose predicate
        verdict flipped (+row newly passing, −row no longer passing).

        The integrated state is ``base − pending ΔT`` — the rows the
        stored view was last refreshed from — so the injected delta plus
        the ΔT batch (filtered under the new pin) lands the view exactly
        on the new predicate's answer.
        """
        from repro.execution.executor import ExecutionContext, execute_plan

        if not self.snapshots:
            return None
        base_ctx = ExecutionContext(connection.catalog)
        old_pins: dict[int, list] = {}
        changed = False
        for spec in self.snapshots:
            rows = execute_plan(spec.plan, base_ctx)
            signature = _snapshot_signature(rows)
            if spec.rows is None:
                # Lazy first seed (recovery path): checkpoints are
                # quiescent and non-watched subquery tables replay no
                # WAL, so the fresh result is the one the stored view
                # was built under.
                old_pins[id(spec.plan)] = rows
            else:
                old_pins[id(spec.plan)] = spec.rows
                if signature != spec.signature:
                    changed = True
            spec.rows = rows
            spec.signature = signature
        if not changed or self.where_eval is None:
            return None
        source = self.model.analysis.tables[0]
        table = connection.table(source.name)
        base_rows = [tuple(row) for row in table.scan()]
        arity = len(table.schema.columns)
        integrated = (
            ZSetBatch.from_rows(base_rows, arity=arity)
            + (-connection.read_delta_batch(self.delta_tables[0]))
        ).consolidate()
        if len(integrated) == 0:
            return None
        ctx_old = _SnapshotContext(
            ExecutionContext(connection.catalog), old_pins
        )
        ctx_new = self._context(connection)
        mask_old = true_mask(batch_eval(self.where_eval, integrated, ctx_old))
        mask_new = true_mask(batch_eval(self.where_eval, integrated, ctx_new))
        gained = integrated.mask(mask_new & ~mask_old)
        lost = integrated.mask(mask_old & ~mask_new)
        injected = gained + (-lost)
        return injected if len(injected) else None

    def _with_computed_columns(
        self, source: ZSetBatch, connection: "Connection", ctx
    ) -> ZSetBatch:
        """Append one materialized column per computed expression —
        constant keys (the hidden scalar-aggregate key is ``CAST(0 AS
        INTEGER)``), computed key expressions, computed aggregate
        arguments — evaluated column-at-a-time over the base columns."""
        if not self.computed:
            return source
        if ctx is None:
            ctx = self._context(connection)
        columns = list(source.columns)
        for evaluator in self.computed:
            columns.append(batch_eval(evaluator, source, ctx))
        return ZSetBatch(
            columns, source.weights, consolidated=source.is_consolidated
        )


# ---------------------------------------------------------------------------
# Spec construction
# ---------------------------------------------------------------------------


def try_build_batched_step1(model: MVModel, catalog) -> BatchedDeltaStep | None:
    """A :class:`BatchedDeltaStep` for ``model``, or None when the view
    shape is outside the kernel surface (the caller keeps the SQL path)."""
    try:
        return _build(model, catalog)
    except _Unsupported:
        return None


@dataclass
class _ComputedColumns:
    """Accumulates the appended (computed) columns of the source batch.

    The augmented row is the combined base row followed by one column
    per registered evaluator; ``add`` returns the new column's ordinal.
    """

    base_arity: int
    evaluators: list = field(default_factory=list)

    def add(self, evaluator) -> int:
        self.evaluators.append(evaluator)
        return self.base_arity + len(self.evaluators) - 1


def _build(model: MVModel, catalog) -> BatchedDeltaStep:
    analysis = model.analysis
    if len(analysis.tables) > 2:
        raise _Unsupported("more than two base tables")

    sources: list[_Source] = []
    offset = 0
    for table in analysis.tables:
        schema = catalog.table(table.name).schema
        ordinals = {
            column.name.lower(): j for j, column in enumerate(schema.columns)
        }
        sources.append(
            _Source(
                name=table.name, alias=table.alias,
                ordinals=ordinals, offset=offset,
            )
        )
        offset += len(schema.columns)

    where_eval = None
    snapshots: list[_SubquerySnapshot] = []
    if analysis.where is not None:
        where_eval, snapshots = _compile_where_predicate(
            analysis.where, sources, catalog, model
        )

    join_left_key: list[int] = []
    join_right_key: list[int] = []
    if len(sources) == 2:
        if analysis.join_condition is None:
            raise _Unsupported("join views need an equi-join condition")
        for left_ordinal, right_ordinal in _equi_key_pairs(
            analysis.join_condition, sources
        ):
            join_left_key.append(left_ordinal)
            join_right_key.append(right_ordinal)
        if not join_left_key:
            raise _Unsupported("no equi-join key pairs")

    computed = _ComputedColumns(base_arity=offset)
    key_ordinals: list[int] = []
    functions: list[tuple[str, int | None]] = []
    key_positions: dict[str, int] = {}
    agg_positions: dict[str, int] = {}
    aggregate_ordinals: dict[str, int | None] = {}
    for column, kind in delta_column_plan(model):
        if kind == "key":
            key_ordinals.append(
                _resolve_or_compile(
                    column.expr, sources, catalog, model, computed
                )
            )
            key_positions[column.name] = len(key_ordinals) - 1
        else:
            kernel = _aggregate_kernel(column, sources, catalog, model, computed)
            functions.append(kernel)
            agg_positions[column.name] = len(functions) - 1
            aggregate_ordinals[column.name] = kernel[1]

    num_keys = len(key_ordinals)
    output_permutation = []
    for column in model.delta_columns():
        if column.role is ColumnRole.KEY:
            output_permutation.append(key_positions[column.name])
        else:
            output_permutation.append(num_keys + agg_positions[column.name])

    return BatchedDeltaStep(
        model=model,
        delta_tables=[
            model.source_delta_table(table) for table in analysis.tables
        ],
        key_ordinals=key_ordinals,
        computed=computed.evaluators,
        functions=functions,
        output_permutation=output_permutation,
        join_left_key=join_left_key,
        join_right_key=join_right_key,
        aggregate_ordinals=aggregate_ordinals,
        where_eval=where_eval,
        snapshots=snapshots,
    )


def _resolve_or_compile(
    expr: ast.Expression, sources, catalog, model: MVModel, computed
) -> int:
    """Augmented-row ordinal of an expression: a plain column reference
    resolves to its base ordinal; a constant (the hidden scalar-aggregate
    key) becomes a broadcast column; anything else is compiled through
    the vectorized expression evaluator into an appended column — gated
    by ``CompilerFlags.native_expr_eval``, whose off position restores
    the SQL step-1 fallback for computed expressions."""
    if isinstance(expr, ast.ColumnRef):
        return _resolve_column(expr, sources)
    constant = _constant_value(expr)
    if constant is not _NOT_CONSTANT:
        return computed.add(compile_batch_expression(BoundConstant(constant)))
    if not model.flags.native_expr_eval:
        raise _Unsupported(
            f"computed expression {type(expr).__name__} "
            "(native_expr_eval is off)"
        )
    return computed.add(_compile_source_expression(expr, sources, catalog))


def _compile_source_expression(expr, sources, catalog):
    """Bind a source-level expression over the combined base row and
    compile it into a vectorized batch evaluator, via the engine's own
    binder — the computed column is thereby evaluated exactly as the
    SQL step 1 would evaluate the expression per row.

    Subqueries are rejected like in WHERE: their results move with the
    base data, so a subquery-valued key or argument is not linear.
    """
    from repro.planner.binder import Binder

    if _contains_subquery(expr):
        raise _Unsupported("subquery-valued expression uses the SQL path")
    try:
        bound = Binder(catalog).bind_scalar(
            copy.deepcopy(expr), _source_output_columns(sources, catalog)
        )
        return compile_batch_expression(bound)
    except _Unsupported:
        raise
    except Exception:
        raise _Unsupported("expression outside the evaluator surface")


def _source_output_columns(sources: list[_Source], catalog):
    """Binder schema of the combined source row (both tables' columns in
    offset order), shared by the WHERE predicate and the computed-column
    compilation."""
    from repro.planner.logical import OutputColumn

    output: list = []
    for source in sources:
        for column in catalog.table(source.name).schema.columns:
            output.append(OutputColumn(column.name, column.type, source.alias))
    return output


def _compile_where_predicate(where, sources: list[_Source], catalog, model):
    """Compile a WHERE clause into a vectorized batch evaluator over the
    combined source row, via the engine's own binder and the batch
    expression compiler — selection is linear over Z-sets, so the delta
    batch is filtered exactly as the base relation would be.  Returns
    ``(evaluator, snapshots)``.

    Uncorrelated IN-subqueries are linearized by *snapshotting*: each
    bound subquery plan becomes a :class:`_SubquerySnapshot` whose
    pinned rows answer the evaluator's ``subquery_rows`` lookups, and
    :meth:`BatchedDeltaStep._repair_snapshots` injects the verdict-flip
    delta when the pinned set changes (``subquery_snapshot`` flag;
    single-table views only — a join's indexed state integrates the
    unfiltered relations, so it keeps the SQL step 1).  Other subquery
    shapes stay on SQL: their results shift with the base data, so
    filtering the delta with them is not linear.
    """
    from repro.planner.binder import Binder

    if _contains_subquery(where):
        if not model.flags.subquery_snapshot:
            raise _Unsupported("subquery in WHERE uses the SQL path")
        if len(sources) != 1:
            raise _Unsupported(
                "subquery in a join view's WHERE uses the SQL path"
            )
    try:
        bound = Binder(catalog).bind_scalar(
            copy.deepcopy(where), _source_output_columns(sources, catalog)
        )
        evaluator = compile_batch_expression(bound)
    except Exception:
        raise _Unsupported("WHERE predicate outside the kernel surface")
    snapshots = [
        _SubquerySnapshot(plan=node.plan)
        for node in _walk_bound(bound)
        if isinstance(node, BoundInSubquery)
    ]
    return evaluator, snapshots


def _walk_bound(node):
    """Yield a bound-expression tree pre-order (dataclass recursion)."""
    yield node
    for name in getattr(node, "__dataclass_fields__", ()):
        value = getattr(node, name)
        values = value if isinstance(value, (list, tuple)) else [value]
        for item in values:
            if isinstance(item, BoundExpression):
                yield from _walk_bound(item)
            elif isinstance(item, tuple):
                for sub in item:
                    if isinstance(sub, BoundExpression):
                        yield from _walk_bound(sub)


def _contains_subquery(node) -> bool:
    """True when an expression tree embeds a SELECT (Exists / scalar)."""
    if isinstance(node, (ast.Exists, ast.ScalarSubquery, ast.Select)):
        return True
    for name in getattr(node, "__dataclass_fields__", ()):
        value = getattr(node, name)
        values = value if isinstance(value, (list, tuple)) else [value]
        for item in values:
            if isinstance(item, ast.Node) and _contains_subquery(item):
                return True
            if isinstance(item, tuple) and any(
                isinstance(sub, ast.Node) and _contains_subquery(sub)
                for sub in item
            ):
                return True
    return False


_NOT_CONSTANT = object()

_KERNELS = {
    ColumnRole.SUM: "SUM",
    ColumnRole.AVG_SUM: "SUM",
    ColumnRole.COUNT: "COUNT",
    ColumnRole.AVG_COUNT: "COUNT",
    ColumnRole.COUNT_STAR: "COUNT",
    ColumnRole.HIDDEN_COUNT: "COUNT",
    ColumnRole.MIN: "MIN",
    ColumnRole.MAX: "MAX",
}


def _aggregate_kernel(
    column, sources, catalog, model: MVModel, computed
) -> tuple[str, int | None]:
    kernel = _KERNELS.get(column.role)
    if kernel is None:
        raise _Unsupported(f"no batch kernel for role {column.role}")
    if column.expr is None:
        return kernel, None
    return kernel, _resolve_or_compile(
        column.expr, sources, catalog, model, computed
    )


def _constant_value(expr: ast.Expression):
    """The literal value of a constant key expression (possibly CAST-
    wrapped), or the _NOT_CONSTANT sentinel."""
    node = expr
    while isinstance(node, ast.Cast):
        node = node.operand
    if isinstance(node, ast.Literal):
        return node.value
    return _NOT_CONSTANT


def _resolve_column(expr: ast.Expression, sources: list[_Source]) -> int:
    """Combined-row ordinal of a plain column reference."""
    if not isinstance(expr, ast.ColumnRef):
        raise _Unsupported(f"computed expression {type(expr).__name__}")
    name = expr.name.lower()
    if expr.table is not None:
        alias = expr.table.lower()
        for source in sources:
            if source.alias.lower() == alias:
                if name not in source.ordinals:
                    raise _Unsupported(f"unknown column {expr.name}")
                return source.offset + source.ordinals[name]
        raise _Unsupported(f"unknown alias {expr.table}")
    owners = [source for source in sources if name in source.ordinals]
    if len(owners) != 1:
        raise _Unsupported(f"ambiguous or unknown column {expr.name}")
    return owners[0].offset + owners[0].ordinals[name]


def _equi_key_pairs(
    condition: ast.Expression, sources: list[_Source]
) -> list[tuple[int, int]]:
    """(left_ordinal, right_ordinal) pairs from an AND-ed equality chain.

    Ordinals are relative to each side's own row (not the combined row).
    """
    pairs: list[tuple[int, int]] = []
    left_width = len(sources[0].ordinals)

    def visit(node: ast.Expression) -> None:
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            visit(node.left)
            visit(node.right)
            return
        if not (
            isinstance(node, ast.BinaryOp)
            and node.op == "="
            and isinstance(node.left, ast.ColumnRef)
            and isinstance(node.right, ast.ColumnRef)
        ):
            raise _Unsupported("non-equi join condition")
        a = _resolve_column(node.left, sources)
        b = _resolve_column(node.right, sources)
        if a < left_width <= b:
            pairs.append((a, b - left_width))
        elif b < left_width <= a:
            pairs.append((b, a - left_width))
        else:
            raise _Unsupported("join condition does not span both tables")

    visit(condition)
    return pairs


# ---------------------------------------------------------------------------
# Steps 2–4: signed-collapse upsert, liveness delete, delta truncation
# ---------------------------------------------------------------------------


@dataclass
class _ColumnFold:
    """How one stored view column combines with the collapsed ΔV batch."""

    name: str
    kind: str  # "key" | "additive" | "min" | "max" | "avg"
    stored_ordinal: int  # position in the mv row (model.columns order)
    key_index: int = -1  # for "key": index into the group key tuple
    delta_pos: int = -1  # for folds: column position in the ΔV row
    companion_sum: str = ""  # for "avg": names of the hidden companions
    companion_count: str = ""


@dataclass
class NativeUpsertStep:
    """Native step 2: collapse ΔV by sign and fold it into the view.

    The SQL form (Listing 2) builds a signed CTE over ΔV and LEFT-JOINs it
    against the stored table before an INSERT OR REPLACE; this step runs
    the same per-key merge directly: one vectorized signed collapse of the
    ΔV batch, then a point lookup + merge + upsert per touched group, so
    the cost tracks |ΔV|, never |V|.  MIN/MAX partials only tighten the
    stored extremum (insert side); retractions are repaired by the step-2b
    rescan that follows (native :class:`NativeRescanStep` when available,
    else the compiled SQL).
    """

    name = "step2"
    step_prefix = "step2:"

    mv_table: str
    delta_view_table: str
    key_positions: list[int]  # key column positions in the ΔV row
    folds: list[_ColumnFold]  # one per mv column, in storage order
    replaces: frozenset = frozenset()
    requires_base_tables = False
    # Wired when the liveness step runs natively too: the touched keys are
    # already grouped here, so step 3 need not re-read and re-group ΔV.
    liveness_step: "NativeLivenessStep | None" = None

    def initialize(self, connection: "Connection") -> None:
        return None

    def run(self, connection: "Connection") -> int:
        batch = connection.read_delta_batch(self.delta_view_table)
        if len(batch) == 0:
            return 0
        ids, keys, _ = batch.group_structure(self.key_positions)
        if self.liveness_step is not None:
            self.liveness_step.absorb_keys(keys)
        num_groups = len(keys)
        positive = batch.weights > 0
        pos_ids = ids[positive]
        pos_weights = batch.weights[positive]

        collapsed: dict[int, list] = {}
        for fold in self.folds:
            if fold.kind == "additive":
                collapsed[fold.delta_pos] = grouped_weighted_sum(
                    ids, batch.columns[fold.delta_pos], batch.weights,
                    num_groups,
                )
            elif fold.kind in ("min", "max"):
                collapsed[fold.delta_pos] = grouped_minmax(
                    pos_ids, batch.columns[fold.delta_pos][positive],
                    pos_weights, num_groups, want_max=(fold.kind == "max"),
                )

        table = connection.table(self.mv_table)
        rows: list[tuple] = []
        for g, key in enumerate(keys):
            stored = table.pk_lookup(key)
            new: dict[str, Any] = {}
            for fold in self.folds:
                if fold.kind == "key":
                    new[fold.name] = key[fold.key_index]
                elif fold.kind == "additive":
                    new[fold.name] = merge_additive(
                        None if stored is None else stored[fold.stored_ordinal],
                        collapsed[fold.delta_pos][g],
                    )
                elif fold.kind in ("min", "max"):
                    new[fold.name] = merge_minmax(
                        None if stored is None else stored[fold.stored_ordinal],
                        collapsed[fold.delta_pos][g],
                        want_max=(fold.kind == "max"),
                    )
            _derive_avg_folds(self.folds, new)
            rows.append(tuple(new[fold.name] for fold in self.folds))
        connection.upsert_rows(self.mv_table, rows)
        return len(rows)


def _derive_avg_folds(folds: list, new: dict) -> None:
    """Fill the derived AVG columns of ``new`` from their hidden
    sum/count companions (which every step-2 variant merges first)."""
    for fold in folds:
        if fold.kind == "avg":
            new[fold.name] = derive_avg(
                new[fold.companion_sum], new[fold.companion_count]
            )


@dataclass
class NativeRegroupStep:
    """Native step 2 for the UNION_REGROUP strategy.

    The SQL form rebuilds the whole view: ``CREATE TABLE scratch AS
    SELECT ... FROM (stored UNION ALL signed-ΔV) GROUP BY keys``, then
    swaps the contents — O(|V|) per refresh by design.  This step runs
    the same union + regroup as a kernel restricted to the keys ΔV
    actually touched: the stored rows of those keys (one primary-key ART
    probe each) are concatenated with the signed ΔV batch and re-grouped
    by :func:`~repro.zset.operators.batch_union_regroup`, so the cost
    tracks |ΔV|, never |V|.  Untouched rows are exactly the rows the SQL
    rebuild copies verbatim.  Dead groups regroup to net-zero additive
    values and stay until the liveness step deletes them, matching the
    SQL strategy's step ordering.
    """

    name = "step2"
    step_prefix = "step2:"

    mv_table: str
    delta_view_table: str
    key_positions: list[int]  # key column positions in the ΔV row
    folds: list[_ColumnFold]  # one per mv column (key/additive/avg only)
    # mv-row ordinal of each ΔV column, in ΔV order — projects a stored
    # row into the ΔV layout for the union.
    delta_stored_ordinals: list = field(default_factory=list)
    replaces: frozenset = frozenset()
    requires_base_tables = False
    liveness_step: "NativeLivenessStep | None" = None

    def initialize(self, connection: "Connection") -> None:
        return None

    def run(self, connection: "Connection") -> int:
        batch = connection.read_delta_batch(self.delta_view_table)
        if len(batch) == 0:
            return 0
        _, touched, _ = batch.group_structure(self.key_positions)
        if self.liveness_step is not None:
            self.liveness_step.absorb_keys(touched)
        table = connection.table(self.mv_table)
        stored_rows = []
        for key in touched:
            stored = table.pk_lookup(key)
            if stored is not None:
                stored_rows.append(
                    tuple(stored[j] for j in self.delta_stored_ordinals)
                )
        stored_batch = ZSetBatch.from_rows(
            stored_rows, arity=len(self.delta_stored_ordinals)
        )
        additive = [f.delta_pos for f in self.folds if f.kind == "additive"]
        keys, collapsed = batch_union_regroup(
            stored_batch, batch, self.key_positions, additive
        )
        rows: list[tuple] = []
        for g, key in enumerate(keys):
            new: dict[str, Any] = {}
            for fold in self.folds:
                if fold.kind == "key":
                    new[fold.name] = key[fold.key_index]
                elif fold.kind == "additive":
                    new[fold.name] = collapsed[fold.delta_pos][g]
            _derive_avg_folds(self.folds, new)
            rows.append(tuple(new[fold.name] for fold in self.folds))
        connection.upsert_rows(self.mv_table, rows)
        return len(rows)


@dataclass
class NativeOuterMergeStep:
    """Native step 2 for the FULL_OUTER_JOIN strategy.

    The SQL form FULL-OUTER-JOINs the whole stored table against the
    collapsed ΔV and rebuilds the view from the result — every stored
    row is rewritten, changed or not.  This step keeps the strategy's
    merge rule (``COALESCE(stored, 0) + COALESCE(delta, 0)`` per
    additive column, key coalesced across the two sides) but drives it
    from the delta side only: ΔV is collapsed per key
    (:func:`~repro.zset.operators.batch_signed_collapse`) and each
    touched key is outer-merged with its stored row through the view's
    primary-key ART — rows only on the stored side are exactly the rows
    the SQL rebuild copies unchanged, so they are left in place.
    """

    name = "step2"
    step_prefix = "step2:"

    mv_table: str
    delta_view_table: str
    key_positions: list[int]  # key column positions in the ΔV row
    folds: list[_ColumnFold]  # one per mv column (key/additive/avg only)
    replaces: frozenset = frozenset()
    requires_base_tables = False
    liveness_step: "NativeLivenessStep | None" = None

    def initialize(self, connection: "Connection") -> None:
        return None

    def run(self, connection: "Connection") -> int:
        batch = connection.read_delta_batch(self.delta_view_table)
        if len(batch) == 0:
            return 0
        additive = [f.delta_pos for f in self.folds if f.kind == "additive"]
        keys, collapsed = batch_signed_collapse(
            batch, self.key_positions, additive
        )
        if self.liveness_step is not None:
            self.liveness_step.absorb_keys(keys)
        table = connection.table(self.mv_table)
        rows: list[tuple] = []
        for g, key in enumerate(keys):
            stored = table.pk_lookup(key)
            new: dict[str, Any] = {}
            for fold in self.folds:
                if fold.kind == "key":
                    new[fold.name] = key[fold.key_index]
                elif fold.kind == "additive":
                    new[fold.name] = merge_additive(
                        None if stored is None else stored[fold.stored_ordinal],
                        collapsed[fold.delta_pos][g],
                    )
            _derive_avg_folds(self.folds, new)
            rows.append(tuple(new[fold.name] for fold in self.folds))
        connection.upsert_rows(self.mv_table, rows)
        return len(rows)


@dataclass
class _ExtremaColumn:
    """One MIN/MAX view column maintained by the native step-2b rescan."""

    name: str
    stored_ordinal: int  # position in the stored mv row
    value_ordinal: int  # combined-source-row ordinal of the argument
    want_max: bool


@dataclass
class _ExtremaSource:
    """One multiset of source values, shared by every MIN/MAX column over
    the same argument (``MIN(v), MAX(v)`` seed and feed it once)."""

    value_ordinal: int
    init_sql: str  # seeds the state at CREATE time
    state: GroupExtremaState = field(default_factory=GroupExtremaState)
    # (group+value key tuples, per-tuple nets) pushed by step 1 this round.
    pending: list = field(default_factory=list)


@dataclass
class NativeRescanStep:
    """Native step 2b: answer MIN/MAX retractions from the extrema state.

    The SQL form recomputes every deletion-touched group from the base
    tables — O(|base|) per refresh that contains a delete.  This step
    instead keeps one persistent :class:`~repro.zset.incremental.
    GroupExtremaState` per MIN/MAX column (an ordered per-(group, value)
    multiset), fed the source-level deltas by the native step 1, and
    repairs each touched group's stored extremum with one O(log n)
    lookup.  Groups that died entirely are left for the liveness step
    (their stored count is already ≤ 0 after step 2), matching the SQL
    rescan, which produces no rows for them either.
    """

    name = "step2b"
    step_prefix = "step2b:"

    mv_table: str
    columns: list[_ExtremaColumn]
    # value ordinal -> shared multiset; one entry per distinct argument.
    sources: dict  # dict[int, _ExtremaSource]
    liveness_ordinal: int  # stored liveness column (always present here)
    # Key layout of the seeding SQL: constant keys (the hidden scalar-
    # aggregate key) are not grouped over, so they are re-inserted into
    # the loaded key tuples by position.
    key_is_const: list[bool] = field(default_factory=list)
    key_constants: list[Any] = field(default_factory=list)
    replaces: frozenset = frozenset()
    # Seeding recomputes per-(group, value) counts from the base tables.
    requires_base_tables = True
    # Deletion-touched group keys pushed by the native step 1 this round.
    pending_touched: list = field(default_factory=list)

    def initialize(self, connection: "Connection") -> None:
        for source in self.sources.values():
            result = connection.execute(source.init_sql)
            source.state.load(
                (self._full_key(row), row[-2], row[-1])
                for row in result.rows
            )

    def _full_key(self, row: tuple) -> tuple:
        """Rebuild a group key from a seeding row (non-constant key values
        lead the row, constants are spliced back in by position)."""
        it = iter(row)
        return tuple(
            const if is_const else next(it)
            for is_const, const in zip(self.key_is_const, self.key_constants)
        )

    def absorb(self, source, key_ordinals: list) -> None:
        """Receive one round's consolidated source-level delta batch (from
        the native step 1): per-column (group, value) count deltas plus
        the groups touched by a retraction."""
        negative = source.weights < 0
        if negative.any():
            _, keys, _ = source.mask(negative).group_structure(key_ordinals)
            self.pending_touched.extend(keys)
        for extrema in self.sources.values():
            _, gv_keys, nets = source.group_structure(
                list(key_ordinals) + [extrema.value_ordinal]
            )
            extrema.pending.append((gv_keys, nets))

    def run(self, connection: "Connection") -> int:
        for extrema in self.sources.values():
            for gv_keys, nets in extrema.pending:
                extrema.state.apply(
                    [key[:-1] for key in gv_keys],
                    [key[-1] for key in gv_keys],
                    nets,
                )
            extrema.pending.clear()
        if not self.pending_touched:
            return 0
        touched: list[tuple] = []
        seen: set = set()
        for key in self.pending_touched:
            if key not in seen:
                seen.add(key)
                touched.append(key)
        self.pending_touched.clear()

        table = connection.table(self.mv_table)
        updates: list[tuple] = []
        for key in touched:
            stored = table.pk_lookup(key)
            if stored is None or stored[self.liveness_ordinal] <= 0:
                continue  # absent or dead; the liveness step handles it
            new_row = list(stored)
            changed = False
            for column in self.columns:
                state = self.sources[column.value_ordinal].state
                value = state.extremum(key, column.want_max)
                if new_row[column.stored_ordinal] != value:
                    new_row[column.stored_ordinal] = value
                    changed = True
            if changed:
                updates.append(tuple(new_row))
        if updates:
            connection.upsert_rows(self.mv_table, updates)
        return len(updates)


@dataclass
class NativeLivenessStep:
    """Native step 3: delete dead groups by exact integer cancellation.

    Only the groups the refresh touched can have died, so the step tests
    those keys alone (the SQL form scans the whole view).  With a stored
    liveness column the test is the exact ``count <= 0`` against the
    post-step-2 row of every key in the ΔV batch.  Without one, the ΔV
    rows carry no count at all (they are group rows, ±1 per sign), so the
    step is fed the *source-level* weighted counts by the native step 1
    (:attr:`BatchedDeltaStep.liveness_step`) and integrates them in a
    persistent :class:`~repro.zset.incremental.GroupLivenessState`,
    replacing the paper's imprecise ``DELETE ... WHERE sum = 0`` with
    exact integer cancellation.

    Scalar-aggregate sum-only views are the third form: their single
    row must keep the *paper's* semantics (the SQL step 3 is the only
    spec there), so the step evaluates the compiled ``sum = 0 AND ...``
    predicate over the stored row — addressed by the constant key, with
    the same three-valued comparison the SQL DELETE would run — and
    deletes on TRUE.  Same answer as the SQL form, zero SQL statements.
    """

    name = "step3"
    step_prefix = "step3:"

    mv_table: str
    delta_view_table: str
    key_positions: list[int]
    liveness_ordinal: int | None = None  # stored-row ordinal, if stored
    counters: GroupLivenessState | None = None
    init_count_sql: str | None = None  # seeds the counters at CREATE time
    # Paper mode (scalar sum-only views): the vectorized `sum = 0`
    # predicate over the stored mv row, and the constant key addressing
    # the view's single row.
    paper_predicate: Any = None
    scalar_key: tuple | None = None
    replaces: frozenset = frozenset()
    # Per-group count deltas pushed by the native step 1 this round.
    pending: list = field(default_factory=list)
    # Touched group keys pushed by the native step 2 this round (saves a
    # second ΔV read+group on the stored-liveness path).
    pending_keys: list = field(default_factory=list)

    @property
    def requires_base_tables(self) -> bool:
        # Counter seeding recomputes COUNT(*) per group from the bases.
        return self.counters is not None

    def initialize(self, connection: "Connection") -> None:
        if self.counters is None:
            return
        result = connection.execute(self.init_count_sql)
        self.counters.load(
            (tuple(row[:-1]), row[-1]) for row in result.rows
        )

    def absorb(self, keys: list, nets) -> None:
        """Receive one round of per-group weighted-count deltas (from the
        native step 1, which sees the source rows)."""
        self.pending.extend(zip(keys, (int(n) for n in nets)))

    def absorb_keys(self, keys: list) -> None:
        """Receive one round's touched group keys (from the native step 2,
        which has already grouped the ΔV batch)."""
        self.pending_keys.extend(keys)

    def run(self, connection: "Connection") -> int:
        if self.paper_predicate is not None:
            return self._run_paper_mode(connection)
        if self.counters is not None:
            if not self.pending:
                return 0
            keys = [key for key, _ in self.pending]
            nets = [net for _, net in self.pending]
            self.pending.clear()
            dead = self.counters.apply(keys, nets)
        else:
            if self.pending_keys:
                keys = list(self.pending_keys)
                self.pending_keys.clear()
            else:
                batch = connection.read_delta_batch(self.delta_view_table)
                if len(batch) == 0:
                    return 0
                _, keys, _ = batch.group_structure(self.key_positions)
            table = connection.table(self.mv_table)
            dead = []
            for key in keys:
                stored = table.pk_lookup(key)
                if (
                    stored is not None
                    and stored[self.liveness_ordinal] <= 0
                ):
                    dead.append(key)
        if not dead:
            return 0
        return connection.delete_keys(self.mv_table, dead)

    def _run_paper_mode(self, connection: "Connection") -> int:
        """Scalar sum-only views: test the single stored row against the
        compiled paper predicate, like the SQL ``DELETE ... WHERE sum =
        0`` scans the (at most one-row) view on every refresh."""
        self.pending_keys.clear()
        table = connection.table(self.mv_table)
        stored = table.pk_lookup(self.scalar_key)
        if stored is None:
            return 0
        from repro.execution.executor import ExecutionContext

        row_batch = ZSetBatch.from_rows([stored])
        verdict = batch_eval(
            self.paper_predicate, row_batch, ExecutionContext(connection.catalog)
        )
        if verdict[0] is not True:
            return 0
        return connection.delete_keys(self.mv_table, [self.scalar_key])


@dataclass
class NativeTruncateStep:
    """Native step 4: in-memory truncation of the ΔV staging table.

    The per-base ΔT tables are shared between views, so the refresh
    closure truncates them once at the end (through the same
    ``Connection.truncate_table`` API) rather than per view here.
    """

    name = "step4"
    step_prefix = "step4: clear delta view"

    tables: list[str]
    replaces: frozenset = frozenset()
    requires_base_tables = False

    def initialize(self, connection: "Connection") -> None:
        return None

    def run(self, connection: "Connection") -> int:
        return sum(connection.truncate_table(name) for name in self.tables)


def build_native_steps(
    model: MVModel, catalog, dialect: Dialect
) -> list[object]:
    """The native steps for ``model``, selected per step.

    Each returned step knows which SQL labels it replaces by prefix; steps
    whose shape is outside their kernel surface are simply absent, leaving
    that step on the compiled SQL (the propagation pipeline mixes the two
    freely).  ``CompilerFlags.native_steps`` narrows the selection.
    """
    wanted = set(model.flags.native_steps)
    flags = model.flags
    steps: list[object] = []
    step1 = try_build_batched_step1(model, catalog) if 1 in wanted else None
    if step1 is not None:
        steps.append(step1)
    step2 = None
    if 2 in wanted:
        # One native step-2 form per materialization strategy; the
        # UNION-regroup and outer-merge forms are individually gated so
        # the SQL rebuilds stay selectable as baselines.
        if flags.strategy is MaterializationStrategy.LEFT_JOIN_UPSERT:
            step2 = _build_upsert_step(model)
        elif (
            flags.strategy is MaterializationStrategy.UNION_REGROUP
            and flags.native_union_step2
        ):
            step2 = _build_regroup_step(model)
        elif (
            flags.strategy is MaterializationStrategy.FULL_OUTER_JOIN
            and flags.native_foj_step2
        ):
            step2 = _build_outer_merge_step(model)
        if step2 is not None:
            steps.append(step2)
        if (
            model.minmax_columns()
            and flags.native_minmax_rescan
            and step1 is not None
        ):
            # Step 2b: the extrema state is fed source-level deltas by
            # the native step 1, so without one the SQL rescan stays.
            # (MIN/MAX forces LEFT_JOIN_UPSERT, so step2 is the upsert.)
            step2b = _build_rescan_step(model, dialect, step1)
            if step2b is not None:
                steps.append(step2b)
                step1.extrema_step = step2b
    if 3 in wanted:
        step3 = _build_liveness_step(model, dialect, step1)
        if step3 is not None:
            steps.append(step3)
            if step2 is not None and step3.liveness_ordinal is not None:
                # Step 2 has already grouped ΔV by key; hand the touched
                # keys to the stored-liveness test instead of re-reading.
                step2.liveness_step = step3
    if 4 in wanted:
        steps.append(NativeTruncateStep(tables=[model.delta_view_table]))
    if flags.shard_count > 1:
        # Replace the per-step pipeline with the single sharded refresh
        # step where the view shape supports it (join views on the
        # upsert strategy with a fully native pipeline); unsupported
        # shapes silently keep the per-step selection above, like every
        # other native fallback.  Imported here: core.sharded composes
        # the step classes of this module.
        from repro.core.sharded import try_build_sharded_refresh

        sharded = try_build_sharded_refresh(model, steps)
        if sharded is not None:
            return [sharded]
    return steps


def build_step2_variants(model: MVModel) -> dict:
    """Every interchangeable native step-2 kernel for ``model``, keyed by
    kind ("native-upsert" / "native-regroup" / "native-outer").

    The adaptive planner (:mod:`repro.core.adaptive`) offers these as
    per-refresh alternatives: all three fold the identical
    :func:`_column_folds` layout per key, so for key/additive/AVG views
    they produce byte-identical stored rows and can be swapped round by
    round.  MIN/MAX views get the upsert form alone — extremum folds
    and the step-2b retraction pairing exist only there.
    """
    if model.minmax_columns():
        return {"native-upsert": _build_upsert_step(model)}
    return {
        "native-upsert": _build_upsert_step(model),
        "native-regroup": _build_regroup_step(model),
        "native-outer": _build_outer_merge_step(model),
    }


def _column_folds(model: MVModel) -> tuple[list, list]:
    """(key positions in the ΔV row, per-mv-column fold specs) — the
    shared layout every native step-2 variant folds ΔV with."""
    delta_pos = {
        column.name: i for i, column in enumerate(model.delta_columns())
    }
    key_positions = [delta_pos[k.name] for k in model.key_columns()]
    folds: list[_ColumnFold] = []
    key_index = 0
    for ordinal, column in enumerate(model.columns):
        if column.role is ColumnRole.KEY:
            folds.append(
                _ColumnFold(
                    name=column.name, kind="key", stored_ordinal=ordinal,
                    key_index=key_index,
                )
            )
            key_index += 1
        elif column.role.is_additive:
            folds.append(
                _ColumnFold(
                    name=column.name, kind="additive", stored_ordinal=ordinal,
                    delta_pos=delta_pos[column.name],
                )
            )
        elif column.role.is_minmax:
            folds.append(
                _ColumnFold(
                    name=column.name,
                    kind="min" if column.role is ColumnRole.MIN else "max",
                    stored_ordinal=ordinal,
                    delta_pos=delta_pos[column.name],
                )
            )
        else:  # ColumnRole.AVG
            folds.append(
                _ColumnFold(
                    name=column.name, kind="avg", stored_ordinal=ordinal,
                    companion_sum=column.companion_sum,
                    companion_count=column.companion_count,
                )
            )
    return key_positions, folds


def _build_upsert_step(model: MVModel) -> NativeUpsertStep:
    key_positions, folds = _column_folds(model)
    return NativeUpsertStep(
        mv_table=model.mv_table,
        delta_view_table=model.delta_view_table,
        key_positions=key_positions,
        folds=folds,
    )


def _build_regroup_step(model: MVModel) -> NativeRegroupStep:
    key_positions, folds = _column_folds(model)
    delta_stored_ordinals = [
        ordinal
        for ordinal, column in enumerate(model.columns)
        if column.role is not ColumnRole.AVG
    ]
    return NativeRegroupStep(
        mv_table=model.mv_table,
        delta_view_table=model.delta_view_table,
        key_positions=key_positions,
        folds=folds,
        delta_stored_ordinals=delta_stored_ordinals,
    )


def _build_outer_merge_step(model: MVModel) -> NativeOuterMergeStep:
    key_positions, folds = _column_folds(model)
    return NativeOuterMergeStep(
        mv_table=model.mv_table,
        delta_view_table=model.delta_view_table,
        key_positions=key_positions,
        folds=folds,
    )


def _build_rescan_step(
    model: MVModel, dialect: Dialect, step1: BatchedDeltaStep
) -> NativeRescanStep | None:
    """The native step-2b rescan, or None when the view lacks the stored
    liveness column the dead-group handoff relies on (build_model always
    adds one for MIN/MAX views, so this is belt-and-braces)."""
    liveness = model.liveness_column()
    if liveness is None:
        return None
    liveness_ordinal = next(
        i for i, c in enumerate(model.columns) if c.name == liveness.name
    )
    keys = model.key_columns()
    key_is_const: list[bool] = []
    key_constants: list[Any] = []
    for key in keys:
        constant = _constant_value(key.expr)
        if constant is _NOT_CONSTANT:
            key_is_const.append(False)
            key_constants.append(None)
        else:
            key_is_const.append(True)
            key_constants.append(constant)
    analysis = model.analysis
    grouped_keys = [k for k, is_const in zip(keys, key_is_const) if not is_const]
    columns: list[_ExtremaColumn] = []
    sources: dict[int, _ExtremaSource] = {}
    for column in model.minmax_columns():
        value_ordinal = step1.aggregate_ordinals.get(column.name)
        if value_ordinal is None:
            return None  # MIN/MAX of nothing cannot occur; defensive
        stored_ordinal = next(
            i for i, c in enumerate(model.columns) if c.name == column.name
        )
        columns.append(
            _ExtremaColumn(
                name=column.name,
                stored_ordinal=stored_ordinal,
                value_ordinal=value_ordinal,
                want_max=(column.role is ColumnRole.MAX),
            )
        )
        if value_ordinal in sources:
            continue  # MIN and MAX of the same argument share one multiset
        # Seed: per-(group, value) multiplicities from the base tables —
        # SELECT keys..., arg, COUNT(*) FROM <sources> [WHERE p]
        # GROUP BY keys..., arg (constant keys are spliced in at load).
        items = [
            d.item(copy.deepcopy(k.expr), k.name) for k in grouped_keys
        ] + [
            d.item(copy.deepcopy(column.expr), "_duckdb_ivm_value"),
            d.item(d.agg("COUNT", None), "_duckdb_ivm_extrema"),
        ]
        select = d.select(
            items=items,
            from_clause=copy.deepcopy(analysis.query.from_clause),
            where=copy.deepcopy(analysis.where),
            group_by=[copy.deepcopy(k.expr) for k in grouped_keys]
            + [copy.deepcopy(column.expr)],
        )
        sources[value_ordinal] = _ExtremaSource(
            value_ordinal=value_ordinal,
            init_sql=d.emit(select, dialect),
        )
    return NativeRescanStep(
        mv_table=model.mv_table,
        columns=columns,
        sources=sources,
        liveness_ordinal=liveness_ordinal,
        key_is_const=key_is_const,
        key_constants=key_constants,
    )


def _build_liveness_step(
    model: MVModel, dialect: Dialect, step1: BatchedDeltaStep | None
) -> NativeLivenessStep | None:
    delta_pos = {
        column.name: i for i, column in enumerate(model.delta_columns())
    }
    key_positions = [delta_pos[k.name] for k in model.key_columns()]
    liveness = model.liveness_column()
    if liveness is not None:
        ordinal = next(
            i for i, c in enumerate(model.columns) if c.name == liveness.name
        )
        return NativeLivenessStep(
            mv_table=model.mv_table,
            delta_view_table=model.delta_view_table,
            key_positions=key_positions,
            liveness_ordinal=ordinal,
        )
    sums = model.paper_sum_columns()
    if not sums:
        return None  # no SQL step 3 exists either
    keys = model.key_columns()
    constants = [_constant_value(k.expr) for k in keys]
    if keys and all(c is not _NOT_CONSTANT for c in constants):
        # Scalar-aggregate sum-only view: its single row keeps the
        # paper's semantics, evaluated natively — the compiled
        # `sum = 0 AND ...` predicate over the stored row (same
        # three-valued comparison as the SQL DELETE).
        predicate = None
        for column in sums:
            ordinal = next(
                i for i, c in enumerate(model.columns) if c.name == column.name
            )
            clause = BoundBinary(
                op="=",
                left=BoundColumn(index=ordinal, type=column.type),
                right=BoundConstant(0),
            )
            predicate = (
                clause
                if predicate is None
                else BoundBinary(op="AND", left=predicate, right=clause)
            )
        return NativeLivenessStep(
            mv_table=model.mv_table,
            delta_view_table=model.delta_view_table,
            key_positions=key_positions,
            paper_predicate=compile_batch_expression(predicate),
            scalar_key=tuple(constants),
        )
    if any(c is not _NOT_CONSTANT for c in constants):
        # Mixed constant/computed keys: keep the SQL fallback.
        return None
    if step1 is None:
        # The exact counters are fed source-level count deltas by the
        # native step 1; without it (step 1 on SQL, or excluded by the
        # flags) the view keeps the paper's SQL fallback.
        return None
    analysis = model.analysis
    items = [
        d.item(copy.deepcopy(k.expr), k.name) for k in keys
    ] + [d.item(d.agg("COUNT", None), "_duckdb_ivm_liveness")]
    select = d.select(
        items=items,
        from_clause=copy.deepcopy(analysis.query.from_clause),
        where=copy.deepcopy(analysis.where),
        group_by=[copy.deepcopy(k.expr) for k in keys],
    )
    step3 = NativeLivenessStep(
        mv_table=model.mv_table,
        delta_view_table=model.delta_view_table,
        key_positions=key_positions,
        counters=GroupLivenessState(),
        init_count_sql=d.emit(select, dialect),
    )
    step1.liveness_step = step3
    return step3
