"""Vectorized delta propagation: the paper's step 1 as batch kernels.

The compiled propagation script computes ΔV with SQL — for join views a
three-term UNION whose ``A ⋈ ΔB`` / ``ΔA ⋈ B`` terms rescan a full base
side on every refresh.  This module executes the same step natively over
:class:`~repro.zset.batch.ZSetBatch` columns:

* delta tables are read columnarly (±1 weights from the boolean
  multiplicity column),
* join views probe a persistent :class:`~repro.zset.incremental.
  IndexedJoinState` — per-key ART-indexed integrated state on both sides —
  so propagation cost scales with |Δ|, not with |base|,
* the per-sign partial aggregates (SUM / COUNT / MIN / MAX per group and
  multiplicity) are folded by the weighted kernels of
  :mod:`repro.execution.aggregates`,
* the resulting rows are appended to the ΔV staging table, after which
  steps 2–4 of the compiled SQL script run unchanged.

Equivalence contract: the materialized view contents after a refresh are
identical to the SQL step-1 path, with two deliberate caveats:

* the transient ΔV *table* contents may differ when a batch contains
  exactly cancelling changes — the batch path consolidates them to
  nothing, the SQL path writes one row per sign; both fold to the same
  view and ΔV is cleared in step 4 either way;
* over *floating-point* SUM columns the two paths may round differently
  (the SQL path sums the insert and delete partitions separately, the
  batch path consolidates first), so a view relying on the paper's
  imprecise ``DELETE ... WHERE sum = 0`` liveness fallback can disagree
  about a group whose sum differs only by float residue.  The batch
  path's exact cancellation is the better answer; views with a COUNT(*)
  or hidden-count liveness column are unaffected.  Integer SUMs are
  always exact on both paths.

View shapes outside the kernel surface (WHERE clauses, computed key or
aggregate expressions, non-equi joins) return ``None`` from
:func:`try_build_batched_step1` and keep the SQL path — the emitted
scripts always contain the portable SQL regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.sql import ast
from repro.core.model import ColumnRole, MVModel
from repro.core.strategies import delta_column_plan
from repro.zset.batch import ZSetBatch
from repro.zset.incremental import IndexedJoinState
from repro.zset.operators import batch_aggregate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.connection import Connection


@dataclass
class _Source:
    """Column-resolution info for one base table feeding the view."""

    name: str
    alias: str
    ordinals: dict[str, int]  # lowercase column name -> ordinal
    offset: int  # ordinal offset in the combined (joined) row


class _Unsupported(Exception):
    """Internal: view shape outside the batched kernel surface."""


@dataclass
class BatchedDeltaStep:
    """Executable native form of propagation step 1 for one view."""

    model: MVModel
    delta_tables: list[str]
    # Key columns of the delta view, in model.key_columns() order: either a
    # source ordinal (into the combined row) or a constant value.
    key_ordinals: list[int | None]
    key_constants: list[Any]
    # Aggregate kernels for the non-key delta columns, in delta order:
    # (kernel name, combined-row ordinal or None for COUNT(*)).
    functions: list[tuple[str, int | None]]
    # Maps delta-view column positions to batch_aggregate output positions.
    output_permutation: list[int]
    # Join state (None for single-table views).
    join_left_key: list[int] = field(default_factory=list)
    join_right_key: list[int] = field(default_factory=list)
    state: IndexedJoinState | None = None
    refresh_rounds: int = 0

    @property
    def is_join(self) -> bool:
        return len(self.delta_tables) == 2

    # -- lifecycle ----------------------------------------------------------

    def initialize(self, connection: "Connection") -> None:
        """Build the indexed join state from the current base tables.

        Any rows already pending in the delta tables are rewound out, so
        the state always equals ``base − unconsumed ΔT`` — the integrated
        state as of the last refresh.
        """
        if not self.is_join:
            return
        left, right = self.model.analysis.tables
        state = IndexedJoinState(self.join_left_key, self.join_right_key)
        state.load_left(connection.table(left.name).scan())
        state.load_right(connection.table(right.name).scan())
        pending_left = connection.read_delta_batch(self.delta_tables[0])
        pending_right = connection.read_delta_batch(self.delta_tables[1])
        if len(pending_left) or len(pending_right):
            state.rewind(pending_left, pending_right)
        self.state = state

    # -- execution ----------------------------------------------------------

    def run(self, connection: "Connection") -> int:
        """Compute ΔV from the delta tables and append it to the ΔV table.

        Returns the number of ΔV rows written.
        """
        self.refresh_rounds += 1
        batches = [
            connection.read_delta_batch(name) for name in self.delta_tables
        ]
        if self.is_join:
            if self.state is None:
                raise RuntimeError(
                    "batched join step used before initialize()"
                )
            source = self.state.apply(batches[0], batches[1])
        else:
            source = batches[0]
        if len(source) == 0:
            return 0

        source = self._with_constant_keys(source)
        key_ordinals = [
            ordinal if ordinal is not None else self._const_ordinal(source, i)
            for i, ordinal in enumerate(self.key_ordinals)
        ]

        rows: list[tuple] = []
        positive, negative = source.split_signs()
        for partition, multiplicity in ((positive, True), (negative, False)):
            if len(partition) == 0:
                continue
            aggregated = batch_aggregate(
                partition, key_ordinals, self.functions
            )
            permuted = [
                aggregated.columns[j] for j in self.output_permutation
            ]
            for i in range(len(aggregated)):
                rows.append(
                    tuple(column[i] for column in permuted) + (multiplicity,)
                )
        if rows:
            connection.insert_rows(self.model.delta_view_table, rows)
        return len(rows)

    # -- helpers -------------------------------------------------------------

    def _with_constant_keys(self, source: ZSetBatch) -> ZSetBatch:
        """Append one materialized column per constant key (the hidden
        scalar-aggregate key is ``CAST(0 AS INTEGER)``)."""
        constants = [
            value
            for ordinal, value in zip(self.key_ordinals, self.key_constants)
            if ordinal is None
        ]
        if not constants:
            return source
        columns = list(source.columns)
        for value in constants:
            columns.append(np.full(len(source), value, dtype=object))
        return ZSetBatch(
            columns, source.weights, consolidated=source.is_consolidated
        )

    def _const_ordinal(self, source: ZSetBatch, key_index: int) -> int:
        """Ordinal of the materialized constant column for key ``key_index``
        (constant columns sit after the real ones, in key order)."""
        consts_before = sum(
            1 for ordinal in self.key_ordinals[:key_index] if ordinal is None
        )
        total_consts = sum(1 for ordinal in self.key_ordinals if ordinal is None)
        return source.arity - total_consts + consts_before


# ---------------------------------------------------------------------------
# Spec construction
# ---------------------------------------------------------------------------


def try_build_batched_step1(model: MVModel, catalog) -> BatchedDeltaStep | None:
    """A :class:`BatchedDeltaStep` for ``model``, or None when the view
    shape is outside the kernel surface (the caller keeps the SQL path)."""
    try:
        return _build(model, catalog)
    except _Unsupported:
        return None


def _build(model: MVModel, catalog) -> BatchedDeltaStep:
    analysis = model.analysis
    if analysis.where is not None:
        raise _Unsupported("WHERE clauses use the SQL path")
    if len(analysis.tables) > 2:
        raise _Unsupported("more than two base tables")

    sources: list[_Source] = []
    offset = 0
    for table in analysis.tables:
        schema = catalog.table(table.name).schema
        ordinals = {
            column.name.lower(): j for j, column in enumerate(schema.columns)
        }
        sources.append(
            _Source(
                name=table.name, alias=table.alias,
                ordinals=ordinals, offset=offset,
            )
        )
        offset += len(schema.columns)

    join_left_key: list[int] = []
    join_right_key: list[int] = []
    if len(sources) == 2:
        if analysis.join_condition is None:
            raise _Unsupported("join views need an equi-join condition")
        for left_ordinal, right_ordinal in _equi_key_pairs(
            analysis.join_condition, sources
        ):
            join_left_key.append(left_ordinal)
            join_right_key.append(right_ordinal)
        if not join_left_key:
            raise _Unsupported("no equi-join key pairs")

    key_ordinals: list[int | None] = []
    key_constants: list[Any] = []
    functions: list[tuple[str, int | None]] = []
    key_positions: dict[str, int] = {}
    agg_positions: dict[str, int] = {}
    for column, kind in delta_column_plan(model):
        if kind == "key":
            constant = _constant_value(column.expr)
            if constant is not _NOT_CONSTANT:
                key_ordinals.append(None)
                key_constants.append(constant)
            else:
                key_ordinals.append(_resolve_column(column.expr, sources))
                key_constants.append(None)
            key_positions[column.name] = len(key_ordinals) - 1
        else:
            functions.append(_aggregate_kernel(column, sources))
            agg_positions[column.name] = len(functions) - 1

    num_keys = len(key_ordinals)
    output_permutation = []
    for column in model.delta_columns():
        if column.role is ColumnRole.KEY:
            output_permutation.append(key_positions[column.name])
        else:
            output_permutation.append(num_keys + agg_positions[column.name])

    return BatchedDeltaStep(
        model=model,
        delta_tables=[
            model.flags.delta_table(table.name) for table in analysis.tables
        ],
        key_ordinals=key_ordinals,
        key_constants=key_constants,
        functions=functions,
        output_permutation=output_permutation,
        join_left_key=join_left_key,
        join_right_key=join_right_key,
    )


_NOT_CONSTANT = object()

_KERNELS = {
    ColumnRole.SUM: "SUM",
    ColumnRole.AVG_SUM: "SUM",
    ColumnRole.COUNT: "COUNT",
    ColumnRole.AVG_COUNT: "COUNT",
    ColumnRole.COUNT_STAR: "COUNT",
    ColumnRole.HIDDEN_COUNT: "COUNT",
    ColumnRole.MIN: "MIN",
    ColumnRole.MAX: "MAX",
}


def _aggregate_kernel(column, sources) -> tuple[str, int | None]:
    kernel = _KERNELS.get(column.role)
    if kernel is None:
        raise _Unsupported(f"no batch kernel for role {column.role}")
    if column.expr is None:
        return kernel, None
    return kernel, _resolve_column(column.expr, sources)


def _constant_value(expr: ast.Expression):
    """The literal value of a constant key expression (possibly CAST-
    wrapped), or the _NOT_CONSTANT sentinel."""
    node = expr
    while isinstance(node, ast.Cast):
        node = node.operand
    if isinstance(node, ast.Literal):
        return node.value
    return _NOT_CONSTANT


def _resolve_column(expr: ast.Expression, sources: list[_Source]) -> int:
    """Combined-row ordinal of a plain column reference."""
    if not isinstance(expr, ast.ColumnRef):
        raise _Unsupported(f"computed expression {type(expr).__name__}")
    name = expr.name.lower()
    if expr.table is not None:
        alias = expr.table.lower()
        for source in sources:
            if source.alias.lower() == alias:
                if name not in source.ordinals:
                    raise _Unsupported(f"unknown column {expr.name}")
                return source.offset + source.ordinals[name]
        raise _Unsupported(f"unknown alias {expr.table}")
    owners = [source for source in sources if name in source.ordinals]
    if len(owners) != 1:
        raise _Unsupported(f"ambiguous or unknown column {expr.name}")
    return owners[0].offset + owners[0].ordinals[name]


def _equi_key_pairs(
    condition: ast.Expression, sources: list[_Source]
) -> list[tuple[int, int]]:
    """(left_ordinal, right_ordinal) pairs from an AND-ed equality chain.

    Ordinals are relative to each side's own row (not the combined row).
    """
    pairs: list[tuple[int, int]] = []
    left_width = len(sources[0].ordinals)

    def visit(node: ast.Expression) -> None:
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            visit(node.left)
            visit(node.right)
            return
        if not (
            isinstance(node, ast.BinaryOp)
            and node.op == "="
            and isinstance(node.left, ast.ColumnRef)
            and isinstance(node.right, ast.ColumnRef)
        ):
            raise _Unsupported("non-equi join condition")
        a = _resolve_column(node.left, sources)
        b = _resolve_column(node.right, sources)
        if a < left_width <= b:
            pairs.append((a, b - left_width))
        elif b < left_width <= a:
            pairs.append((b, a - left_width))
        else:
            raise _Unsupported("join condition does not span both tables")

    visit(condition)
    return pairs
