"""Vectorized delta propagation: the paper's steps 1–4 as native kernels.

The compiled propagation script is a four-step SQL program (ΔV compute,
upsert into V, liveness delete, delta truncation).  This module provides
a native :class:`~repro.core.propagate.NativeStep` implementation of each
step, executing over :class:`~repro.zset.batch.ZSetBatch` columns instead
of row-at-a-time SQL:

* **step 1** (:class:`BatchedDeltaStep`): delta tables are read columnarly
  (±1 weights from the boolean multiplicity column); join views probe a
  persistent :class:`~repro.zset.incremental.IndexedJoinState` — per-key
  ART-indexed integrated state on both sides — so propagation cost scales
  with |Δ|, not with |base|; the per-sign partial aggregates are folded by
  the weighted kernels of :mod:`repro.execution.aggregates` and land in
  the ΔV staging table;
* **step 2** (:class:`NativeUpsertStep`): the signed collapse + upsert —
  ΔV is collapsed to one signed row per group and merged per key directly
  into the view's stored columns (``merge_additive`` / ``merge_minmax`` /
  ``derive_avg`` from :mod:`repro.execution.aggregates`).  MIN/MAX
  retraction is not invertible from the stored partials, so deletions are
  handled by the step-2b rescan, which stays on SQL (per-step fallback);
* **step 3** (:class:`NativeLivenessStep`): the liveness delete.  With a
  stored COUNT(*)/hidden-count column the test is the exact ``count <= 0``
  restricted to the keys the ΔV batch touched (the SQL form scans the
  whole view).  Without one, the step integrates each group's *weighted
  count* in a persistent :class:`~repro.zset.incremental.
  GroupLivenessState` and deletes on exact integer cancellation — fixing
  the float-residue caveat of the paper's ``DELETE ... WHERE sum = 0``
  fallback (which also deletes live groups whose values genuinely sum to
  zero; the native test matches the recompute specification in both
  cases);
* **step 4** (:class:`NativeTruncateStep`): in-memory truncation of the
  ΔV staging table (delta tables are truncated once per refresh closure
  by the extension, through the same ``Connection.truncate_table`` API).

Selection is *per step* (:func:`build_native_steps`): each step declares
the SQL statement labels it replaces, and any step whose shape falls
outside its kernel surface keeps the SQL form individually — a view with
a WHERE clause runs step 1 on SQL but steps 2–4 natively, a UNION-regroup
view runs step 2 on SQL but steps 3–4 natively, and so on.  The emitted
scripts always contain the full portable SQL regardless.

Equivalence contract: the materialized view contents after a refresh are
identical to the SQL path, with two deliberate caveats:

* the transient ΔV *table* contents may differ when a batch contains
  exactly cancelling changes — the batch path consolidates them to
  nothing, the SQL path writes one row per sign; both fold to the same
  view and ΔV is cleared in step 4 either way;
* for a view relying on the paper's imprecise ``DELETE ... WHERE sum = 0``
  liveness fallback, the native step 3 deletes by exact weighted-count
  cancellation instead of testing float sums.  The historical caveat —
  float residue making the two paths disagree about a group's existence —
  no longer applies to the native pipeline: group liveness is an integer
  on the native path, so a dead group is deleted even when its float sum
  carries residue, and a live group whose values genuinely sum to zero is
  kept.  Both are exactly the recompute answer; the pure-SQL script keeps
  the paper's behaviour as the portable fallback.  Integer SUM values are
  identical on both paths; float SUM *values* may still round differently
  (the two paths sum in different orders).

View shapes outside the step-1 kernel surface (WHERE clauses, computed
key or aggregate expressions, non-equi joins) return ``None`` from
:func:`try_build_batched_step1`.  Because the exact counters are fed by
the native step 1 (only the source rows carry count information for
sum-only views), such views — and scalar-aggregate views, whose single
group must follow the paper's semantics — keep the SQL step 3 as their
per-step fallback.
"""

from __future__ import annotations

import copy

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.sql import ast
from repro.sql.dialect import Dialect
from repro.core import duckast as d
from repro.core.flags import MaterializationStrategy
from repro.core.model import ColumnRole, MVModel
from repro.core.strategies import delta_column_plan
from repro.execution.aggregates import (
    derive_avg,
    grouped_minmax,
    grouped_weighted_sum,
    merge_additive,
    merge_minmax,
)
from repro.zset.batch import ZSetBatch
from repro.zset.incremental import GroupLivenessState, IndexedJoinState
from repro.zset.operators import batch_aggregate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.connection import Connection


@dataclass
class _Source:
    """Column-resolution info for one base table feeding the view."""

    name: str
    alias: str
    ordinals: dict[str, int]  # lowercase column name -> ordinal
    offset: int  # ordinal offset in the combined (joined) row


class _Unsupported(Exception):
    """Internal: view shape outside the batched kernel surface."""


@dataclass
class BatchedDeltaStep:
    """Executable native form of propagation step 1 for one view."""

    name = "step1"
    step_prefix = "step1:"

    model: MVModel
    delta_tables: list[str]
    # Key columns of the delta view, in model.key_columns() order: either a
    # source ordinal (into the combined row) or a constant value.
    key_ordinals: list[int | None]
    key_constants: list[Any]
    # Aggregate kernels for the non-key delta columns, in delta order:
    # (kernel name, combined-row ordinal or None for COUNT(*)).
    functions: list[tuple[str, int | None]]
    # Maps delta-view column positions to batch_aggregate output positions.
    output_permutation: list[int]
    # Join state (None for single-table views).
    join_left_key: list[int] = field(default_factory=list)
    join_right_key: list[int] = field(default_factory=list)
    state: IndexedJoinState | None = None
    refresh_rounds: int = 0
    # SQL statement labels this step replaces (assigned at plan assembly).
    replaces: frozenset = frozenset()
    # Wired when the view has no stored liveness column: this step is the
    # only place the *source-level* weighted counts per group are visible
    # (ΔV rows are group rows, one ±1 entry per sign — their weights do
    # not carry row multiplicities), so it feeds the liveness step's exact
    # counters as part of computing ΔV.
    liveness_step: "NativeLivenessStep | None" = None

    @property
    def is_join(self) -> bool:
        return len(self.delta_tables) == 2

    @property
    def requires_base_tables(self) -> bool:
        """Join views bulk-load the indexed state from the base tables, so
        they can only run where those tables are locally scannable (the
        HTAP pipeline keeps them on the attached OLTP side)."""
        return self.is_join

    # -- lifecycle ----------------------------------------------------------

    def initialize(self, connection: "Connection") -> None:
        """Build the indexed join state from the current base tables.

        Any rows already pending in the delta tables are rewound out, so
        the state always equals ``base − unconsumed ΔT`` — the integrated
        state as of the last refresh.
        """
        if not self.is_join:
            return
        left, right = self.model.analysis.tables
        state = IndexedJoinState(self.join_left_key, self.join_right_key)
        state.load_left(connection.table(left.name).scan())
        state.load_right(connection.table(right.name).scan())
        pending_left = connection.read_delta_batch(self.delta_tables[0])
        pending_right = connection.read_delta_batch(self.delta_tables[1])
        if len(pending_left) or len(pending_right):
            state.rewind(pending_left, pending_right)
        self.state = state

    # -- execution ----------------------------------------------------------

    def run(self, connection: "Connection") -> int:
        """Compute ΔV from the delta tables and append it to the ΔV table.

        Returns the number of ΔV rows written.
        """
        self.refresh_rounds += 1
        batches = [
            connection.read_delta_batch(name) for name in self.delta_tables
        ]
        if self.is_join:
            if self.state is None:
                raise RuntimeError(
                    "batched join step used before initialize()"
                )
            source = self.state.apply(batches[0], batches[1])
        else:
            source = batches[0]
        if len(source) == 0:
            return 0

        source = self._with_constant_keys(source)
        key_ordinals = [
            ordinal if ordinal is not None else self._const_ordinal(source, i)
            for i, ordinal in enumerate(self.key_ordinals)
        ]
        if self.liveness_step is not None:
            _, keys, net = source.group_structure(key_ordinals)
            self.liveness_step.absorb(keys, net)

        rows: list[tuple] = []
        positive, negative = source.split_signs()
        for partition, multiplicity in ((positive, True), (negative, False)):
            if len(partition) == 0:
                continue
            aggregated = batch_aggregate(
                partition, key_ordinals, self.functions
            )
            permuted = [
                aggregated.columns[j] for j in self.output_permutation
            ]
            for i in range(len(aggregated)):
                rows.append(
                    tuple(column[i] for column in permuted) + (multiplicity,)
                )
        if rows:
            connection.insert_rows(self.model.delta_view_table, rows)
        return len(rows)

    # -- helpers -------------------------------------------------------------

    def _with_constant_keys(self, source: ZSetBatch) -> ZSetBatch:
        """Append one materialized column per constant key (the hidden
        scalar-aggregate key is ``CAST(0 AS INTEGER)``)."""
        constants = [
            value
            for ordinal, value in zip(self.key_ordinals, self.key_constants)
            if ordinal is None
        ]
        if not constants:
            return source
        columns = list(source.columns)
        for value in constants:
            columns.append(np.full(len(source), value, dtype=object))
        return ZSetBatch(
            columns, source.weights, consolidated=source.is_consolidated
        )

    def _const_ordinal(self, source: ZSetBatch, key_index: int) -> int:
        """Ordinal of the materialized constant column for key ``key_index``
        (constant columns sit after the real ones, in key order)."""
        consts_before = sum(
            1 for ordinal in self.key_ordinals[:key_index] if ordinal is None
        )
        total_consts = sum(1 for ordinal in self.key_ordinals if ordinal is None)
        return source.arity - total_consts + consts_before


# ---------------------------------------------------------------------------
# Spec construction
# ---------------------------------------------------------------------------


def try_build_batched_step1(model: MVModel, catalog) -> BatchedDeltaStep | None:
    """A :class:`BatchedDeltaStep` for ``model``, or None when the view
    shape is outside the kernel surface (the caller keeps the SQL path)."""
    try:
        return _build(model, catalog)
    except _Unsupported:
        return None


def _build(model: MVModel, catalog) -> BatchedDeltaStep:
    analysis = model.analysis
    if analysis.where is not None:
        raise _Unsupported("WHERE clauses use the SQL path")
    if len(analysis.tables) > 2:
        raise _Unsupported("more than two base tables")

    sources: list[_Source] = []
    offset = 0
    for table in analysis.tables:
        schema = catalog.table(table.name).schema
        ordinals = {
            column.name.lower(): j for j, column in enumerate(schema.columns)
        }
        sources.append(
            _Source(
                name=table.name, alias=table.alias,
                ordinals=ordinals, offset=offset,
            )
        )
        offset += len(schema.columns)

    join_left_key: list[int] = []
    join_right_key: list[int] = []
    if len(sources) == 2:
        if analysis.join_condition is None:
            raise _Unsupported("join views need an equi-join condition")
        for left_ordinal, right_ordinal in _equi_key_pairs(
            analysis.join_condition, sources
        ):
            join_left_key.append(left_ordinal)
            join_right_key.append(right_ordinal)
        if not join_left_key:
            raise _Unsupported("no equi-join key pairs")

    key_ordinals: list[int | None] = []
    key_constants: list[Any] = []
    functions: list[tuple[str, int | None]] = []
    key_positions: dict[str, int] = {}
    agg_positions: dict[str, int] = {}
    for column, kind in delta_column_plan(model):
        if kind == "key":
            constant = _constant_value(column.expr)
            if constant is not _NOT_CONSTANT:
                key_ordinals.append(None)
                key_constants.append(constant)
            else:
                key_ordinals.append(_resolve_column(column.expr, sources))
                key_constants.append(None)
            key_positions[column.name] = len(key_ordinals) - 1
        else:
            functions.append(_aggregate_kernel(column, sources))
            agg_positions[column.name] = len(functions) - 1

    num_keys = len(key_ordinals)
    output_permutation = []
    for column in model.delta_columns():
        if column.role is ColumnRole.KEY:
            output_permutation.append(key_positions[column.name])
        else:
            output_permutation.append(num_keys + agg_positions[column.name])

    return BatchedDeltaStep(
        model=model,
        delta_tables=[
            model.flags.delta_table(table.name) for table in analysis.tables
        ],
        key_ordinals=key_ordinals,
        key_constants=key_constants,
        functions=functions,
        output_permutation=output_permutation,
        join_left_key=join_left_key,
        join_right_key=join_right_key,
    )


_NOT_CONSTANT = object()

_KERNELS = {
    ColumnRole.SUM: "SUM",
    ColumnRole.AVG_SUM: "SUM",
    ColumnRole.COUNT: "COUNT",
    ColumnRole.AVG_COUNT: "COUNT",
    ColumnRole.COUNT_STAR: "COUNT",
    ColumnRole.HIDDEN_COUNT: "COUNT",
    ColumnRole.MIN: "MIN",
    ColumnRole.MAX: "MAX",
}


def _aggregate_kernel(column, sources) -> tuple[str, int | None]:
    kernel = _KERNELS.get(column.role)
    if kernel is None:
        raise _Unsupported(f"no batch kernel for role {column.role}")
    if column.expr is None:
        return kernel, None
    return kernel, _resolve_column(column.expr, sources)


def _constant_value(expr: ast.Expression):
    """The literal value of a constant key expression (possibly CAST-
    wrapped), or the _NOT_CONSTANT sentinel."""
    node = expr
    while isinstance(node, ast.Cast):
        node = node.operand
    if isinstance(node, ast.Literal):
        return node.value
    return _NOT_CONSTANT


def _resolve_column(expr: ast.Expression, sources: list[_Source]) -> int:
    """Combined-row ordinal of a plain column reference."""
    if not isinstance(expr, ast.ColumnRef):
        raise _Unsupported(f"computed expression {type(expr).__name__}")
    name = expr.name.lower()
    if expr.table is not None:
        alias = expr.table.lower()
        for source in sources:
            if source.alias.lower() == alias:
                if name not in source.ordinals:
                    raise _Unsupported(f"unknown column {expr.name}")
                return source.offset + source.ordinals[name]
        raise _Unsupported(f"unknown alias {expr.table}")
    owners = [source for source in sources if name in source.ordinals]
    if len(owners) != 1:
        raise _Unsupported(f"ambiguous or unknown column {expr.name}")
    return owners[0].offset + owners[0].ordinals[name]


def _equi_key_pairs(
    condition: ast.Expression, sources: list[_Source]
) -> list[tuple[int, int]]:
    """(left_ordinal, right_ordinal) pairs from an AND-ed equality chain.

    Ordinals are relative to each side's own row (not the combined row).
    """
    pairs: list[tuple[int, int]] = []
    left_width = len(sources[0].ordinals)

    def visit(node: ast.Expression) -> None:
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            visit(node.left)
            visit(node.right)
            return
        if not (
            isinstance(node, ast.BinaryOp)
            and node.op == "="
            and isinstance(node.left, ast.ColumnRef)
            and isinstance(node.right, ast.ColumnRef)
        ):
            raise _Unsupported("non-equi join condition")
        a = _resolve_column(node.left, sources)
        b = _resolve_column(node.right, sources)
        if a < left_width <= b:
            pairs.append((a, b - left_width))
        elif b < left_width <= a:
            pairs.append((b, a - left_width))
        else:
            raise _Unsupported("join condition does not span both tables")

    visit(condition)
    return pairs


# ---------------------------------------------------------------------------
# Steps 2–4: signed-collapse upsert, liveness delete, delta truncation
# ---------------------------------------------------------------------------


@dataclass
class _ColumnFold:
    """How one stored view column combines with the collapsed ΔV batch."""

    name: str
    kind: str  # "key" | "additive" | "min" | "max" | "avg"
    stored_ordinal: int  # position in the mv row (model.columns order)
    key_index: int = -1  # for "key": index into the group key tuple
    delta_pos: int = -1  # for folds: column position in the ΔV row
    companion_sum: str = ""  # for "avg": names of the hidden companions
    companion_count: str = ""


@dataclass
class NativeUpsertStep:
    """Native step 2: collapse ΔV by sign and fold it into the view.

    The SQL form (Listing 2) builds a signed CTE over ΔV and LEFT-JOINs it
    against the stored table before an INSERT OR REPLACE; this step runs
    the same per-key merge directly: one vectorized signed collapse of the
    ΔV batch, then a point lookup + merge + upsert per touched group, so
    the cost tracks |ΔV|, never |V|.  MIN/MAX partials only tighten the
    stored extremum (insert side); retractions are repaired by the SQL
    step-2b rescan that follows.
    """

    name = "step2"
    step_prefix = "step2:"

    mv_table: str
    delta_view_table: str
    key_positions: list[int]  # key column positions in the ΔV row
    folds: list[_ColumnFold]  # one per mv column, in storage order
    replaces: frozenset = frozenset()
    requires_base_tables = False
    # Wired when the liveness step runs natively too: the touched keys are
    # already grouped here, so step 3 need not re-read and re-group ΔV.
    liveness_step: "NativeLivenessStep | None" = None

    def initialize(self, connection: "Connection") -> None:
        return None

    def run(self, connection: "Connection") -> int:
        batch = connection.read_delta_batch(self.delta_view_table)
        if len(batch) == 0:
            return 0
        ids, keys, _ = batch.group_structure(self.key_positions)
        if self.liveness_step is not None:
            self.liveness_step.absorb_keys(keys)
        num_groups = len(keys)
        positive = batch.weights > 0
        pos_ids = ids[positive]
        pos_weights = batch.weights[positive]

        collapsed: dict[int, list] = {}
        for fold in self.folds:
            if fold.kind == "additive":
                collapsed[fold.delta_pos] = grouped_weighted_sum(
                    ids, batch.columns[fold.delta_pos], batch.weights,
                    num_groups,
                )
            elif fold.kind in ("min", "max"):
                collapsed[fold.delta_pos] = grouped_minmax(
                    pos_ids, batch.columns[fold.delta_pos][positive],
                    pos_weights, num_groups, want_max=(fold.kind == "max"),
                )

        table = connection.table(self.mv_table)
        rows: list[tuple] = []
        for g, key in enumerate(keys):
            stored = table.pk_lookup(key)
            new: dict[str, Any] = {}
            for fold in self.folds:
                if fold.kind == "key":
                    new[fold.name] = key[fold.key_index]
                elif fold.kind == "additive":
                    new[fold.name] = merge_additive(
                        None if stored is None else stored[fold.stored_ordinal],
                        collapsed[fold.delta_pos][g],
                    )
                elif fold.kind in ("min", "max"):
                    new[fold.name] = merge_minmax(
                        None if stored is None else stored[fold.stored_ordinal],
                        collapsed[fold.delta_pos][g],
                        want_max=(fold.kind == "max"),
                    )
            for fold in self.folds:
                if fold.kind == "avg":
                    new[fold.name] = derive_avg(
                        new[fold.companion_sum], new[fold.companion_count]
                    )
            rows.append(tuple(new[fold.name] for fold in self.folds))
        connection.upsert_rows(self.mv_table, rows)
        return len(rows)


@dataclass
class NativeLivenessStep:
    """Native step 3: delete dead groups by exact integer cancellation.

    Only the groups the refresh touched can have died, so the step tests
    those keys alone (the SQL form scans the whole view).  With a stored
    liveness column the test is the exact ``count <= 0`` against the
    post-step-2 row of every key in the ΔV batch.  Without one, the ΔV
    rows carry no count at all (they are group rows, ±1 per sign), so the
    step is fed the *source-level* weighted counts by the native step 1
    (:attr:`BatchedDeltaStep.liveness_step`) and integrates them in a
    persistent :class:`~repro.zset.incremental.GroupLivenessState`,
    replacing the paper's imprecise ``DELETE ... WHERE sum = 0`` with
    exact integer cancellation.
    """

    name = "step3"
    step_prefix = "step3:"

    mv_table: str
    delta_view_table: str
    key_positions: list[int]
    liveness_ordinal: int | None = None  # stored-row ordinal, if stored
    counters: GroupLivenessState | None = None
    init_count_sql: str | None = None  # seeds the counters at CREATE time
    replaces: frozenset = frozenset()
    # Per-group count deltas pushed by the native step 1 this round.
    pending: list = field(default_factory=list)
    # Touched group keys pushed by the native step 2 this round (saves a
    # second ΔV read+group on the stored-liveness path).
    pending_keys: list = field(default_factory=list)

    @property
    def requires_base_tables(self) -> bool:
        # Counter seeding recomputes COUNT(*) per group from the bases.
        return self.counters is not None

    def initialize(self, connection: "Connection") -> None:
        if self.counters is None:
            return
        result = connection.execute(self.init_count_sql)
        self.counters.load(
            (tuple(row[:-1]), row[-1]) for row in result.rows
        )

    def absorb(self, keys: list, nets) -> None:
        """Receive one round of per-group weighted-count deltas (from the
        native step 1, which sees the source rows)."""
        self.pending.extend(zip(keys, (int(n) for n in nets)))

    def absorb_keys(self, keys: list) -> None:
        """Receive one round's touched group keys (from the native step 2,
        which has already grouped the ΔV batch)."""
        self.pending_keys.extend(keys)

    def run(self, connection: "Connection") -> int:
        if self.counters is not None:
            if not self.pending:
                return 0
            keys = [key for key, _ in self.pending]
            nets = [net for _, net in self.pending]
            self.pending.clear()
            dead = self.counters.apply(keys, nets)
        else:
            if self.pending_keys:
                keys = list(self.pending_keys)
                self.pending_keys.clear()
            else:
                batch = connection.read_delta_batch(self.delta_view_table)
                if len(batch) == 0:
                    return 0
                _, keys, _ = batch.group_structure(self.key_positions)
            table = connection.table(self.mv_table)
            dead = []
            for key in keys:
                stored = table.pk_lookup(key)
                if (
                    stored is not None
                    and stored[self.liveness_ordinal] <= 0
                ):
                    dead.append(key)
        if not dead:
            return 0
        return connection.delete_keys(self.mv_table, dead)


@dataclass
class NativeTruncateStep:
    """Native step 4: in-memory truncation of the ΔV staging table.

    The per-base ΔT tables are shared between views, so the refresh
    closure truncates them once at the end (through the same
    ``Connection.truncate_table`` API) rather than per view here.
    """

    name = "step4"
    step_prefix = "step4: clear delta view"

    tables: list[str]
    replaces: frozenset = frozenset()
    requires_base_tables = False

    def initialize(self, connection: "Connection") -> None:
        return None

    def run(self, connection: "Connection") -> int:
        return sum(connection.truncate_table(name) for name in self.tables)


def build_native_steps(
    model: MVModel, catalog, dialect: Dialect
) -> list[object]:
    """The native steps for ``model``, selected per step.

    Each returned step knows which SQL labels it replaces by prefix; steps
    whose shape is outside their kernel surface are simply absent, leaving
    that step on the compiled SQL (the propagation pipeline mixes the two
    freely).  ``CompilerFlags.native_steps`` narrows the selection.
    """
    wanted = set(model.flags.native_steps)
    steps: list[object] = []
    step1 = try_build_batched_step1(model, catalog) if 1 in wanted else None
    if step1 is not None:
        steps.append(step1)
    step2 = None
    if (
        2 in wanted
        and model.flags.strategy is MaterializationStrategy.LEFT_JOIN_UPSERT
    ):
        step2 = _build_upsert_step(model)
        steps.append(step2)
    if 3 in wanted:
        step3 = _build_liveness_step(model, dialect, step1)
        if step3 is not None:
            steps.append(step3)
            if step2 is not None and step3.counters is None:
                # Step 2 has already grouped ΔV by key; hand the touched
                # keys to the stored-liveness test instead of re-reading.
                step2.liveness_step = step3
    if 4 in wanted:
        steps.append(NativeTruncateStep(tables=[model.delta_view_table]))
    return steps


def _build_upsert_step(model: MVModel) -> NativeUpsertStep:
    delta_pos = {
        column.name: i for i, column in enumerate(model.delta_columns())
    }
    key_positions = [delta_pos[k.name] for k in model.key_columns()]
    folds: list[_ColumnFold] = []
    key_index = 0
    for ordinal, column in enumerate(model.columns):
        if column.role is ColumnRole.KEY:
            folds.append(
                _ColumnFold(
                    name=column.name, kind="key", stored_ordinal=ordinal,
                    key_index=key_index,
                )
            )
            key_index += 1
        elif column.role.is_additive:
            folds.append(
                _ColumnFold(
                    name=column.name, kind="additive", stored_ordinal=ordinal,
                    delta_pos=delta_pos[column.name],
                )
            )
        elif column.role.is_minmax:
            folds.append(
                _ColumnFold(
                    name=column.name,
                    kind="min" if column.role is ColumnRole.MIN else "max",
                    stored_ordinal=ordinal,
                    delta_pos=delta_pos[column.name],
                )
            )
        else:  # ColumnRole.AVG
            folds.append(
                _ColumnFold(
                    name=column.name, kind="avg", stored_ordinal=ordinal,
                    companion_sum=column.companion_sum,
                    companion_count=column.companion_count,
                )
            )
    return NativeUpsertStep(
        mv_table=model.mv_table,
        delta_view_table=model.delta_view_table,
        key_positions=key_positions,
        folds=folds,
    )


def _build_liveness_step(
    model: MVModel, dialect: Dialect, step1: BatchedDeltaStep | None
) -> NativeLivenessStep | None:
    delta_pos = {
        column.name: i for i, column in enumerate(model.delta_columns())
    }
    key_positions = [delta_pos[k.name] for k in model.key_columns()]
    liveness = model.liveness_column()
    if liveness is not None:
        ordinal = next(
            i for i, c in enumerate(model.columns) if c.name == liveness.name
        )
        return NativeLivenessStep(
            mv_table=model.mv_table,
            delta_view_table=model.delta_view_table,
            key_positions=key_positions,
            liveness_ordinal=ordinal,
        )
    if not model.paper_sum_columns():
        return None  # no SQL step 3 exists either
    if step1 is None:
        # The exact counters are fed source-level count deltas by the
        # native step 1; without it (step 1 on SQL, or excluded by the
        # flags) the view keeps the paper's SQL fallback.
        return None
    keys = model.key_columns()
    if any(_constant_value(k.expr) is not _NOT_CONSTANT for k in keys):
        # Scalar-aggregate views keep their single row under the paper's
        # semantics; leave step 3 on the SQL fallback.
        return None
    analysis = model.analysis
    items = [
        d.item(copy.deepcopy(k.expr), k.name) for k in keys
    ] + [d.item(d.agg("COUNT", None), "_duckdb_ivm_liveness")]
    select = d.select(
        items=items,
        from_clause=copy.deepcopy(analysis.query.from_clause),
        where=copy.deepcopy(analysis.where),
        group_by=[copy.deepcopy(k.expr) for k in keys],
    )
    step3 = NativeLivenessStep(
        mv_table=model.mv_table,
        delta_view_table=model.delta_view_table,
        key_positions=key_positions,
        counters=GroupLivenessState(),
        init_count_sql=d.emit(select, dialect),
    )
    step1.liveness_step = step3
    return step3
