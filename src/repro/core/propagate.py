"""Propagation-script assembly: the paper's post-processing steps 1–4.

    (1) Insertion in ΔV of the tuples resulting from querying ΔT.
    (2) Insertion or update in V of the newly-inserted tuples in ΔV,
        removing the multiplicity column.
    (3) Deletion of the invalid rows in V, e.g. the ones with SUM or COUNT
        equal to 0, or false multiplicity without aggregate.
    (4) Deletion from ΔT and ΔV after applying the changes.

Step 1 comes from the DBSP rewrite (:mod:`repro.core.rewrite`), step 2
from the selected materialization strategy
(:mod:`repro.core.strategies`); this module adds steps 3 and 4 and
assembles the labelled statement list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.dialect import Dialect
from repro.core import duckast as d
from repro.core.model import MVModel
from repro.core.rewrite import build_delta_view_insert
from repro.core.strategies import apply_strategy

Statement = tuple[str, str]

STEP1_LABEL = "step1: compute delta view from delta tables"


@dataclass
class PropagationPlan:
    """An executable propagation plan: the labelled SQL script plus, when
    the view shape supports it, the vectorized native form of step 1.

    Runners (the IVM extension's ``refresh``) execute ``batched_step1`` in
    place of the ``STEP1_LABEL`` statement when it is present; the SQL
    statement list is always complete, so the stored scripts stay portable
    and the SQL path remains available as the row-at-a-time baseline
    (``CompilerFlags.batch_kernels = False``).
    """

    statements: list[Statement]
    batched_step1: "object | None" = None  # BatchedDeltaStep, avoids cycle


def build_propagation_plan(
    model: MVModel, dialect: Dialect, catalog=None
) -> PropagationPlan:
    """The propagation plan: SQL script + optional batched step 1.

    The native step is attempted only when the compiler flags ask for
    batch kernels and a catalog is available to resolve column ordinals;
    unsupported view shapes silently keep the pure-SQL plan.
    """
    from repro.core.batched import try_build_batched_step1

    statements = build_propagation(model, dialect)
    batched = None
    if catalog is not None and model.flags.batch_kernels:
        batched = try_build_batched_step1(model, catalog)
    return PropagationPlan(statements=statements, batched_step1=batched)


def build_propagation(model: MVModel, dialect: Dialect) -> list[Statement]:
    """The full propagation script, in execution order, labelled by step."""
    statements: list[Statement] = [
        (STEP1_LABEL, build_delta_view_insert(model, dialect)),
    ]
    statements.extend(apply_strategy(model, dialect))
    invalid = _delete_invalid_rows(model, dialect)
    if invalid is not None:
        statements.append(("step3: delete invalid rows from view", invalid))
    for table in model.analysis.tables:
        statements.append(
            (f"step4: clear delta table {model.flags.delta_table(table.name)}",
             _clear(model.flags.delta_table(table.name), dialect))
        )
    statements.append(
        ("step4: clear delta view", _clear(model.delta_view_table, dialect))
    )
    return statements


def _delete_invalid_rows(model: MVModel, dialect: Dialect) -> str | None:
    """Step 3 — remove groups that no longer exist.

    With a liveness count (hidden COUNT(*) or a visible COUNT(*) column)
    the test is exact: ``count <= 0``.  Otherwise the paper's form is
    emitted — delete rows whose visible SUMs are all zero (Listing 2:
    ``DELETE FROM query_groups WHERE total_value = 0``), accepting the
    paper's known imprecision for groups whose values genuinely sum to 0.
    """
    quoted = dialect.quote_identifier
    liveness = model.liveness_column()
    if liveness is not None:
        return (
            f"DELETE FROM {quoted(model.mv_table)} "
            f"WHERE {quoted(liveness.name)} <= 0"
        )
    sums = model.paper_sum_columns()
    if not sums:
        return None
    predicate = " AND ".join(f"{quoted(c.name)} = 0" for c in sums)
    return f"DELETE FROM {quoted(model.mv_table)} WHERE {predicate}"


def clear_deltas(model: MVModel, dialect: Dialect) -> list[str]:
    """Step 4 — empty ΔT for every base table, then ΔV."""
    statements = [
        _clear(model.flags.delta_table(table.name), dialect)
        for table in model.analysis.tables
    ]
    statements.append(_clear(model.delta_view_table, dialect))
    return statements


def _clear(table: str, dialect: Dialect) -> str:
    quoted = dialect.quote_identifier
    if dialect.truncate_style == "truncate":
        return f"TRUNCATE {quoted(table)}"
    return f"DELETE FROM {quoted(table)}"
