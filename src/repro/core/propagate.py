"""Propagation-pipeline assembly: the paper's post-processing steps 1–4.

    (1) Insertion in ΔV of the tuples resulting from querying ΔT.
    (2) Insertion or update in V of the newly-inserted tuples in ΔV,
        removing the multiplicity column.
    (3) Deletion of the invalid rows in V, e.g. the ones with SUM or COUNT
        equal to 0, or false multiplicity without aggregate.
    (4) Deletion from ΔT and ΔV after applying the changes.

Step 1 comes from the DBSP rewrite (:mod:`repro.core.rewrite`), step 2
from the selected materialization strategy
(:mod:`repro.core.strategies`); this module adds steps 3 and 4,
assembles the labelled statement list, and pairs it with the typed
:class:`NativeStep` pipeline (:mod:`repro.core.batched`) that executes
individual steps on the vectorized Z-set kernels.  Selection is per
step: each native step declares the statement labels it replaces, and
:func:`run_pipeline` interleaves native execution with the remaining
SQL, so one view can run steps 1–2 natively and 3–4 in SQL (or any
other mix).  The SQL statement list is always complete — it is the
stored artifact and the portable row-at-a-time fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.sql.dialect import Dialect
from repro.core import duckast as d
from repro.core.batched import build_native_steps
from repro.core.model import MVModel
from repro.core.rewrite import build_delta_view_insert
from repro.core.strategies import apply_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.connection import Connection

Statement = tuple[str, str]

STEP1_LABEL = "step1: compute delta view from delta tables"


class NativeStep(Protocol):
    """One natively-executed stage of the propagation pipeline.

    Implementations live in :mod:`repro.core.batched` (steps 1–4 over the
    vectorized Z-set kernels).  A step is matched to the compiled SQL by
    label: every statement whose label starts with ``step_prefix`` is
    replaced by one ``run()`` call at the position of the first match
    (recorded in ``replaces`` at plan-assembly time).
    """

    name: str  # "step1" … "step4", for status reporting
    step_prefix: str  # label prefix of the SQL statements it subsumes
    replaces: frozenset  # exact labels replaced, set by the plan builder
    # True when the step must scan the base tables (initial state builds);
    # the HTAP pipeline excludes such steps because its bases live on the
    # attached OLTP side.
    requires_base_tables: bool

    def initialize(self, connection: "Connection") -> None:
        """One-time state construction at CREATE MATERIALIZED VIEW time."""

    def run(self, connection: "Connection") -> int:
        """Execute the step; returns a row count for diagnostics."""


@dataclass
class RefreshStats:
    """Per-view refresh counters, collected by :func:`run_pipeline` and
    the extension's refresh loop.

    ``last_*`` fields describe the most recent refresh round; totals
    accumulate across rounds.  ``last_rows_moved`` sums the row counts
    reported by the pipeline stages (native ``run()`` returns, SQL
    rowcounts) — a work measure, not a view-size delta.  The shard skew
    ratio is max shard load over mean shard load for the last sharded
    round (1.0 = perfectly balanced; 0.0 when unsharded or idle).

    With the adaptive planner (``CompilerFlags.adaptive``) the stats
    additionally carry the optimizer's audit trail: ``last_plan`` /
    ``last_signals`` describe the most recent decision, ``decisions``
    keeps the last N (``CompilerFlags.adaptive_history``) with their
    input signals, predicted cost, decision margin, and — once the
    round finishes — the observed wall seconds, and ``plan_switches``
    counts rounds whose chosen arm differed from the previous round's.
    """

    refreshes: int = 0
    last_wall_seconds: float = 0.0
    total_wall_seconds: float = 0.0
    last_step_seconds: dict = field(default_factory=dict)
    last_rows_in: int = 0
    last_rows_moved: int = 0
    last_shard_skew: float = 0.0
    # Adaptive-planner audit trail (empty / None when adaptive is off).
    last_plan: dict | None = None
    last_signals: dict | None = None
    decisions: list = field(default_factory=list)
    plan_switches: int = 0
    decision_history: int = 16
    # Robustness-runtime audit trail: structured events (degradation
    # ladder demote/heal, refresh failures, recompute fallbacks, shed
    # batches) appended by the extension, newest last, capped at
    # ``event_history``; ``degradation_rung`` mirrors the view ladder's
    # current rung; ``queue`` is the ingest queue's counter snapshot
    # (shared by every view of a connection; None when the queue is off).
    events: list = field(default_factory=list)
    event_history: int = 64
    degradation_rung: int = 0
    queue: dict | None = None
    # Cascade (view-over-view) observability: the view's depth in the
    # dependency DAG (0 = reads base tables only) and how many times an
    # upstream demote/recompute/failure invalidated this view and forced
    # it to recompute.
    dag_depth: int = 0
    upstream_invalidations: int = 0

    def begin_round(self) -> None:
        self.last_step_seconds = {}
        self.last_rows_moved = 0

    def add_step(self, name: str, seconds: float, rows: int = 0) -> None:
        self.last_step_seconds[name] = (
            self.last_step_seconds.get(name, 0.0) + seconds
        )
        self.last_rows_moved += int(rows)

    def finish_round(
        self, wall_seconds: float, rows_in: int, shard_skew: float
    ) -> None:
        self.refreshes += 1
        self.last_wall_seconds = wall_seconds
        self.total_wall_seconds += wall_seconds
        self.last_rows_in = int(rows_in)
        self.last_shard_skew = float(shard_skew)

    def record_decision(
        self,
        plan: dict,
        signals: dict,
        predicted_cost: float,
        margin: float,
        explored: bool,
        regime_shift: bool,
    ) -> None:
        """Log one adaptive-planner decision (before the round runs);
        :meth:`close_decision` fills in the observed wall time after."""
        if self.last_plan is not None and self.last_plan.get(
            "arm"
        ) != plan.get("arm"):
            self.plan_switches += 1
        self.last_plan = dict(plan)
        self.last_signals = dict(signals)
        self.decisions.append(
            {
                "plan": dict(plan),
                "signals": dict(signals),
                "predicted_cost": float(predicted_cost),
                "margin": float(margin),
                "explored": bool(explored),
                "regime_shift": bool(regime_shift),
                "wall_seconds": None,
            }
        )
        del self.decisions[: -self.decision_history]

    def close_decision(self, wall_seconds: float) -> None:
        """Attach the observed wall time to the last recorded decision."""
        if self.decisions:
            self.decisions[-1]["wall_seconds"] = float(wall_seconds)

    def record_event(self, kind: str, **detail) -> dict:
        """Append one structured robustness event (``demote``, ``heal``,
        ``refresh_failure``, ``recompute``, ``capture_failure``, ...) and
        return it.  The log is bounded at ``event_history`` entries."""
        event = {"kind": kind, "refresh_round": self.refreshes}
        event.update(detail)
        self.events.append(event)
        del self.events[: -self.event_history]
        return event

    def events_of(self, kind: str) -> list[dict]:
        """The recorded events of one kind, oldest first."""
        return [event for event in self.events if event["kind"] == kind]

    def snapshot(self) -> dict:
        """A JSON-shaped copy (what the benchmarks emit)."""
        return {
            "refreshes": self.refreshes,
            "last_wall_seconds": self.last_wall_seconds,
            "total_wall_seconds": self.total_wall_seconds,
            "last_step_seconds": dict(self.last_step_seconds),
            "last_rows_in": self.last_rows_in,
            "last_rows_moved": self.last_rows_moved,
            "last_shard_skew": self.last_shard_skew,
            "last_plan": None
            if self.last_plan is None
            else dict(self.last_plan),
            "last_signals": None
            if self.last_signals is None
            else dict(self.last_signals),
            "decisions": [dict(entry) for entry in self.decisions],
            "plan_switches": self.plan_switches,
            "events": [dict(event) for event in self.events],
            "degradation_rung": self.degradation_rung,
            "queue": None if self.queue is None else dict(self.queue),
            "dag_depth": self.dag_depth,
            "upstream_invalidations": self.upstream_invalidations,
        }


@dataclass
class PropagationPlan:
    """An executable propagation plan: the labelled SQL script plus the
    native steps covering whatever subset of it the kernels support.

    Runners (:func:`run_pipeline`) execute each native step in place of
    the SQL statements it replaces; the SQL statement list is always
    complete, so the stored scripts stay portable and the SQL path
    remains available as the row-at-a-time baseline
    (``CompilerFlags.batch_kernels = False``).
    """

    statements: list[Statement]
    native_steps: list[NativeStep] = field(default_factory=list)


def build_propagation_plan(
    model: MVModel, dialect: Dialect, catalog=None
) -> PropagationPlan:
    """The propagation plan: SQL script + per-step native pipeline.

    Native steps are attempted only when the compiler flags ask for batch
    kernels and a catalog is available to resolve column ordinals; any
    step whose shape the kernels don't cover silently keeps its SQL form
    (per-step fallback), and unsupported views keep the pure-SQL plan.
    """
    statements = build_propagation(model, dialect)
    native_steps: list[NativeStep] = []
    if catalog is not None and model.flags.batch_kernels:
        labels = [label for label, _ in statements]
        for step in build_native_steps(model, catalog, dialect):
            step.replaces = frozenset(
                label for label in labels
                if label.startswith(step.step_prefix)
            )
            if step.replaces:
                native_steps.append(step)
    return PropagationPlan(statements=statements, native_steps=native_steps)


def run_pipeline(
    connection: "Connection",
    statements,
    native_steps: list[NativeStep],
    execute: Callable,
    skip_label: Callable[[str], bool] | None = None,
    stats: RefreshStats | None = None,
) -> None:
    """Run a propagation plan with per-step native/SQL selection.

    Walks the labelled statements in script order; a statement whose
    label a native step claims is replaced by that step's ``run()`` (once,
    at the first claimed label — later labels of the same step are
    consumed silently), everything else goes through ``execute``.  Both
    the extension and the HTAP pipeline refresh through here, so the two
    runners cannot drift on step ordering.

    With ``stats``, each stage's wall time and reported row count are
    recorded under the step name (native) or the label's step prefix
    (SQL).
    """
    by_label: dict[str, NativeStep] = {}
    for step in native_steps:
        for label in step.replaces:
            by_label[label] = step
    ran: set[int] = set()
    for label, statement in statements:
        if skip_label is not None and skip_label(label):
            continue
        step = by_label.get(label)
        if step is None:
            started = time.perf_counter()
            result = execute(statement)
            if stats is not None:
                rows = getattr(result, "rowcount", 0) or 0
                stats.add_step(
                    label.split(":", 1)[0],
                    time.perf_counter() - started,
                    rows,
                )
        elif id(step) not in ran:
            ran.add(id(step))
            started = time.perf_counter()
            rows = step.run(connection)
            if stats is not None:
                stats.add_step(
                    step.name, time.perf_counter() - started, rows or 0
                )


def build_propagation(model: MVModel, dialect: Dialect) -> list[Statement]:
    """The full propagation script, in execution order, labelled by step."""
    statements: list[Statement] = [
        (STEP1_LABEL, build_delta_view_insert(model, dialect)),
    ]
    statements.extend(apply_strategy(model, dialect))
    invalid = _delete_invalid_rows(model, dialect)
    if invalid is not None:
        statements.append(("step3: delete invalid rows from view", invalid))
    for table in model.analysis.tables:
        delta_name = model.source_delta_table(table)
        statements.append(
            (f"step4: clear delta table {delta_name}",
             _clear(delta_name, dialect))
        )
    statements.append(
        ("step4: clear delta view", _clear(model.delta_view_table, dialect))
    )
    return statements


def _delete_invalid_rows(model: MVModel, dialect: Dialect) -> str | None:
    """Step 3 — remove groups that no longer exist.

    With a liveness count (hidden COUNT(*) or a visible COUNT(*) column)
    the test is exact: ``count <= 0``.  Otherwise the paper's form is
    emitted — delete rows whose visible SUMs are all zero (Listing 2:
    ``DELETE FROM query_groups WHERE total_value = 0``), accepting the
    paper's known imprecision for groups whose values genuinely sum to 0.
    """
    quoted = dialect.quote_identifier
    liveness = model.liveness_column()
    if liveness is not None:
        return (
            f"DELETE FROM {quoted(model.mv_table)} "
            f"WHERE {quoted(liveness.name)} <= 0"
        )
    sums = model.paper_sum_columns()
    if not sums:
        return None
    predicate = " AND ".join(f"{quoted(c.name)} = 0" for c in sums)
    return f"DELETE FROM {quoted(model.mv_table)} WHERE {predicate}"


def clear_deltas(model: MVModel, dialect: Dialect) -> list[str]:
    """Step 4 — empty ΔT for every source table, then ΔV."""
    statements = [
        _clear(model.source_delta_table(table), dialect)
        for table in model.analysis.tables
    ]
    statements.append(_clear(model.delta_view_table, dialect))
    return statements


def _clear(table: str, dialect: Dialect) -> str:
    quoted = dialect.quote_identifier
    if dialect.truncate_style == "truncate":
        return f"TRUNCATE {quoted(table)}"
    return f"DELETE FROM {quoted(table)}"
