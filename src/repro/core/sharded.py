"""Sharded parallel refresh: the whole propagation pipeline as one step.

The per-step pipeline of :mod:`repro.core.batched` runs strictly
serially over each view's single incremental state — one hot group-key
range bottlenecks the whole refresh.  This module partitions that state
by key hash into N shards (:func:`repro.zset.incremental.shard_of` over
the memcomparable encoding of :mod:`repro.storage.keys`) and replaces
the four-step script with a single :class:`ShardedRefresh` NativeStep
whose ``step_prefix`` ``"step"`` claims every statement label, so
``run_pipeline`` needs no new plumbing.

One refresh round runs in three phases:

1. **delta compute** (step 1): the captured ΔT batches are routed to
   shards by join-key hash; each shard probes and integrates its own
   pair of side ARTs and carries the round through filter, computed
   columns, and per-sign aggregation.  Shards run on a
   ``ThreadPoolExecutor`` when ``CompilerFlags.parallel_refresh`` is on.
   A merge barrier concatenates the per-shard ΔV contributions — kept
   in memory, never staged through the ΔV table (the equivalence
   contract in :mod:`repro.core.batched` already lets transient ΔV
   contents differ; step 4 clears it regardless).
2. **fold** (steps 2 / 2b / 3): ΔV entries and the source-level
   liveness/extrema feeds are re-routed by *group*-key hash; each shard
   folds its groups against the stored view rows (reads only), decides
   step 3 deletions from the folded liveness, and repairs
   retraction-touched MIN/MAX columns from its slice of the sharded
   extrema state.
3. **merge** (barrier before step 4): the calling thread applies the
   combined upserts and deletes in one pass, then truncates the ΔV
   staging table.  All view-table writes happen here, single-threaded,
   which is what lets the fold workers read the table lock-free and the
   snapshot pin (``storage/table.py``) treat the refresher as a single
   owner thread.

On a single-core GIL build the executor adds no wall-clock parallelism;
the sharded path still beats the per-step pipeline because routing
groups every delta by key first, so each distinct key pays one encoding
and one ART descent instead of one per row (see
``ShardedJoinState.apply_shard``), and because ΔV skips the staging
round-trip.  Free-threaded builds get the shard-level parallelism on
top.

Views outside the supported shape — single-table views, non-upsert
strategies, paper-mode liveness, shapes whose step 1 falls back to SQL
— silently keep the per-step pipeline (``try_build_sharded_refresh``
returns None), exactly like every other native-step fallback.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import WorkerTimeoutError

from repro.core.batched import (
    BatchedDeltaStep,
    NativeLivenessStep,
    NativeRescanStep,
    NativeUpsertStep,
    _derive_avg_folds,
)
from repro.core.model import MVModel
from repro.execution.aggregates import (
    grouped_minmax,
    grouped_weighted_sum,
    merge_additive,
    merge_minmax,
)
from repro.execution.expression import batch_eval, true_mask
from repro.storage.keys import encode_key
from repro.zset.batch import ZSetBatch
from repro.zset.incremental import (
    ShardedExtremaState,
    ShardedJoinState,
    ShardedLivenessState,
    shard_of,
)
from repro.zset.operators import batch_aggregate, batch_filter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.connection import Connection


class _StaleRoundError(Exception):
    """A worker from an abandoned round token-fenced itself off before
    mutating shard state.  Only ever raised on an abandoned pool's
    future, whose result nobody reads."""


def try_build_sharded_refresh(
    model: MVModel, steps: list
) -> "ShardedRefresh | None":
    """A :class:`ShardedRefresh` composed from the per-step pipeline, or
    None when the view shape is outside the sharded surface.

    Requirements: a native join step 1 (deltas must be routable by join
    key and the side state swappable), the upsert step 2 (the only
    strategy whose fold is a per-key merge rather than a table rebuild),
    a non-paper-mode step 3, step 4, and — for MIN/MAX views — the
    native step 2b (the sharded fold repairs retractions from the
    extrema state, so the SQL rescan must not be needed).
    """
    by_name: dict[str, Any] = {}
    for step in steps:
        by_name.setdefault(step.name, step)
    step1 = by_name.get("step1")
    step2 = by_name.get("step2")
    step2b = by_name.get("step2b")
    step3 = by_name.get("step3")
    if not isinstance(step1, BatchedDeltaStep) or not step1.is_join:
        return None
    if not isinstance(step2, NativeUpsertStep):
        return None
    if (
        not isinstance(step3, NativeLivenessStep)
        or step3.paper_predicate is not None
    ):
        return None
    if by_name.get("step4") is None:
        return None
    if model.minmax_columns() and not isinstance(step2b, NativeRescanStep):
        return None
    flags = model.flags
    return ShardedRefresh(
        model=model,
        step1=step1,
        step2=step2,
        step3=step3,
        step2b=step2b if isinstance(step2b, NativeRescanStep) else None,
        shard_count=flags.shard_count,
        parallel=flags.parallel_refresh,
    )


@dataclass
class ShardedRefresh:
    """The full 4-step refresh over hash-partitioned incremental state.

    Composes the already-built per-step objects: their *specs* (fold
    layouts, key ordinals, extrema columns, seeding SQL) drive the
    sharded execution; their ``run()`` methods are never called.  Their
    three ART states are swapped for the sharded wrappers of
    :mod:`repro.zset.incremental` before ``initialize`` seeds them.
    """

    name = "sharded"
    # Claims every "stepN:..." label of the compiled script, replacing
    # the whole SQL program with one run() call.
    step_prefix = "step"
    # Seeds join/extrema/liveness state from base-table scans (and is
    # thereby excluded from the HTAP pipeline, whose bases are remote).
    requires_base_tables = True

    model: MVModel
    step1: BatchedDeltaStep
    step2: NativeUpsertStep
    step3: NativeLivenessStep
    step2b: NativeRescanStep | None = None
    shard_count: int = 2
    parallel: bool = True
    replaces: frozenset = frozenset()
    # Diagnostics for RefreshStats: step-1 delta rows routed per shard
    # last round, ΔT rows consumed, and per-phase wall seconds.
    last_shard_loads: list = field(default_factory=list)
    last_rows_in: int = 0
    last_step_seconds: dict = field(default_factory=dict)
    _pool: Any = field(default=None, repr=False, compare=False)
    # Mutation-token fencing (see _map): the round token is bumped to
    # invalidate stragglers from a timed-out attempt; _mutated records
    # which shards touched their state this round (retry barrier).
    _token: int = field(default=0, repr=False, compare=False)
    _round_lock: Any = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _mutated: set = field(default_factory=set, repr=False, compare=False)

    # -- lifecycle ----------------------------------------------------------

    def set_parallel(self, parallel: bool) -> None:
        """Adaptive-planner hook: choose pooled vs serial shard execution
        for the next ``run()``.  Free to flip per refresh — the routing,
        folds and merge barrier are identical either way, only the
        executor changes (the pool is created lazily and kept)."""
        self.parallel = bool(parallel)

    def prepare_states(self) -> None:
        """Swap the composed steps' state slots for the sharded wrappers
        (without seeding them) — shared by :meth:`initialize` and the
        checkpoint-restore path, which loads dumped images instead of
        recomputing from the base tables."""
        count = self.shard_count
        self.step1.state_factory = lambda left, right: ShardedJoinState(
            left, right, shard_count=count
        )
        if self.step2b is not None:
            for source in self.step2b.sources.values():
                source.state = ShardedExtremaState(count)
        if self.step3.counters is not None:
            self.step3.counters = ShardedLivenessState(count)

    def initialize(self, connection: "Connection") -> None:
        self.prepare_states()
        self.step1.initialize(connection)
        if self.step2b is not None:
            self.step2b.initialize(connection)
        self.step3.initialize(connection)

    # -- execution ----------------------------------------------------------

    def run(self, connection: "Connection") -> int:
        step_seconds: dict[str, float] = {}
        started = time.perf_counter()
        delta_view = self._compute_delta_view(connection)
        step_seconds["step1"] = time.perf_counter() - started

        started = time.perf_counter()
        upserts, dead = self._fold(connection, delta_view)
        step_seconds["fold"] = time.perf_counter() - started

        started = time.perf_counter()
        written = 0
        if upserts:
            written += connection.upsert_rows(self.step2.mv_table, upserts)
        if dead:
            written += connection.delete_keys(self.step2.mv_table, dead)
        connection.truncate_table(self.model.delta_view_table)
        step_seconds["merge"] = time.perf_counter() - started
        self.last_step_seconds = step_seconds
        return written

    def _map(self, fn) -> list:
        """Run ``fn(shard, token)`` for every shard — on the worker pool
        with a barrier when parallel, else serially on the calling
        thread — with per-attempt timeouts and bounded retry.

        The retry protocol is built on mutation tokens: each ``_map``
        round takes a fresh generation token; workers must pass it to
        :meth:`_begin_mutation` immediately before their first
        shard-state write.  That gives three guarantees:

        * **Safe retries.**  Only shards that never reached
          ``_begin_mutation`` are retried (with exponential backoff,
          ``worker_backoff * 2**(attempt-1)``), so a transient failure
          injected or raised *before* the state write replays without
          double-applying deltas.  A shard that failed or hung *after*
          mutating poisons the round — the error propagates and the
          caller's degradation ladder / recompute self-heal takes over.
        * **Fenced stragglers.**  When an attempt exceeds
          ``CompilerFlags.worker_timeout``, the token is bumped under
          the round lock and the pool is abandoned
          (``shutdown(wait=False, cancel_futures=True)``); a hung
          worker that later wakes sees the stale token inside
          ``_begin_mutation`` and aborts *before* touching shard state.
          The retry runs on a fresh pool.
        * **No leaked threads behind a rollback.**  Every raise out of
          this method first bumps the token and abandons the pool, so a
          failed parallel refresh cannot leave futures running that
          mutate shard state while the caller unwinds and reseeds.
        """
        count = self.shard_count
        flags = self.model.flags
        retries = int(getattr(flags, "worker_retries", 0))
        backoff = float(getattr(flags, "worker_backoff", 0.0))
        timeout = float(getattr(flags, "worker_timeout", 0.0)) or None

        with self._round_lock:
            self._token += 1
            token = self._token
            self._mutated = set()

        results: list = [None] * count
        pending = list(range(count))
        last_error: Exception | None = None
        for attempt in range(retries + 1):
            if attempt and backoff > 0:
                time.sleep(backoff * (2 ** (attempt - 1)))
            if self.parallel and count > 1:
                failures, hung = self._run_parallel(
                    fn, pending, token, results, timeout
                )
            else:
                failures, hung = self._run_serial(fn, pending, token, results)
            if not failures and not hung:
                return results
            if hung:
                with self._round_lock:
                    self._token += 1
                    token = self._token
                    mutated = set(self._mutated)
                self._abandon_pool()
                stuck = sorted(s for s in hung if s in mutated)
                if stuck:
                    raise WorkerTimeoutError(
                        f"shard worker(s) {stuck} exceeded "
                        f"worker_timeout={flags.worker_timeout}s after "
                        "mutating shard state; the round cannot be retried",
                        shards=tuple(stuck),
                    )
            else:
                with self._round_lock:
                    mutated = set(self._mutated)
            for s in sorted(failures):
                error = failures[s]
                if s in mutated or not getattr(error, "retryable", True):
                    self._fence_and_abandon()
                    raise error
                last_error = error
            pending = sorted(set(failures) | set(hung))
        self._fence_and_abandon()
        if last_error is not None:
            raise last_error
        raise WorkerTimeoutError(
            f"shard worker(s) {pending} still unresponsive after "
            f"{retries} retries (worker_timeout="
            f"{flags.worker_timeout}s per attempt)",
            shards=tuple(pending),
        )

    def _run_parallel(
        self, fn, shards: list, token: int, results: list, timeout
    ) -> tuple[dict, list]:
        """One pooled attempt over ``shards``.  Returns
        ``(failures: {shard: exc}, hung: [shard])``; successful shards
        write straight into ``results``."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.shard_count, thread_name_prefix="ivm-shard"
            )
        futures = {
            self._pool.submit(self._attempt, fn, s, token): s for s in shards
        }
        done, not_done = wait(futures, timeout=timeout)
        failures: dict = {}
        for future in done:
            shard = futures[future]
            error = future.exception()
            if error is not None:
                failures[shard] = error
            else:
                results[shard] = future.result()
        return failures, [futures[future] for future in not_done]

    def _run_serial(
        self, fn, shards: list, token: int, results: list
    ) -> tuple[dict, list]:
        """One serial attempt (no pool, so nothing can hang the caller;
        the timeout only applies to pooled attempts)."""
        failures: dict = {}
        for shard in shards:
            try:
                results[shard] = self._attempt(fn, shard, token)
            except Exception as error:  # collected for the retry loop
                failures[shard] = error
        return failures, []

    def _attempt(self, fn, shard: int, token: int):
        """Worker entry: consult the fault plan (the ``shard.compute``
        site fires *before* any state mutation, so injected errors and
        latency are always retry-safe), then run the phase function."""
        plan = getattr(self.model.flags, "fault_plan", None)
        if plan is not None:
            plan.check("shard.compute", shard=shard)
        return fn(shard, token)

    def _begin_mutation(self, shard: int, token: int) -> None:
        """Called by a worker immediately before its first shard-state
        write.  A stale token means the round was abandoned while this
        worker hung — abort without mutating (the raise surfaces only
        on the abandoned pool's future, which nobody reads)."""
        with self._round_lock:
            if token != self._token:
                raise _StaleRoundError(
                    f"shard {shard} worker outlived its refresh round"
                )
            self._mutated.add(shard)

    def _fence_and_abandon(self) -> None:
        """Invalidate outstanding workers and drop the pool — the
        failure path of a refresh round (see _map's contract)."""
        with self._round_lock:
            self._token += 1
        self._abandon_pool()

    def _abandon_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- phase 1: sharded delta compute --------------------------------------

    def _compute_delta_view(self, connection: "Connection") -> ZSetBatch:
        s1 = self.step1
        s1.refresh_rounds += 1
        batches = [
            connection.read_delta_batch(name) for name in s1.delta_tables
        ]
        self.last_rows_in = sum(len(batch) for batch in batches)
        state = s1.state
        parts_left = state.route_left(batches[0])
        parts_right = state.route_right(batches[1])

        def shard_delta(shard: int, token: int):
            return self._shard_delta(
                connection, shard, token, parts_left[shard], parts_right[shard]
            )

        shard_sources = self._map(shard_delta)
        self.last_shard_loads = list(state.last_shard_loads)

        # Merge barrier: feed the liveness/extrema pendings (drained and
        # re-routed by group key in the fold phase) and aggregate each
        # shard's contribution into the in-memory ΔV batch.
        parts: list[ZSetBatch] = []
        for source in shard_sources:
            if source is None or len(source) == 0:
                continue
            if s1.liveness_step is not None:
                _, keys, net = source.group_structure(s1.key_ordinals)
                s1.liveness_step.absorb(keys, net)
            if s1.extrema_step is not None:
                s1.extrema_step.absorb(source, s1.key_ordinals)
            positive, negative = source.split_signs()
            for partition, sign in ((positive, 1), (negative, -1)):
                if len(partition) == 0:
                    continue
                aggregated = batch_aggregate(
                    partition, s1.key_ordinals, s1.functions
                )
                columns = [
                    aggregated.columns[j] for j in s1.output_permutation
                ]
                weights = np.full(len(aggregated), sign, dtype=np.int64)
                parts.append(ZSetBatch(columns, weights))
        delta_view = ZSetBatch.empty(len(s1.output_permutation))
        for part in parts:
            delta_view = delta_view + part
        return delta_view

    def _shard_delta(
        self,
        connection: "Connection",
        shard: int,
        token: int,
        dl_groups: dict,
        dr_groups: dict,
    ) -> ZSetBatch | None:
        """One shard's consolidated source-level ΔV contribution (join →
        filter → computed columns) from its routed, key-grouped delta
        entries.  Runs on a worker thread; touches only shard-local
        state and read-only catalog metadata."""
        s1 = self.step1
        self._begin_mutation(shard, token)
        source = s1.state.apply_shard(shard, dl_groups, dr_groups)
        ctx = None
        if s1.where_eval is not None and len(source):
            ctx = s1._context(connection)
            source = batch_filter(
                source,
                mask=true_mask(batch_eval(s1.where_eval, source, ctx)),
            )
        if len(source) == 0:
            return None
        source = s1._with_computed_columns(source, connection, ctx)
        return source.consolidate()

    # -- phase 2: sharded fold (steps 2 / 2b / 3) ----------------------------

    def _fold(
        self, connection: "Connection", delta_view: ZSetBatch
    ) -> tuple[list[tuple], list[tuple]]:
        s2, s3, s2b = self.step2, self.step3, self.step2b
        count = self.shard_count

        # Drain the step-1 feeds and re-route them by group-key hash so
        # every fold worker owns a disjoint slice of the shared states.
        live_parts = None
        if s3.counters is not None and s3.pending:
            keys = [key for key, _ in s3.pending]
            nets = [net for _, net in s3.pending]
            s3.pending.clear()
            live_parts = s3.counters.route(keys, nets)
        extrema_parts: dict[int, list] = {}
        touched_parts: list[set] = [set() for _ in range(count)]
        if s2b is not None:
            for ordinal, extrema in s2b.sources.items():
                flat_keys: list[tuple] = []
                flat_values: list = []
                flat_nets: list[int] = []
                for gv_keys, nets in extrema.pending:
                    for gv, net in zip(gv_keys, nets):
                        flat_keys.append(gv[:-1])
                        flat_values.append(gv[-1])
                        flat_nets.append(int(net))
                extrema.pending.clear()
                extrema_parts[ordinal] = extrema.state.route(
                    flat_keys, flat_values, flat_nets
                )
            for key in s2b.pending_touched:
                touched_parts[shard_of(encode_key(key), count)].add(key)
            s2b.pending_touched.clear()
        # Step 2's absorb_keys handoff is unused here (the fold decides
        # liveness in place); drop anything a previous SQL round left.
        s3.pending_keys.clear()

        if len(delta_view) == 0 and live_parts is None and not extrema_parts:
            return [], []

        # Route ΔV entries by group-key hash.
        if len(delta_view):
            ids, keys, _ = delta_view.group_structure(s2.key_positions)
            shard_per_group = np.empty(len(keys), dtype=np.int64)
            for g, key in enumerate(keys):
                shard_per_group[g] = shard_of(encode_key(key), count)
            entry_shards = shard_per_group[ids]
            delta_parts = [
                delta_view.mask(entry_shards == i) for i in range(count)
            ]
        else:
            delta_parts = [delta_view for _ in range(count)]

        def fold(shard: int, token: int):
            return self._shard_fold(
                connection,
                shard,
                token,
                delta_parts[shard],
                None if live_parts is None else live_parts[shard],
                {
                    ordinal: parts[shard]
                    for ordinal, parts in extrema_parts.items()
                },
                touched_parts[shard],
            )

        results = self._map(fold)
        upserts: list[tuple] = []
        dead: list[tuple] = []
        for shard_rows, shard_dead in results:
            upserts.extend(shard_rows)
            dead.extend(shard_dead)
        return upserts, dead

    def _shard_fold(
        self,
        connection: "Connection",
        shard: int,
        token: int,
        batch: ZSetBatch,
        live_part,
        extrema_part: dict,
        touched: set,
    ) -> tuple[list[tuple], list[tuple]]:
        """Fold one shard's ΔV slice into merged view rows (no writes).

        Mirrors ``NativeUpsertStep.run`` group by group, with steps 2b
        and 3 folded into the row decision: retraction-touched MIN/MAX
        columns take the authoritative extremum from the shard's extrema
        state, and groups whose folded liveness dropped to zero become
        deletions instead of upserts (the unsharded pipeline upserts the
        dead row and deletes it one step later — same final view).
        """
        s2, s3, s2b = self.step2, self.step3, self.step2b

        dead_from_counters: set = set()
        if live_part is not None:
            part_keys, part_nets = live_part
            if part_keys:
                self._begin_mutation(shard, token)
                dead_from_counters = set(
                    s3.counters.apply_shard(shard, part_keys, part_nets)
                )
        if s2b is not None:
            for ordinal, (e_keys, e_values, e_nets) in extrema_part.items():
                if e_keys:
                    self._begin_mutation(shard, token)
                    s2b.sources[ordinal].state.apply_shard(
                        shard, e_keys, e_values, e_nets
                    )

        rows: list[tuple] = []
        dead: list[tuple] = []
        if len(batch) == 0:
            dead.extend(dead_from_counters)
            return rows, dead

        ids, keys, _ = batch.group_structure(s2.key_positions)
        num_groups = len(keys)
        positive = batch.weights > 0
        pos_ids = ids[positive]
        pos_weights = batch.weights[positive]
        collapsed: dict[int, list] = {}
        for fold in s2.folds:
            if fold.kind == "additive":
                collapsed[fold.delta_pos] = grouped_weighted_sum(
                    ids, batch.columns[fold.delta_pos], batch.weights,
                    num_groups,
                )
            elif fold.kind in ("min", "max"):
                collapsed[fold.delta_pos] = grouped_minmax(
                    pos_ids, batch.columns[fold.delta_pos][positive],
                    pos_weights, num_groups, want_max=(fold.kind == "max"),
                )

        table = connection.table(s2.mv_table)
        liveness_ordinal = s3.liveness_ordinal
        seen: set = set()
        for g, key in enumerate(keys):
            seen.add(key)
            stored = table.pk_lookup(key)
            new: dict[str, Any] = {}
            for fold in s2.folds:
                if fold.kind == "key":
                    new[fold.name] = key[fold.key_index]
                elif fold.kind == "additive":
                    new[fold.name] = merge_additive(
                        None if stored is None else stored[fold.stored_ordinal],
                        collapsed[fold.delta_pos][g],
                    )
                elif fold.kind in ("min", "max"):
                    new[fold.name] = merge_minmax(
                        None if stored is None else stored[fold.stored_ordinal],
                        collapsed[fold.delta_pos][g],
                        want_max=(fold.kind == "max"),
                    )
            _derive_avg_folds(s2.folds, new)
            row = [new[fold.name] for fold in s2.folds]
            if liveness_ordinal is not None:
                count_value = row[liveness_ordinal]
                if count_value is not None and count_value <= 0:
                    dead.append(key)
                    continue
            elif s3.counters is not None and key in dead_from_counters:
                dead.append(key)
                continue
            if s2b is not None and key in touched:
                for column in s2b.columns:
                    state = s2b.sources[column.value_ordinal].state
                    row[column.stored_ordinal] = state.extremum(
                        key, column.want_max
                    )
            rows.append(tuple(row))

        # Parity with the standalone rescan: touched groups without a ΔV
        # entry this round (cannot normally occur — every retraction
        # leaves a negative ΔV row — but cheap to keep exact).
        if s2b is not None:
            for key in touched:
                if key in seen:
                    continue
                stored = table.pk_lookup(key)
                if stored is None or stored[s2b.liveness_ordinal] <= 0:
                    continue
                row = list(stored)
                changed = False
                for column in s2b.columns:
                    state = s2b.sources[column.value_ordinal].state
                    value = state.extremum(key, column.want_max)
                    if row[column.stored_ordinal] != value:
                        row[column.stored_ordinal] = value
                        changed = True
                if changed:
                    rows.append(tuple(row))
        dead.extend(key for key in dead_from_counters if key not in seen)
        return rows, dead
