"""Deterministic, seedable fault injection for the robustness runtime.

A :class:`FaultPlan` is attached to :class:`~repro.core.flags.
CompilerFlags` (``flags.fault_plan``) and consulted at four named sites
on the write/refresh path:

========================  ===================================================
site                      instrumented in
========================  ===================================================
``wal.append``            :meth:`repro.storage.wal.WriteAheadLog.append`
``checkpoint.write``      :meth:`repro.storage.checkpoint.DurabilityManager.
                          checkpoint`
``shard.compute``         :meth:`repro.core.sharded.ShardedRefresh._map`
                          (worker entry, before any shard-state mutation)
``queue.enqueue``         :meth:`repro.core.runtime.IngestQueue.enqueue`
========================  ===================================================

Each :class:`FaultSpec` describes one scheduled fault: the site it fires
at, the kind (``error`` raises :class:`~repro.errors.FaultInjectedError`,
``latency`` sleeps, ``torn`` asks the caller to perform a partial write
before failing), a per-visit probability, and firing-count bounds
(``after`` skips the first N visits, ``times`` caps total firings).

Determinism: every spec owns its own ``random.Random`` seeded from the
plan seed, the site name, and the spec's position, so a plan replays the
identical fault schedule for the identical sequence of site visits —
regardless of wall time or interleaving of *other* sites.  Counters are
guarded by a lock because ``shard.compute`` fires on worker threads.

The chaos oracle (``tests/properties/test_chaos_oracle.py``) drives 200+
randomized DML steps under such schedules and checks every view still
converges to the full-recompute ground truth.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import FaultInjectedError, IVMError

KINDS = ("error", "latency", "torn")
SITES = ("wal.append", "checkpoint.write", "shard.compute", "queue.enqueue")


@dataclass
class FaultSpec:
    """One scheduled fault at one site.

    ``probability`` is evaluated per *eligible* visit (those past
    ``after`` and below ``times`` firings); ``times=None`` means
    unbounded.  ``latency`` seconds are slept for the ``latency`` kind
    (use together with ``CompilerFlags.worker_timeout`` to exercise the
    timeout path).  ``retryable`` is carried on the raised
    :class:`~repro.errors.FaultInjectedError` for the ``error`` kind.
    """

    site: str
    kind: str = "error"
    probability: float = 1.0
    times: int | None = None
    after: int = 0
    latency: float = 0.0
    retryable: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise IVMError(
                f"fault kind must be one of {KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise IVMError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.times is not None and self.times < 0:
            raise IVMError(f"fault times must be >= 0, got {self.times}")
        if self.after < 0:
            raise IVMError(f"fault after must be >= 0, got {self.after}")
        if self.latency < 0:
            raise IVMError(f"fault latency must be >= 0, got {self.latency}")


@dataclass
class _SpecState:
    """Runtime bookkeeping for one spec (visits seen, times fired)."""

    spec: FaultSpec
    rng: random.Random
    visits: int = 0
    fired: int = 0


class TornWrite:
    """Directive returned by :meth:`FaultPlan.check` for ``torn`` faults:
    the caller should persist only ``fraction`` of the payload bytes and
    then raise the attached error — simulating a crash mid-write that
    the recovery path must tolerate."""

    def __init__(self, site: str, fraction: float, retryable: bool) -> None:
        self.site = site
        self.fraction = fraction
        self.error = FaultInjectedError(site, retryable, detail="torn write")

    def cut(self, payload: bytes) -> bytes:
        return payload[: max(1, int(len(payload) * self.fraction))]


class FaultPlan:
    """A deterministic schedule of injected faults across named sites."""

    def __init__(self, seed: int = 0, specs: tuple | list = ()) -> None:
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._states: list[_SpecState] = []
        self._sleep = time.sleep
        for index, spec in enumerate(specs):
            self.add(spec, _index=index)

    def add(self, spec: FaultSpec, _index: int | None = None) -> "FaultPlan":
        """Register one spec; chainable.  The spec's RNG is seeded from
        (plan seed, site, registration index) so schedules replay."""
        index = len(self._states) if _index is None else _index
        rng = random.Random(f"{self.seed}:{spec.site}:{index}")
        with self._lock:
            self._states.append(_SpecState(spec=spec, rng=rng))
        return self

    # -- firing ----------------------------------------------------------

    def check(self, site: str, **detail) -> TornWrite | None:
        """Consult the plan at ``site``.

        ``error`` faults raise :class:`~repro.errors.FaultInjectedError`
        here; ``latency`` faults sleep here and return None; ``torn``
        faults return a :class:`TornWrite` directive for the caller to
        apply.  At most one spec fires per visit (first match wins);
        every matching spec's visit counter advances either way.
        """
        chosen: FaultSpec | None = None
        with self._lock:
            for state in self._states:
                spec = state.spec
                if spec.site != site:
                    continue
                state.visits += 1
                if chosen is not None:
                    continue
                if state.visits <= spec.after:
                    continue
                if spec.times is not None and state.fired >= spec.times:
                    continue
                if spec.probability < 1.0 and (
                    state.rng.random() >= spec.probability
                ):
                    continue
                state.fired += 1
                chosen = spec
        if chosen is None:
            return None
        if chosen.kind == "latency":
            self._sleep(chosen.latency)
            return None
        if chosen.kind == "torn":
            return TornWrite(site, fraction=0.5, retryable=chosen.retryable)
        raise FaultInjectedError(
            site, chosen.retryable, detail=_describe(detail)
        )

    # -- diagnostics -----------------------------------------------------

    def fired(self, site: str | None = None) -> int:
        """Total firings, optionally restricted to one site."""
        with self._lock:
            return sum(
                state.fired
                for state in self._states
                if site is None or state.spec.site == site
            )

    def visits(self, site: str | None = None) -> int:
        """Total eligible-site visits, optionally restricted to one site.
        Multiple specs on the same site count each visit once per spec."""
        with self._lock:
            return sum(
                state.visits
                for state in self._states
                if site is None or state.spec.site == site
            )

    def snapshot(self) -> list[dict]:
        """Per-spec (site, kind, visits, fired) — for health reports."""
        with self._lock:
            return [
                {
                    "site": state.spec.site,
                    "kind": state.spec.kind,
                    "visits": state.visits,
                    "fired": state.fired,
                }
                for state in self._states
            ]


def _describe(detail: dict) -> str:
    return ", ".join(f"{key}={value}" for key, value in sorted(detail.items()))
