"""DDL generation: delta tables, the materialized table, indexes, metadata.

Paper §1: "Our implementation takes in input a database schema and view
definition, and generates from there the DDL to create delta tables,
possibly intermediate tables and index structures."  And §2: "Internally,
we store materialized views as tables and save their additional
properties – query plan, SQL string, query type – in metadata tables."
"""

from __future__ import annotations

from repro.datatypes.types import BOOLEAN, DataType
from repro.datatypes.values import sql_format_literal
from repro.sql.dialect import Dialect
from repro.storage.table import Table
from repro.core.model import MVModel

# Name of the metadata table (one per database, created lazily).
METADATA_TABLE = "_duckdb_ivm_views"


def render_create_table(
    name: str,
    columns: list[tuple[str, DataType]],
    dialect: Dialect,
    primary_key: list[str] | None = None,
    if_not_exists: bool = False,
) -> str:
    """Render a CREATE TABLE statement in ``dialect``."""
    quoted = dialect.quote_identifier
    pieces = [
        f"{quoted(col_name)} {dialect.type_name(col_type)}"
        for col_name, col_type in columns
    ]
    if primary_key:
        keys = ", ".join(quoted(k) for k in primary_key)
        pieces.append(f"PRIMARY KEY ({keys})")
    exists = "IF NOT EXISTS " if if_not_exists else ""
    body = ", ".join(pieces)
    return f"CREATE TABLE {exists}{quoted(name)} ({body})"


def delta_table_ddl(
    model: MVModel, table: Table, dialect: Dialect, name: str | None = None
) -> str:
    """ΔT for one source table: its columns plus the multiplicity column.

    Emitted with IF NOT EXISTS because several views over the same
    source share one delta table.  ``name`` overrides the default
    ``delta_<table>`` — the compiler passes the cascade-feed name
    (``delta_<view>__out``) when the source is itself a materialized
    view, whose stored columns (hidden ones included) the feed mirrors.
    """
    columns = [(c.name, c.type) for c in table.schema.columns]
    columns.append((model.multiplicity, BOOLEAN))
    return render_create_table(
        name or model.flags.delta_table(table.schema.name),
        columns,
        dialect,
        if_not_exists=True,
    )


def matview_table_ddl(model: MVModel, dialect: Dialect) -> str:
    """The table materializing V, keyed on the view keys.

    The PRIMARY KEY materializes the upsert index (the engine's ART); the
    paper: "aggregation ... allows building an index on the materialized
    aggregation table (using the GROUP BY columns as keys)".
    """
    columns = [(c.name, c.type) for c in model.columns]
    keys = [c.name for c in model.key_columns()]
    return render_create_table(model.mv_table, columns, dialect, primary_key=keys)


def delta_view_table_ddl(model: MVModel, dialect: Dialect) -> str:
    """ΔV staging table: delta columns plus the multiplicity column."""
    columns = [(c.name, c.type) for c in model.delta_columns()]
    columns.append((model.multiplicity, BOOLEAN))
    return render_create_table(model.delta_view_table, columns, dialect)


def key_index_ddl(model: MVModel, dialect: Dialect) -> str:
    """Optional explicit unique index on the view keys (PostgreSQL upserts
    resolve conflicts against a named unique index)."""
    quoted = dialect.quote_identifier
    keys = ", ".join(quoted(c.name) for c in model.key_columns())
    index_name = f"{model.mv_table}__ivm_key_idx"
    return (
        f"CREATE UNIQUE INDEX IF NOT EXISTS {quoted(index_name)} "
        f"ON {quoted(model.mv_table)} ({keys})"
    )


def metadata_ddl(dialect: Dialect) -> str:
    """The metadata table holding each view's SQL string and properties."""
    from repro.datatypes.types import VARCHAR

    return render_create_table(
        METADATA_TABLE,
        [
            ("view_name", VARCHAR),
            ("view_sql", VARCHAR),
            ("view_class", VARCHAR),
            ("strategy", VARCHAR),
            ("mode", VARCHAR),
        ],
        dialect,
        primary_key=["view_name"],
        if_not_exists=True,
    )


def metadata_insert(model: MVModel, view_sql: str, dialect: Dialect) -> str:
    quoted = dialect.quote_identifier
    values = ", ".join(
        sql_format_literal(v)
        for v in (
            model.view_name,
            view_sql,
            model.analysis.view_class.value,
            model.flags.strategy.value,
            model.flags.mode.value,
        )
    )
    return f"INSERT INTO {quoted(METADATA_TABLE)} VALUES ({values})"
