"""The OpenIVM compiler: view definition in, SQL scripts out.

This is the paper's Figure 1: "a SQL-to-SQL compiler wrapped around
DuckDB" — it links the embedded engine as a library for parsing, binding
and planning, and emits plain SQL that any system speaking the target
dialect can run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import IVMError
from repro.sql import ast
from repro.sql.dialect import Dialect, dialect_by_name
from repro.sql.parser import parse_one, parse_script
from repro.sql.render import render_select
from repro.core.analyze import ViewAnalysis, ViewClass, analyze_view
from repro.core.ddl import (
    delta_table_ddl,
    delta_view_table_ddl,
    key_index_ddl,
    matview_table_ddl,
    metadata_ddl,
    metadata_insert,
)
from repro.core.flags import CompilerFlags
from repro.core.model import MVModel, build_model
from repro.core.propagate import build_propagation_plan, clear_deltas
from repro.core import duckast as d
from repro.core.strategies import recompute_item

import copy


@dataclass
class CompiledView:
    """Everything the compiler produces for one materialized view."""

    name: str
    view_class: ViewClass
    model: MVModel
    dialect: Dialect
    view_sql: str
    # CREATE statements: delta tables, mv table, delta-view table,
    # optional key index, metadata table + row.
    ddl: list[str] = field(default_factory=list)
    # Initial load of the materialized table from the base tables.
    populate: str = ""
    # The propagation script — the paper's steps 1–4, labelled.
    propagation: list[tuple[str, str]] = field(default_factory=list)
    # Native vectorized pipeline steps (empty when batch_kernels is off);
    # each covers the SQL statements it replaces, per step, and the SQL
    # in ``propagation`` is always complete regardless.
    native_steps: list = field(default_factory=list)

    @property
    def delta_tables(self) -> dict[str, str]:
        """source table → delta table the view reads it through (the
        shared base ΔT, or the upstream cascade feed for view sources)."""
        return {
            t.name: self.model.source_delta_table(t)
            for t in self.model.analysis.tables
        }

    @property
    def view_sources(self) -> list[str]:
        """Names of sources that are themselves materialized views."""
        return [t.name for t in self.model.analysis.tables if t.is_view]

    @property
    def delta_view_table(self) -> str:
        return self.model.delta_view_table

    def propagation_sql(self) -> list[str]:
        return [sql for _, sql in self.propagation]

    def setup_sql(self) -> list[str]:
        return list(self.ddl) + [self.populate]

    def script(self) -> str:
        """The full compiled output as one annotated SQL script.

        This is what the extension stores on disk: "We store the SQL
        scripts that propagate the contents of the delta tables to the
        materialized view table on the disk to allow future inspection
        and usage."
        """
        lines = [
            f"-- OpenIVM compiled output for materialized view {self.name!r}",
            f"-- class={self.view_class.value} "
            f"strategy={self.model.flags.strategy.value} "
            f"dialect={self.dialect.name}",
            "",
            "-- setup: delta tables, materialized table, metadata",
        ]
        for statement in self.ddl:
            lines.append(statement + ";")
        lines.append("")
        lines.append("-- initial population")
        lines.append(self.populate + ";")
        lines.append("")
        lines.append("-- propagation script (run after base-table changes)")
        for label, statement in self.propagation:
            lines.append(f"-- {label}")
            lines.append(statement + ";")
        return "\n".join(lines)


class OpenIVMCompiler:
    """Compile ``CREATE MATERIALIZED VIEW`` definitions into IVM SQL."""

    def __init__(
        self,
        catalog: Catalog,
        flags: CompilerFlags | None = None,
        known_views: set[str] | None = None,
    ) -> None:
        self.catalog = catalog
        self.flags = flags or CompilerFlags()
        # Lower-cased names of already-materialized views: sources found
        # here compile against the upstream's cascade feed instead of a
        # base ΔT (CompilerFlags.cascade_views).
        self.known_views = {v.lower() for v in (known_views or set())}

    @classmethod
    def from_schema(
        cls, schema_sql: str, flags: CompilerFlags | None = None
    ) -> "OpenIVMCompiler":
        """Build a compiler from DDL text (paper: "takes in input a
        database schema and view definition")."""
        from repro.engine.connection import Connection

        scratch = Connection()
        scratch.execute(schema_sql)
        return cls(scratch.catalog, flags)

    def compile(self, create_view_sql: str) -> CompiledView:
        """Compile a full ``CREATE MATERIALIZED VIEW name AS SELECT ...``."""
        statement = parse_one(create_view_sql, allow_materialized=True)
        if not isinstance(statement, ast.CreateView):
            raise IVMError("expected a CREATE MATERIALIZED VIEW statement")
        return self.compile_query(statement.name, statement.query)

    def compile_query(self, name: str, query: ast.Select) -> CompiledView:
        from repro.errors import UnsupportedError

        dialect = dialect_by_name(self.flags.dialect)
        analysis = analyze_view(name, query, self.catalog)
        analysis.sql = render_select(query, dialect)
        for source in analysis.tables:
            if source.name.lower() in self.known_views:
                if not self.flags.cascade_views:
                    raise UnsupportedError(
                        f"view {name} reads materialized view "
                        f"{source.name}; set cascade_views=True to allow "
                        "view-over-view definitions"
                    )
                source.is_view = True
        if analysis.subquery_tables and not self.flags.subquery_snapshot:
            raise UnsupportedError(
                "subqueries in view WHERE require subquery_snapshot=True"
            )
        model = build_model(analysis, self.flags)

        ddl: list[str] = [metadata_ddl(dialect)]
        for source in analysis.tables:
            ddl.append(
                delta_table_ddl(
                    model,
                    self.catalog.table(source.name),
                    dialect,
                    name=model.source_delta_table(source),
                )
            )
        ddl.append(matview_table_ddl(model, dialect))
        ddl.append(delta_view_table_ddl(model, dialect))
        emit_index = self.flags.emit_key_index
        if emit_index is None:
            emit_index = dialect.emit_key_index
        if emit_index:
            ddl.append(key_index_ddl(model, dialect))
        ddl.append(metadata_insert(model, analysis.sql, dialect))

        populate = self._populate_sql(model, dialect)
        plan = build_propagation_plan(model, dialect, self.catalog)
        return CompiledView(
            name=name,
            view_class=analysis.view_class,
            model=model,
            dialect=dialect,
            view_sql=analysis.sql,
            ddl=ddl,
            populate=populate,
            propagation=plan.statements,
            native_steps=plan.native_steps,
        )

    # -- initial population ------------------------------------------------

    def _populate_sql(self, model: MVModel, dialect: Dialect) -> str:
        """INSERT INTO mv SELECT <full state> FROM base tables.

        Projection/join views group by all visible columns to fill the
        hidden bag count; aggregate views group by their keys and compute
        every visible and hidden aggregate.
        """
        analysis = model.analysis
        items = [recompute_item(column) for column in model.columns]
        group_by = [copy.deepcopy(k.expr) for k in model.key_columns()]
        select = d.select(
            items=items,
            from_clause=copy.deepcopy(analysis.query.from_clause),
            where=copy.deepcopy(analysis.where),
            group_by=group_by,
        )
        quoted = dialect.quote_identifier
        return f"INSERT INTO {quoted(model.mv_table)} {d.emit(select, dialect)}"
