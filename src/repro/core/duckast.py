"""DuckAST: the compiler's intermediate tree and its building blocks.

The paper: "our approach transforms a DuckDB logical plan into a simpler
abstract tree (DuckAST), which is then rewritten to a string in the
desired SQL dialect, chosen through a flag" (following LinkedIn's Coral).
Here the abstract tree *is* the engine-independent statement AST of
:mod:`repro.sql.ast`; this module provides the constructors the rewrite
rules use to assemble it, and the leaf-substitution / re-qualification
transforms ("we substitute bindings at the leaves such that the query is
executed against the changes rather than the original table").

Emission to a dialect string is :func:`emit` (a thin wrapper over the
dialect-aware renderer).
"""

from __future__ import annotations

import copy
from typing import Iterable

from repro.errors import IVMError
from repro.sql import ast
from repro.sql.dialect import Dialect
from repro.sql.render import render_expression, render_select


# -- constructors ----------------------------------------------------------


def col(name: str, table: str | None = None) -> ast.ColumnRef:
    return ast.ColumnRef(name=name, table=table)


def lit(value) -> ast.Literal:
    return ast.Literal(value)


def eq(left: ast.Expression, right: ast.Expression) -> ast.BinaryOp:
    return ast.BinaryOp(op="=", left=left, right=right)


def neq(left: ast.Expression, right: ast.Expression) -> ast.BinaryOp:
    return ast.BinaryOp(op="<>", left=left, right=right)


def conj(clauses: Iterable[ast.Expression]) -> ast.Expression:
    """AND together one or more clauses."""
    merged: ast.Expression | None = None
    for clause in clauses:
        merged = clause if merged is None else ast.BinaryOp("AND", merged, clause)
    if merged is None:
        raise IVMError("empty conjunction")
    return merged


def fn(name: str, *args: ast.Expression) -> ast.FunctionCall:
    return ast.FunctionCall(name=name, args=list(args))


def agg(name: str, arg: ast.Expression | None) -> ast.FunctionCall:
    if arg is None:
        return ast.FunctionCall(name=name, args=[ast.Star()])
    return ast.FunctionCall(name=name, args=[arg])


def coalesce(*args: ast.Expression) -> ast.FunctionCall:
    return fn("COALESCE", *args)


def add(left: ast.Expression, right: ast.Expression) -> ast.BinaryOp:
    return ast.BinaryOp(op="+", left=left, right=right)


def neg(expr: ast.Expression) -> ast.UnaryOp:
    return ast.UnaryOp(op="-", operand=expr)


def signed_by_multiplicity(value: ast.Expression, mult: ast.Expression) -> ast.Case:
    """``CASE WHEN mult = FALSE THEN -value ELSE value END`` — the signed
    combination from Listing 2."""
    return ast.Case(
        operand=None,
        branches=[(eq(mult, lit(False)), neg(value))],
        else_result=value,
    )


def only_inserts(value: ast.Expression, mult: ast.Expression) -> ast.Case:
    """``CASE WHEN mult = TRUE THEN value END`` — NULL for deletions, used
    by the MIN/MAX insert path."""
    return ast.Case(
        operand=None,
        branches=[(eq(mult, lit(True)), value)],
        else_result=None,
    )


def item(expr: ast.Expression, alias: str | None = None) -> ast.SelectItem:
    return ast.SelectItem(expr=expr, alias=alias)


def base_table(name: str, alias: str | None = None) -> ast.BaseTableRef:
    return ast.BaseTableRef(name=name, alias=alias)


def select(
    items: list[ast.SelectItem],
    from_clause: ast.TableRef | None = None,
    where: ast.Expression | None = None,
    group_by: list[ast.Expression] | None = None,
    ctes: list[ast.CommonTableExpr] | None = None,
) -> ast.Select:
    return ast.Select(
        items=items,
        from_clause=from_clause,
        where=where,
        group_by=list(group_by or []),
        ctes=list(ctes or []),
    )


# -- leaf substitution and re-qualification ---------------------------------


def substitute_table(
    expr_or_ref, old_name: str, new_name: str
):
    """Rename base-table leaves ``old_name`` → ``new_name`` in a FROM tree.

    The alias is preserved (or set to the old name when absent) so that
    qualified column references in the rest of the query keep resolving —
    this is the compiler's "substitute bindings at the leaves" step.
    """
    ref = copy.deepcopy(expr_or_ref)

    def visit(node: ast.TableRef) -> ast.TableRef:
        if isinstance(node, ast.BaseTableRef):
            if node.name.lower() == old_name.lower():
                alias = node.alias or node.name
                return ast.BaseTableRef(name=new_name, alias=alias)
            return node
        if isinstance(node, ast.JoinRef):
            node.left = visit(node.left)
            node.right = visit(node.right)
            return node
        return node

    return visit(ref)


class SourceNamespace:
    """Resolves which base table owns each column (for re-qualification).

    Built from the analysis' table list and their catalog schemas; used to
    rewrite expressions into the ``src.<alias>__<column>`` namespace of the
    three-way join-delta union subquery.
    """

    def __init__(self, tables: list[tuple[str, str, list[str]]]) -> None:
        # tables: (table_name, alias, column_names)
        self._by_alias = {alias.lower(): (alias, cols) for _, alias, cols in tables}
        self._owners: dict[str, list[str]] = {}
        for _, alias, cols in tables:
            for column in cols:
                self._owners.setdefault(column.lower(), []).append(alias)

    def owner_alias(self, column: str, alias: str | None) -> str:
        if alias is not None:
            key = alias.lower()
            if key not in self._by_alias:
                raise IVMError(f"unknown table alias {alias!r} in view expression")
            return self._by_alias[key][0]
        owners = self._owners.get(column.lower(), [])
        if len(owners) != 1:
            raise IVMError(
                f"column {column!r} is {'ambiguous' if owners else 'unknown'} "
                "across the view's base tables"
            )
        return owners[0]

    def src_name(self, column: str, alias: str | None) -> str:
        owner = self.owner_alias(column, alias)
        return f"{owner}__{column}"

    def referenced_columns(self, exprs: Iterable[ast.Expression]) -> list[tuple[str, str]]:
        """All (alias, column) pairs referenced by ``exprs``, deduplicated."""
        seen: list[tuple[str, str]] = []
        for expr in exprs:
            for node in ast.walk_expression(expr):
                if isinstance(node, ast.ColumnRef):
                    owner = self.owner_alias(node.name, node.table)
                    pair = (owner, node.name)
                    if pair not in seen:
                        seen.append(pair)
        return seen


def qualify_columns(
    expr: ast.Expression, namespace: "SourceNamespace"
) -> ast.Expression:
    """Qualify unqualified column references with their owning alias.

    Needed wherever the compiler joins extra relations (e.g. the MIN/MAX
    rescan's "touched groups" subquery) next to the base tables: an
    unqualified key column would become ambiguous.
    """
    rewritten = copy.deepcopy(expr)

    def visit(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef):
            if node.table is None:
                return ast.ColumnRef(
                    name=node.name, table=namespace.owner_alias(node.name, None)
                )
            return node
        for field_name, value in list(vars(node).items()):
            if isinstance(value, ast.Expression):
                setattr(node, field_name, visit(value))
            elif isinstance(value, list):
                new_list = []
                for entry in value:
                    if isinstance(entry, ast.Expression):
                        new_list.append(visit(entry))
                    elif (
                        isinstance(entry, tuple)
                        and len(entry) == 2
                        and isinstance(entry[0], ast.Expression)
                    ):
                        new_list.append((visit(entry[0]), visit(entry[1])))
                    else:
                        new_list.append(entry)
                setattr(node, field_name, new_list)
        return node

    return visit(rewritten)


def requalify_to_src(
    expr: ast.Expression, namespace: SourceNamespace, src_alias: str = "src"
) -> ast.Expression:
    """Rewrite ``alias.column`` references to ``src.alias__column``."""
    rewritten = copy.deepcopy(expr)

    def visit(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef):
            return ast.ColumnRef(
                name=namespace.src_name(node.name, node.table), table=src_alias
            )
        for field_name, value in list(vars(node).items()):
            if isinstance(value, ast.Expression):
                setattr(node, field_name, visit(value))
            elif isinstance(value, list):
                new_list = []
                for entry in value:
                    if isinstance(entry, ast.Expression):
                        new_list.append(visit(entry))
                    elif (
                        isinstance(entry, tuple)
                        and len(entry) == 2
                        and isinstance(entry[0], ast.Expression)
                    ):
                        new_list.append((visit(entry[0]), visit(entry[1])))
                    else:
                        new_list.append(entry)
                setattr(node, field_name, new_list)
        return node

    return visit(rewritten)


# -- emission -----------------------------------------------------------------


def emit(select_node: ast.Select, dialect: Dialect) -> str:
    """Render a DuckAST tree to SQL text in ``dialect``."""
    return render_select(select_node, dialect)


def emit_expression(expr: ast.Expression, dialect: Dialect) -> str:
    return render_expression(expr, dialect)
