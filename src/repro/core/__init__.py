"""OpenIVM: the SQL-to-SQL compiler for incremental view maintenance.

This package is the paper's contribution.  Given a database schema and a
``CREATE MATERIALIZED VIEW`` definition, :class:`OpenIVMCompiler` produces
a :class:`CompiledView`: the DDL for delta tables, the materialized-view
table and its index, plus the SQL propagation script (the paper's
post-processing steps 1–4) in the target dialect.

Example::

    from repro.core import OpenIVMCompiler, CompilerFlags

    compiler = OpenIVMCompiler.from_schema(
        "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
    )
    compiled = compiler.compile(
        "CREATE MATERIALIZED VIEW query_groups AS "
        "SELECT group_index, SUM(group_value) AS total_value "
        "FROM groups GROUP BY group_index"
    )
    print(compiled.script())
"""

from repro.core.flags import CompilerFlags, MaterializationStrategy, PropagationMode
from repro.core.compiler import CompiledView, OpenIVMCompiler
from repro.core.analyze import ViewAnalysis, ViewClass, analyze_view

__all__ = [
    "CompiledView",
    "CompilerFlags",
    "MaterializationStrategy",
    "OpenIVMCompiler",
    "PropagationMode",
    "ViewAnalysis",
    "ViewClass",
    "analyze_view",
]
