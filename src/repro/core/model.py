"""The materialized-view storage model derived from a view analysis.

One :class:`MVModel` fixes the physical layout of the materialized table
and its delta table, and the role of every column.  All SQL generation
(DDL, populate, propagation steps) reads this model.

Layout:

* ``mv`` table — the view's visible columns in select-list order, followed
  by hidden columns (AVG decompositions, the hidden liveness count).  The
  view keys form the PRIMARY KEY, which is what makes ``INSERT OR
  REPLACE`` work (the engine's ART index, as in the paper).
* ``delta_<view>`` table — the same columns *minus* derived ones (AVG is
  recomputed from its hidden sum/count), *plus* the boolean multiplicity
  column at the end.

Projection and join views (no aggregates) use the counted-bag scheme: all
visible columns are keys and a hidden COUNT(*) column carries the bag
multiplicity, which makes deletions exact scalar operations (post-
processing step 3 reduces to ``DELETE ... WHERE count <= 0``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.datatypes.types import BIGINT, DOUBLE, DataType
from repro.errors import UnsupportedError
from repro.sql import ast
from repro.core.analyze import ViewAnalysis, ViewClass
from repro.core.flags import CompilerFlags, MaterializationStrategy


class ColumnRole(enum.Enum):
    KEY = "key"
    SUM = "sum"
    COUNT = "count"  # COUNT(x): counts non-NULL x
    COUNT_STAR = "count_star"
    MIN = "min"
    MAX = "max"
    AVG = "avg"  # derived from hidden sum/count companions
    AVG_SUM = "avg_sum"  # hidden
    AVG_COUNT = "avg_count"  # hidden
    HIDDEN_COUNT = "hidden_count"  # hidden COUNT(*) liveness column

    @property
    def is_additive(self) -> bool:
        """Additive columns combine across deltas by signed summation."""
        return self in (
            ColumnRole.SUM,
            ColumnRole.COUNT,
            ColumnRole.COUNT_STAR,
            ColumnRole.AVG_SUM,
            ColumnRole.AVG_COUNT,
            ColumnRole.HIDDEN_COUNT,
        )

    @property
    def is_minmax(self) -> bool:
        return self in (ColumnRole.MIN, ColumnRole.MAX)


@dataclass
class MVColumn:
    """One column of the materialized table."""

    name: str
    type: DataType
    role: ColumnRole
    visible: bool = True
    # Source-level expression: the key expression, or the aggregate
    # argument (None for COUNT(*) / HIDDEN_COUNT).
    expr: ast.Expression | None = None
    # For AVG: the names of its hidden sum/count companions.
    companion_sum: str = ""
    companion_count: str = ""


@dataclass
class MVModel:
    analysis: ViewAnalysis
    flags: CompilerFlags
    columns: list[MVColumn] = field(default_factory=list)

    # -- derived accessors --------------------------------------------------

    @property
    def view_name(self) -> str:
        return self.analysis.view_name

    @property
    def mv_table(self) -> str:
        return self.analysis.view_name

    @property
    def delta_view_table(self) -> str:
        return self.flags.delta_table(self.analysis.view_name)

    def source_delta_table(self, source) -> str:
        """The delta table this view reads for one source: the shared
        base ΔT, or — when the source is itself a materialized view —
        the upstream view's cascade feed (``delta_<view>__out``)."""
        if getattr(source, "is_view", False):
            return self.flags.cascade_delta_table(source.name)
        return self.flags.delta_table(source.name)

    @property
    def multiplicity(self) -> str:
        return self.flags.multiplicity_column

    def key_columns(self) -> list[MVColumn]:
        return [c for c in self.columns if c.role is ColumnRole.KEY]

    def additive_columns(self) -> list[MVColumn]:
        return [c for c in self.columns if c.role.is_additive]

    def minmax_columns(self) -> list[MVColumn]:
        return [c for c in self.columns if c.role.is_minmax]

    def avg_columns(self) -> list[MVColumn]:
        return [c for c in self.columns if c.role is ColumnRole.AVG]

    def delta_columns(self) -> list[MVColumn]:
        """Columns stored in the delta-view table (derived AVG excluded)."""
        return [c for c in self.columns if c.role is not ColumnRole.AVG]

    def liveness_column(self) -> MVColumn | None:
        """The column used for exact group-liveness (step 3), if any."""
        for column in self.columns:
            if column.role is ColumnRole.HIDDEN_COUNT:
                return column
        for column in self.columns:
            if column.role is ColumnRole.COUNT_STAR:
                return column
        return None

    def paper_sum_columns(self) -> list[MVColumn]:
        """Visible SUM columns, for the paper's ``WHERE sum = 0`` fallback."""
        return [c for c in self.columns if c.role is ColumnRole.SUM and c.visible]

    def column(self, name: str) -> MVColumn:
        for candidate in self.columns:
            if candidate.name == name:
                return candidate
        raise KeyError(name)


def source_namespace(model: MVModel):
    """A :class:`~repro.core.duckast.SourceNamespace` over the view's base
    tables, for column-ownership resolution during SQL generation."""
    from repro.core import duckast
    from repro.planner.logical import plan_source_tables

    gets = {op.alias: op for op in plan_source_tables(model.analysis.plan)}
    tables = []
    for source in model.analysis.tables:
        get = gets[source.alias]
        tables.append(
            (source.name, source.alias, [c.name for c in get.output_columns])
        )
    return duckast.SourceNamespace(tables)


def build_model(analysis: ViewAnalysis, flags: CompilerFlags) -> MVModel:
    """Derive the storage model for ``analysis`` under ``flags``."""
    model = MVModel(analysis=analysis, flags=flags)
    hidden = flags.hidden_prefix

    if not analysis.view_class.has_aggregates:
        # Counted-bag scheme for projection/join views.
        for key in analysis.keys:
            model.columns.append(
                MVColumn(name=key.name, type=key.type, role=ColumnRole.KEY,
                         expr=key.expr)
            )
        model.columns.append(
            MVColumn(
                name=flags.hidden_count_column(),
                type=BIGINT,
                role=ColumnRole.HIDDEN_COUNT,
                visible=False,
            )
        )
        return model

    has_minmax = False
    has_avg = False
    visible: list[MVColumn] = []
    hidden_columns: list[MVColumn] = []
    for key in analysis.keys:
        visible.append(
            MVColumn(name=key.name, type=key.type, role=ColumnRole.KEY,
                     expr=key.expr)
        )
    if not analysis.keys:
        # Scalar aggregate view (no GROUP BY): a hidden constant key makes
        # the single result row addressable by the upsert machinery.
        from repro.datatypes.types import INTEGER

        hidden_columns.append(
            MVColumn(
                name=f"{hidden}key",
                type=INTEGER,
                role=ColumnRole.KEY,
                visible=False,
                expr=ast.Cast(operand=ast.Literal(0), type_name="INTEGER"),
            )
        )
    for agg in analysis.aggregates:
        if agg.function == "SUM":
            visible.append(
                MVColumn(name=agg.name, type=agg.type, role=ColumnRole.SUM,
                         expr=agg.argument)
            )
        elif agg.function == "COUNT":
            role = ColumnRole.COUNT_STAR if agg.argument is None else ColumnRole.COUNT
            visible.append(
                MVColumn(name=agg.name, type=agg.type, role=role,
                         expr=agg.argument)
            )
        elif agg.function in ("MIN", "MAX"):
            has_minmax = True
            visible.append(
                MVColumn(
                    name=agg.name,
                    type=agg.type,
                    role=ColumnRole.MIN if agg.function == "MIN" else ColumnRole.MAX,
                    expr=agg.argument,
                )
            )
        elif agg.function == "AVG":
            has_avg = True
            sum_name = f"{hidden}{agg.name}_sum"
            count_name = f"{hidden}{agg.name}_count"
            visible.append(
                MVColumn(
                    name=agg.name,
                    type=DOUBLE,
                    role=ColumnRole.AVG,
                    expr=agg.argument,
                    companion_sum=sum_name,
                    companion_count=count_name,
                )
            )
            hidden_columns.append(
                MVColumn(name=sum_name, type=DOUBLE, role=ColumnRole.AVG_SUM,
                         visible=False, expr=agg.argument)
            )
            hidden_columns.append(
                MVColumn(name=count_name, type=BIGINT, role=ColumnRole.AVG_COUNT,
                         visible=False, expr=agg.argument)
            )
        else:  # pragma: no cover - analyze already filters functions
            raise UnsupportedError(f"aggregate {agg.function} is not supported")

    model.columns = visible + hidden_columns

    has_count_star = any(c.role is ColumnRole.COUNT_STAR for c in visible)
    has_visible_sum = any(c.role is ColumnRole.SUM for c in visible)
    needs_hidden_count = (
        flags.hidden_count
        or has_minmax
        or (not has_count_star and not has_visible_sum)
    ) and not has_count_star
    if needs_hidden_count:
        model.columns.append(
            MVColumn(
                name=flags.hidden_count_column(),
                type=BIGINT,
                role=ColumnRole.HIDDEN_COUNT,
                visible=False,
            )
        )

    if has_minmax and flags.strategy is not MaterializationStrategy.LEFT_JOIN_UPSERT:
        raise UnsupportedError(
            "MIN/MAX views require the LEFT_JOIN_UPSERT strategy (the "
            "delete path rescans touched groups through the upsert index)"
        )
    return model
