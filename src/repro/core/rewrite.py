"""DBSP rewrite rules: view plan → incremental delta query (step 1).

The paper §2: "rewrite rules convert the relational operators to their
incremental form.  Specifically, the incremental forms of selection and
projection operators are the same as their relational form, and the
incremental form of a join consists of three relational join operators.
The input to the new logical plan is the change to the base table ΔT."

Concretely this module produces the SELECT that computes ΔV from the
delta tables, and the surrounding ``INSERT INTO delta_<view> ...``
statement (post-processing step 1).  The rules:

* **selection / filter** — applied unchanged to the delta input (linear).
* **projection** — unchanged, with the multiplicity column carried along.
* **aggregation** — grouped additionally by the multiplicity column, so
  insert-weight and delete-weight partial aggregates stay separated
  (exactly Listing 2's ``GROUP BY group_index, _duckdb_ivm_multiplicity``).
* **join** — the three-term form over the *new* base state (base tables
  are updated before propagation runs):

      Δ(A ⋈ B) = ΔA ⋈ B  ∪  A ⋈ ΔB  ∪  sign-flipped(ΔA ⋈ ΔB)

  The boolean multiplicities multiply as signs: the first two terms keep
  the delta side's multiplicity, the third term's multiplicity is
  ``mult_A <> mult_B`` (true·true and false·false both flip, because this
  term is subtracted).
"""

from __future__ import annotations

import copy

from repro.sql import ast
from repro.sql.dialect import Dialect
from repro.core import duckast as d
from repro.core.model import ColumnRole, MVColumn, MVModel


def build_delta_view_insert(model: MVModel, dialect: Dialect) -> str:
    """Step 1: ``INSERT INTO delta_<view> SELECT ... FROM Δ-inputs``."""
    select = build_delta_view_select(model)
    table = dialect.quote_identifier(model.delta_view_table)
    return f"INSERT INTO {table} {d.emit(select, dialect)}"


def build_delta_view_select(model: MVModel) -> ast.Select:
    """The incremental query computing ΔV rows (with multiplicity)."""
    if model.analysis.single_table:
        return _single_table_delta_select(model)
    return _join_delta_select(model)


# ---------------------------------------------------------------------------
# Single-table rewrite (paper's supported class)
# ---------------------------------------------------------------------------


def _aggregate_item(column: MVColumn, mult_table: str | None = None) -> ast.SelectItem:
    """Select item computing one delta-view column from delta-source rows."""
    role = column.role
    if role is ColumnRole.KEY:
        return d.item(copy.deepcopy(column.expr), column.name)
    if role is ColumnRole.SUM or role is ColumnRole.AVG_SUM:
        return d.item(d.agg("SUM", copy.deepcopy(column.expr)), column.name)
    if role is ColumnRole.COUNT or role is ColumnRole.AVG_COUNT:
        return d.item(d.agg("COUNT", copy.deepcopy(column.expr)), column.name)
    if role in (ColumnRole.COUNT_STAR, ColumnRole.HIDDEN_COUNT):
        return d.item(d.agg("COUNT", None), column.name)
    if role is ColumnRole.MIN:
        return d.item(d.agg("MIN", copy.deepcopy(column.expr)), column.name)
    if role is ColumnRole.MAX:
        return d.item(d.agg("MAX", copy.deepcopy(column.expr)), column.name)
    raise AssertionError(f"column role {role} has no delta item")


def _single_table_delta_select(model: MVModel) -> ast.Select:
    analysis = model.analysis
    flags = model.flags
    source = analysis.tables[0]
    mult = flags.multiplicity_column

    # Leaf substitution: scan the delta table (the cascade feed when the
    # source is itself a view) under the original alias so every column
    # reference in the view expressions keeps resolving.
    delta_name = model.source_delta_table(source)
    from_clause = d.base_table(
        delta_name,
        alias=source.alias if source.alias.lower() != delta_name.lower() else None,
    )

    items = [_aggregate_item(column) for column in model.delta_columns()]
    items.append(d.item(d.col(mult), None))
    group_by: list[ast.Expression] = [
        copy.deepcopy(key.expr) for key in model.key_columns()
    ]
    group_by.append(d.col(mult))
    return d.select(
        items=items,
        from_clause=from_clause,
        where=copy.deepcopy(analysis.where),
        group_by=group_by,
    )


# ---------------------------------------------------------------------------
# Join rewrite (three-term delta)
# ---------------------------------------------------------------------------


def _join_delta_select(model: MVModel) -> ast.Select:
    analysis = model.analysis
    flags = model.flags
    mult = flags.multiplicity_column
    left, right = analysis.tables

    namespace = _build_namespace(model)
    referenced = namespace.referenced_columns(_all_source_expressions(model))

    def term(
        left_table: str, right_table: str, mult_expr: ast.Expression
    ) -> ast.Select:
        join = ast.JoinRef(
            left=d.base_table(left_table, alias=left.alias),
            right=d.base_table(right_table, alias=right.alias),
            join_type="INNER",
            condition=copy.deepcopy(analysis.join_condition),
        )
        items = [
            d.item(d.col(column, table=alias), f"{alias}__{column}")
            for alias, column in referenced
        ]
        items.append(d.item(mult_expr, mult))
        return d.select(
            items=items,
            from_clause=join,
            where=copy.deepcopy(analysis.where),
        )

    delta_left = model.source_delta_table(left)
    delta_right = model.source_delta_table(right)
    term1 = term(delta_left, right.name, d.col(mult, table=left.alias))
    term2 = term(left.name, delta_right, d.col(mult, table=right.alias))
    term3 = term(
        delta_left,
        delta_right,
        d.neq(d.col(mult, table=left.alias), d.col(mult, table=right.alias)),
    )
    term1.set_ops = [("UNION ALL", term2), ("UNION ALL", term3)]
    union_ref = ast.SubqueryRef(query=term1, alias="src")

    items = []
    for column in model.delta_columns():
        rewritten = _requalified_item(column, namespace)
        items.append(rewritten)
    items.append(d.item(d.col(mult), None))
    group_by: list[ast.Expression] = [
        d.requalify_to_src(key.expr, namespace) for key in model.key_columns()
    ]
    group_by.append(d.col(mult))
    return d.select(items=items, from_clause=union_ref, group_by=group_by)


def _requalified_item(column: MVColumn, namespace) -> ast.SelectItem:
    role = column.role
    expr = (
        d.requalify_to_src(column.expr, namespace)
        if column.expr is not None
        else None
    )
    if role is ColumnRole.KEY:
        return d.item(expr, column.name)
    if role is ColumnRole.SUM or role is ColumnRole.AVG_SUM:
        return d.item(d.agg("SUM", expr), column.name)
    if role is ColumnRole.COUNT or role is ColumnRole.AVG_COUNT:
        return d.item(d.agg("COUNT", expr), column.name)
    if role in (ColumnRole.COUNT_STAR, ColumnRole.HIDDEN_COUNT):
        return d.item(d.agg("COUNT", None), column.name)
    if role is ColumnRole.MIN:
        return d.item(d.agg("MIN", expr), column.name)
    if role is ColumnRole.MAX:
        return d.item(d.agg("MAX", expr), column.name)
    raise AssertionError(f"column role {role} has no delta item")


def _build_namespace(model: MVModel):
    tables = []
    for source in model.analysis.tables:
        plan_tables = {
            op.alias: op for op in _plan_gets(model)
        }
        get = plan_tables[source.alias]
        tables.append(
            (source.name, source.alias, [c.name for c in get.output_columns])
        )
    return d.SourceNamespace(tables)


def _plan_gets(model: MVModel):
    from repro.planner.logical import plan_source_tables

    return plan_source_tables(model.analysis.plan)


def _all_source_expressions(model: MVModel) -> list[ast.Expression]:
    exprs: list[ast.Expression] = []
    for column in model.columns:
        if column.expr is not None:
            exprs.append(column.expr)
    if model.analysis.where is not None:
        exprs.append(model.analysis.where)
    if model.analysis.join_condition is not None:
        exprs.append(model.analysis.join_condition)
    return exprs
