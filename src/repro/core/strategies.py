"""Materialization strategies: how ΔV is folded into V (step 2).

Paper §2: "one can think of various relational strategies or custom
operators to incorporate changes in a materialized aggregation: replacing
the materialized table with a UNION and regrouping, or through a
full-outer-join, or maintaining it with a left-join with an UPSERT ...
choosing one is controlled manually using compiler switches."

All three are implemented here over the unified :class:`MVModel` (additive
columns combine by signed summation; MIN/MAX insert paths use LEAST/
GREATEST with a rescan for deletions; AVG is derived from its hidden
sum/count companions).

Note on Listing 2: the paper's generated upsert selects the *view-side*
group key (``query_groups.group_index``), which is NULL for groups that
did not previously exist.  We emit the delta-side key instead (never NULL
for a delta group) — the one functional correction relative to the
listing, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import copy

from repro.datatypes.types import DOUBLE
from repro.errors import IVMError
from repro.sql import ast
from repro.sql.dialect import Dialect
from repro.core import duckast as d
from repro.core.flags import MaterializationStrategy
from repro.core.model import ColumnRole, MVColumn, MVModel

_TOUCHED_ALIAS = "_duckdb_ivm_touched"

# Step-2 statement labels.  The propagation pipeline matches native steps
# to SQL statements by label prefix, so these are the contract between
# this module's emission and the native kernels in repro.core.batched
# (note "step2:" is deliberately not a prefix of "step2b:").
STEP2_UPSERT_LABEL = "step2: upsert delta into view"
STEP2B_RESCAN_LABEL = "step2b: rescan MIN/MAX groups touched by deletions"

# The adaptive planner's name for each strategy's native step-2 kernel
# (the SQL statement form is "sql" for all three); shared with the cost
# model so plan shapes and kernels can never drift apart.
STEP2_KINDS = {
    MaterializationStrategy.LEFT_JOIN_UPSERT: "native-upsert",
    MaterializationStrategy.UNION_REGROUP: "native-regroup",
    MaterializationStrategy.FULL_OUTER_JOIN: "native-outer",
}


def step2_kind(strategy: MaterializationStrategy) -> str:
    """Kind name of ``strategy``'s native step-2 kernel (see STEP2_KINDS)."""
    return STEP2_KINDS[strategy]


def delta_column_plan(model: MVModel) -> list[tuple[MVColumn, str]]:
    """How each delta-view column participates in ΔV folding.

    Returns ``(column, kind)`` pairs with kind ∈ {"key", "additive",
    "min", "max"}.  This single spec is consumed twice: by the SQL signed
    collapse below (``_signed_cte_select``) and by the vectorized delta
    kernels (:mod:`repro.core.batched`), which keeps the two propagation
    paths folding deltas with identical column semantics.
    """
    plan: list[tuple[MVColumn, str]] = []
    for column in model.delta_columns():
        if column.role is ColumnRole.KEY:
            plan.append((column, "key"))
        elif column.role.is_additive:
            plan.append((column, "additive"))
        elif column.role is ColumnRole.MIN:
            plan.append((column, "min"))
        elif column.role is ColumnRole.MAX:
            plan.append((column, "max"))
        else:  # pragma: no cover - delta_columns excludes derived AVG
            raise IVMError(f"column role {column.role} has no delta plan")
    return plan


def apply_strategy(model: MVModel, dialect: Dialect) -> list[tuple[str, str]]:
    """Emit the labelled step-2 statements for the model's strategy."""
    strategy = model.flags.strategy
    if strategy is MaterializationStrategy.LEFT_JOIN_UPSERT:
        statements = [(STEP2_UPSERT_LABEL, _upsert(model, dialect))]
        if model.minmax_columns():
            statements.append(
                (STEP2B_RESCAN_LABEL, _minmax_rescan(model, dialect))
            )
        return statements
    if strategy is MaterializationStrategy.UNION_REGROUP:
        return [
            ("step2: regroup view UNION delta", sql)
            for sql in _union_regroup(model, dialect)
        ]
    if strategy is MaterializationStrategy.FULL_OUTER_JOIN:
        return [
            ("step2: full-outer-join rebuild", sql)
            for sql in _full_outer_join(model, dialect)
        ]
    raise IVMError(f"unknown strategy {strategy}")


# ---------------------------------------------------------------------------
# Shared pieces
# ---------------------------------------------------------------------------


def _signed_cte_select(model: MVModel) -> ast.Select:
    """Collapse the delta-view to one signed row per group.

    ``SELECT k, SUM(CASE WHEN mult = FALSE THEN -c ELSE c END) AS c, ...
    FROM delta_<view> GROUP BY k`` — Listing 2's ``ivm_cte``.
    MIN/MAX columns keep only insert-side values (deletions are handled by
    the rescan statement).
    """
    mult = d.col(model.multiplicity)
    items: list[ast.SelectItem] = []
    for column, kind in delta_column_plan(model):
        name = d.col(column.name)
        if kind == "key":
            items.append(d.item(name, column.name))
        elif kind == "additive":
            items.append(
                d.item(
                    d.agg("SUM", d.signed_by_multiplicity(name, copy.deepcopy(mult))),
                    column.name,
                )
            )
        elif kind == "min":
            items.append(
                d.item(
                    d.agg("MIN", d.only_inserts(name, copy.deepcopy(mult))),
                    column.name,
                )
            )
        elif kind == "max":
            items.append(
                d.item(
                    d.agg("MAX", d.only_inserts(name, copy.deepcopy(mult))),
                    column.name,
                )
            )
    group_by = [d.col(k.name) for k in model.key_columns()]
    return d.select(
        items=items,
        from_clause=d.base_table(model.delta_view_table),
        group_by=group_by,
    )


def _combine_item(
    column: MVColumn, model: MVModel, view_alias: str, delta_alias: str,
    aggregate_wrapped: bool,
) -> ast.SelectItem:
    """Select item combining the stored value with the signed delta value.

    ``aggregate_wrapped`` wraps additive combinations in SUM(...) with a
    trailing GROUP BY, matching the shape of Listing 2 (each delta group
    joins at most one stored row, so the SUM is over a single value).
    """
    def stored(name: str) -> ast.Expression:
        return d.col(name, table=view_alias)

    def delta(name: str) -> ast.Expression:
        return d.col(name, table=delta_alias)

    def additive(name: str) -> ast.Expression:
        combined = d.add(
            d.coalesce(stored(name), d.lit(0)),
            d.coalesce(delta(name), d.lit(0)),
        )
        if aggregate_wrapped:
            return d.agg("SUM", combined)
        return combined

    role = column.role
    if role is ColumnRole.KEY:
        return d.item(delta(column.name), column.name)
    if role.is_additive:
        return d.item(additive(column.name), column.name)
    if role is ColumnRole.MIN:
        combined = d.fn("LEAST", stored(column.name), delta(column.name))
        if aggregate_wrapped:
            combined = d.agg("MIN", combined)
        return d.item(combined, column.name)
    if role is ColumnRole.MAX:
        combined = d.fn("GREATEST", stored(column.name), delta(column.name))
        if aggregate_wrapped:
            combined = d.agg("MAX", combined)
        return d.item(combined, column.name)
    if role is ColumnRole.AVG:
        ratio = ast.BinaryOp(
            op="/",
            left=ast.Cast(operand=additive(column.companion_sum), type_name="DOUBLE"),
            right=d.fn("NULLIF", additive(column.companion_count), d.lit(0)),
        )
        return d.item(ratio, column.name)
    raise AssertionError(f"no combine rule for {role}")


def _key_join_condition(model: MVModel, view_alias: str, delta_alias: str):
    return d.conj(
        d.eq(d.col(k.name, table=view_alias), d.col(k.name, table=delta_alias))
        for k in model.key_columns()
    )


# ---------------------------------------------------------------------------
# LEFT JOIN + UPSERT (Listing 2)
# ---------------------------------------------------------------------------


def _upsert(model: MVModel, dialect: Dialect) -> str:
    mv = model.mv_table
    # Listing 2 aliases the CTE with the delta view's name; keep that shape.
    delta_alias = model.delta_view_table
    cte = ast.CommonTableExpr(name="ivm_cte", query=_signed_cte_select(model))
    items = [
        _combine_item(column, model, mv, delta_alias, aggregate_wrapped=True)
        for column in model.columns
    ]
    join = ast.JoinRef(
        left=ast.BaseTableRef(name="ivm_cte", alias=delta_alias),
        right=ast.BaseTableRef(name=mv),
        join_type="LEFT",
        condition=_key_join_condition(model, mv, delta_alias),
    )
    select = d.select(
        items=items,
        from_clause=join,
        group_by=[d.col(k.name, table=delta_alias) for k in model.key_columns()],
        ctes=[cte],
    )
    return _emit_upsert(model, select, dialect)


def _emit_upsert(model: MVModel, select: ast.Select, dialect: Dialect) -> str:
    quoted = dialect.quote_identifier
    body = d.emit(select, dialect)
    if dialect.upsert_style == "or_replace":
        return f"INSERT OR REPLACE INTO {quoted(model.mv_table)} {body}"
    # PostgreSQL spelling: INSERT ... ON CONFLICT (keys) DO UPDATE.
    keys = ", ".join(quoted(k.name) for k in model.key_columns())
    updates = ", ".join(
        f"{quoted(c.name)} = EXCLUDED.{quoted(c.name)}"
        for c in model.columns
        if c.role is not ColumnRole.KEY
    )
    return (
        f"INSERT INTO {quoted(model.mv_table)} {body} "
        f"ON CONFLICT ({keys}) DO UPDATE SET {updates}"
    )


def _minmax_rescan(model: MVModel, dialect: Dialect) -> str:
    """Recompute every group touched by a deletion from the base tables.

    ``INSERT OR REPLACE INTO mv SELECT <recomputed> FROM <base> JOIN
    (SELECT DISTINCT keys FROM delta_view WHERE mult = FALSE) AS touched
    ON <key exprs> = touched.keys [WHERE p] GROUP BY <key exprs>``

    Runs after the upsert; groups that disappeared entirely produce no
    rows here and are removed by step 3 via the hidden count.
    """
    from repro.core.model import source_namespace

    analysis = model.analysis
    namespace = source_namespace(model)
    touched = d.select(
        items=[d.item(d.col(k.name), k.name) for k in model.key_columns()],
        from_clause=d.base_table(model.delta_view_table),
        where=d.eq(d.col(model.multiplicity), d.lit(False)),
    )
    touched.distinct = True

    def qualified(expr: ast.Expression) -> ast.Expression:
        return d.qualify_columns(expr, namespace)

    base_from = copy.deepcopy(analysis.query.from_clause)
    condition = d.conj(
        d.eq(qualified(k.expr), d.col(k.name, table=_TOUCHED_ALIAS))
        for k in model.key_columns()
    )
    join = ast.JoinRef(
        left=base_from,
        right=ast.SubqueryRef(query=touched, alias=_TOUCHED_ALIAS),
        join_type="INNER",
        condition=condition,
    )
    items = []
    for column in model.columns:
        entry = recompute_item(column)
        entry.expr = qualified(entry.expr)
        items.append(entry)
    select = d.select(
        items=items,
        from_clause=join,
        where=qualified(analysis.where) if analysis.where is not None else None,
        group_by=[qualified(k.expr) for k in model.key_columns()],
    )
    return _emit_upsert(model, select, dialect)


def recompute_item(column: MVColumn) -> ast.SelectItem:
    """Select item recomputing one mv column from the base tables."""
    expr = copy.deepcopy(column.expr) if column.expr is not None else None
    role = column.role
    if role is ColumnRole.KEY:
        return d.item(expr, column.name)
    if role is ColumnRole.SUM or role is ColumnRole.AVG_SUM:
        return d.item(d.agg("SUM", expr), column.name)
    if role is ColumnRole.COUNT or role is ColumnRole.AVG_COUNT:
        return d.item(d.agg("COUNT", expr), column.name)
    if role in (ColumnRole.COUNT_STAR, ColumnRole.HIDDEN_COUNT):
        return d.item(d.agg("COUNT", None), column.name)
    if role is ColumnRole.MIN:
        return d.item(d.agg("MIN", expr), column.name)
    if role is ColumnRole.MAX:
        return d.item(d.agg("MAX", expr), column.name)
    if role is ColumnRole.AVG:
        return d.item(d.agg("AVG", expr), column.name)
    raise AssertionError(f"no recompute rule for {role}")


# ---------------------------------------------------------------------------
# UNION + regroup
# ---------------------------------------------------------------------------


def _union_regroup(model: MVModel, dialect: Dialect) -> list[str]:
    quoted = dialect.quote_identifier
    scratch = f"{model.mv_table}__ivm_new"
    mult = d.col(model.multiplicity)

    stored = d.select(
        items=[d.item(d.col(c.name), c.name) for c in model.delta_columns()],
        from_clause=d.base_table(model.mv_table),
    )
    signed_items = []
    for column in model.delta_columns():
        name = d.col(column.name)
        if column.role.is_additive:
            signed_items.append(
                d.item(d.signed_by_multiplicity(name, copy.deepcopy(mult)), column.name)
            )
        else:
            signed_items.append(d.item(name, column.name))
    signed = d.select(
        items=signed_items, from_clause=d.base_table(model.delta_view_table)
    )
    stored.set_ops = [("UNION ALL", signed)]
    union_ref = ast.SubqueryRef(query=stored, alias="u")

    outer_items = []
    for column in model.columns:
        if column.role is ColumnRole.KEY:
            outer_items.append(d.item(d.col(column.name, table="u"), column.name))
        elif column.role.is_additive:
            outer_items.append(
                d.item(d.agg("SUM", d.col(column.name, table="u")), column.name)
            )
        elif column.role is ColumnRole.AVG:
            ratio = ast.BinaryOp(
                op="/",
                left=ast.Cast(
                    operand=d.agg("SUM", d.col(column.companion_sum, table="u")),
                    type_name="DOUBLE",
                ),
                right=d.fn(
                    "NULLIF",
                    d.agg("SUM", d.col(column.companion_count, table="u")),
                    d.lit(0),
                ),
            )
            outer_items.append(d.item(ratio, column.name))
        else:  # pragma: no cover - build_model rejects MIN/MAX here
            raise IVMError("MIN/MAX views require LEFT_JOIN_UPSERT")
    rebuild = d.select(
        items=outer_items,
        from_clause=union_ref,
        group_by=[d.col(k.name, table="u") for k in model.key_columns()],
    )
    return _rebuild_statements(model, scratch, rebuild, dialect)


# ---------------------------------------------------------------------------
# FULL OUTER JOIN
# ---------------------------------------------------------------------------


def _full_outer_join(model: MVModel, dialect: Dialect) -> list[str]:
    scratch = f"{model.mv_table}__ivm_new"
    mv = model.mv_table
    delta_alias = "d"
    aggregated = _signed_cte_select(model)
    join = ast.JoinRef(
        left=ast.BaseTableRef(name=mv),
        right=ast.SubqueryRef(query=aggregated, alias=delta_alias),
        join_type="FULL",
        condition=_key_join_condition(model, mv, delta_alias),
    )
    items = []
    for column in model.columns:
        if column.role is ColumnRole.KEY:
            items.append(
                d.item(
                    d.coalesce(
                        d.col(column.name, table=mv),
                        d.col(column.name, table=delta_alias),
                    ),
                    column.name,
                )
            )
        else:
            items.append(
                _combine_item(column, model, mv, delta_alias, aggregate_wrapped=False)
            )
    rebuild = d.select(items=items, from_clause=join)
    return _rebuild_statements(model, scratch, rebuild, dialect)


def _rebuild_statements(
    model: MVModel, scratch: str, rebuild: ast.Select, dialect: Dialect
) -> list[str]:
    """CREATE scratch AS <rebuild>; swap its contents into the mv table.

    The mv table itself is kept (its PRIMARY KEY / ART index survives);
    only its contents are replaced, which is what "replacing the
    materialized table" costs in practice.
    """
    quoted = dialect.quote_identifier
    columns = ", ".join(quoted(c.name) for c in model.columns)
    return [
        f"CREATE TABLE {quoted(scratch)} AS {d.emit(rebuild, dialect)}",
        f"DELETE FROM {quoted(model.mv_table)}",
        f"INSERT INTO {quoted(model.mv_table)} SELECT {columns} FROM {quoted(scratch)}",
        f"DROP TABLE {quoted(scratch)}",
    ]
