"""Synthetic data and change-stream generators.

The paper's demo pre-loads datasets and benchmarks "sets of pre-written
GROUP BY queries"; its running example is the two-column ``groups`` table
of Listing 1.  These generators produce that table at any scale, a
two-table sales workload for the HTAP scenarios, and mixed
insert/update/delete change streams — all seeded, so every benchmark run
is reproducible.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


def zipf_group_keys(count: int, num_groups: int, skew: float, seed: int) -> list[str]:
    """``count`` group keys over ``num_groups`` distinct values.

    ``skew == 0`` is uniform; larger values follow a Zipf-like power law
    (popular groups receive most rows), matching the skewed aggregation
    workloads IVM systems are usually evaluated on.
    """
    rng = np.random.default_rng(seed)
    if skew <= 0:
        indexes = rng.integers(0, num_groups, size=count)
    else:
        weights = 1.0 / np.power(np.arange(1, num_groups + 1), skew)
        weights /= weights.sum()
        indexes = rng.choice(num_groups, size=count, p=weights)
    return [f"g{int(i):06d}" for i in indexes]


def generate_groups_rows(
    count: int,
    num_groups: int = 100,
    skew: float = 0.0,
    seed: int = 42,
    value_range: tuple[int, int] = (1, 1000),
) -> list[tuple[str, int]]:
    """Rows for Listing 1's ``groups(group_index VARCHAR, group_value INTEGER)``."""
    rng = np.random.default_rng(seed + 1)
    keys = zipf_group_keys(count, num_groups, skew, seed)
    low, high = value_range
    values = rng.integers(low, high + 1, size=count)
    return [(key, int(value)) for key, value in zip(keys, values)]


@dataclass
class ChangeBatch:
    """One batch of base-table changes: rows to insert and rows to delete.

    ``deletes`` contains full rows currently present in the table (the
    generator tracks table contents to guarantee this).
    """

    inserts: list[tuple] = field(default_factory=list)
    deletes: list[tuple] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.inserts) + len(self.deletes)


def generate_change_stream(
    initial_rows: list[tuple],
    batch_size: int,
    batches: int,
    delete_fraction: float = 0.3,
    num_groups: int = 100,
    seed: int = 7,
    value_range: tuple[int, int] = (1, 1000),
) -> Iterator[ChangeBatch]:
    """Mixed insert/delete batches against the groups table.

    Maintains a shadow copy of the table so every delete targets a live
    row — deltas stay consistent with the base state, which IVM requires.
    """
    rng = random.Random(seed)
    live = list(initial_rows)
    low, high = value_range
    for _ in range(batches):
        batch = ChangeBatch()
        deletes = min(int(batch_size * delete_fraction), len(live))
        inserts = batch_size - deletes
        for _ in range(deletes):
            index = rng.randrange(len(live))
            live[index], live[-1] = live[-1], live[index]
            batch.deletes.append(live.pop())
        for _ in range(inserts):
            row = (f"g{rng.randrange(num_groups):06d}", rng.randint(low, high))
            live.append(row)
            batch.inserts.append(row)
        yield batch


# ---------------------------------------------------------------------------
# HTAP sales workload (two tables, join views)
# ---------------------------------------------------------------------------


@dataclass
class SalesWorkload:
    """A small star-ish schema: customers dimension, orders facts."""

    customers: list[tuple[str, str]]  # (cust_id, region)
    orders: list[tuple[int, str, str, int]]  # (oid, cust_id, product, amount)
    regions: list[str]
    products: list[str]

    SCHEMA = (
        "CREATE TABLE customers (cust_id VARCHAR PRIMARY KEY, region VARCHAR);"
        "CREATE TABLE orders (oid INTEGER PRIMARY KEY, cust_id VARCHAR, "
        "product VARCHAR, amount INTEGER)"
    )

    def next_order_id(self) -> int:
        return max((o[0] for o in self.orders), default=0) + 1


def generate_sales_workload(
    num_customers: int = 200,
    num_orders: int = 5000,
    num_regions: int = 8,
    num_products: int = 30,
    seed: int = 11,
) -> SalesWorkload:
    rng = random.Random(seed)
    regions = [f"region_{c}" for c in string.ascii_lowercase[:num_regions]]
    products = [f"prod_{i:03d}" for i in range(num_products)]
    customers = [
        (f"cust_{i:05d}", rng.choice(regions)) for i in range(num_customers)
    ]
    orders = [
        (
            oid,
            customers[rng.randrange(num_customers)][0],
            rng.choice(products),
            rng.randint(1, 500),
        )
        for oid in range(1, num_orders + 1)
    ]
    return SalesWorkload(
        customers=customers, orders=orders, regions=regions, products=products
    )
