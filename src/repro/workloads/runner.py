"""Timing and reporting helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass
class Stopwatch:
    """Accumulates labelled timings; used by the experiment scripts."""

    timings: dict[str, list[float]] = field(default_factory=dict)

    def measure(self, label: str, fn: Callable[[], Any]) -> Any:
        start = time.perf_counter()
        result = fn()
        self.timings.setdefault(label, []).append(time.perf_counter() - start)
        return result

    def total(self, label: str) -> float:
        return sum(self.timings.get(label, ()))

    def mean(self, label: str) -> float:
        samples = self.timings.get(label, ())
        return sum(samples) / len(samples) if samples else 0.0


def time_call(fn: Callable[[], Any], repeat: int = 1) -> tuple[float, Any]:
    """Best-of-``repeat`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table (the paper-style result rows)."""
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001:
            return f"{value * 1e6:.1f}us"
        if abs(value) < 1:
            return f"{value * 1e3:.2f}ms"
        return f"{value:.3f}s"
    return str(value)
