"""Deterministic synthetic workloads for examples, tests and benchmarks."""

from repro.workloads.generators import (
    ChangeBatch,
    generate_change_stream,
    generate_groups_rows,
    generate_sales_workload,
    zipf_group_keys,
)
from repro.workloads.runner import Stopwatch, format_table, time_call

__all__ = [
    "ChangeBatch",
    "Stopwatch",
    "format_table",
    "generate_change_stream",
    "generate_groups_rows",
    "generate_sales_workload",
    "time_call",
    "zipf_group_keys",
]
