"""Adaptive Radix Tree (ART) index.

The paper leans on DuckDB's ART for two things: `INSERT OR REPLACE`
(upserts into the materialized aggregate, keyed by the GROUP BY columns)
and the index-creation-overhead observation ("it is more efficient to
build small indexes for each chunk and merge them").  This module is a
faithful Python ART:

* four adaptive inner-node widths (Node4 / Node16 / Node48 / Node256) that
  grow and shrink as fan-out changes,
* pessimistic path compression (each inner node stores its full prefix),
* single-value or multi-value leaves (unique vs. secondary index),
* ordered iteration and range scans via the memcomparable key encoding in
  :mod:`repro.storage.keys`,
* chunked build + merge (:meth:`ARTIndex.build_chunked`), mirroring the
  chunk-and-merge construction the paper describes.

Keys are ``bytes``; callers encode SQL tuples with
:func:`repro.storage.keys.encode_key`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import ConstraintError

_NODE4_MAX = 4
_NODE16_MAX = 16
_NODE48_MAX = 48


class _Leaf:
    """Terminal node holding the full key and its row ids."""

    __slots__ = ("key", "values")

    def __init__(self, key: bytes, value: Any) -> None:
        self.key = key
        self.values: list[Any] = [value]


class _InnerNode:
    """Base inner node with a compressed prefix."""

    __slots__ = ("prefix",)

    def __init__(self, prefix: bytes) -> None:
        self.prefix = prefix

    # Subclasses implement: find_child, add_child, remove_child,
    # child_items (sorted), num_children, is_full, grow, maybe_shrink.


class _Node4(_InnerNode):
    __slots__ = ("keys", "children")

    def __init__(self, prefix: bytes) -> None:
        super().__init__(prefix)
        self.keys: list[int] = []
        self.children: list[Any] = []

    def find_child(self, byte: int):
        for i, k in enumerate(self.keys):
            if k == byte:
                return self.children[i]
        return None

    def set_child(self, byte: int, child: Any) -> None:
        for i, k in enumerate(self.keys):
            if k == byte:
                self.children[i] = child
                return
        # Keep keys sorted for ordered iteration.
        idx = 0
        while idx < len(self.keys) and self.keys[idx] < byte:
            idx += 1
        self.keys.insert(idx, byte)
        self.children.insert(idx, child)

    def remove_child(self, byte: int) -> None:
        for i, k in enumerate(self.keys):
            if k == byte:
                del self.keys[i]
                del self.children[i]
                return

    def child_items(self):
        return zip(self.keys, self.children)

    @property
    def num_children(self) -> int:
        return len(self.keys)

    @property
    def is_full(self) -> bool:
        return len(self.keys) >= _NODE4_MAX

    def grow(self) -> "_Node16":
        node = _Node16(self.prefix)
        node.keys = list(self.keys)
        node.children = list(self.children)
        return node


class _Node16(_InnerNode):
    __slots__ = ("keys", "children")

    def __init__(self, prefix: bytes) -> None:
        super().__init__(prefix)
        self.keys: list[int] = []
        self.children: list[Any] = []

    def find_child(self, byte: int):
        # Binary search over the sorted key array, as real ART does with SIMD.
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.keys[mid] < byte:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.keys) and self.keys[lo] == byte:
            return self.children[lo]
        return None

    def set_child(self, byte: int, child: Any) -> None:
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.keys[mid] < byte:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.keys) and self.keys[lo] == byte:
            self.children[lo] = child
        else:
            self.keys.insert(lo, byte)
            self.children.insert(lo, child)

    def remove_child(self, byte: int) -> None:
        for i, k in enumerate(self.keys):
            if k == byte:
                del self.keys[i]
                del self.children[i]
                return

    def child_items(self):
        return zip(self.keys, self.children)

    @property
    def num_children(self) -> int:
        return len(self.keys)

    @property
    def is_full(self) -> bool:
        return len(self.keys) >= _NODE16_MAX

    def grow(self) -> "_Node48":
        node = _Node48(self.prefix)
        for byte, child in zip(self.keys, self.children):
            node.set_child(byte, child)
        return node

    def shrink(self) -> _Node4:
        node = _Node4(self.prefix)
        node.keys = list(self.keys)
        node.children = list(self.children)
        return node


class _Node48(_InnerNode):
    __slots__ = ("index", "children")

    def __init__(self, prefix: bytes) -> None:
        super().__init__(prefix)
        self.index: list[int] = [-1] * 256
        self.children: list[Any] = []

    def find_child(self, byte: int):
        slot = self.index[byte]
        if slot == -1:
            return None
        return self.children[slot]

    def set_child(self, byte: int, child: Any) -> None:
        slot = self.index[byte]
        if slot != -1:
            self.children[slot] = child
        else:
            self.index[byte] = len(self.children)
            self.children.append(child)

    def remove_child(self, byte: int) -> None:
        slot = self.index[byte]
        if slot == -1:
            return
        self.index[byte] = -1
        last = len(self.children) - 1
        if slot != last:
            self.children[slot] = self.children[last]
            for b in range(256):
                if self.index[b] == last:
                    self.index[b] = slot
                    break
        self.children.pop()

    def child_items(self):
        for byte in range(256):
            slot = self.index[byte]
            if slot != -1:
                yield byte, self.children[slot]

    @property
    def num_children(self) -> int:
        return len(self.children)

    @property
    def is_full(self) -> bool:
        return len(self.children) >= _NODE48_MAX

    def grow(self) -> "_Node256":
        node = _Node256(self.prefix)
        for byte, child in self.child_items():
            node.set_child(byte, child)
        return node

    def shrink(self) -> _Node16:
        node = _Node16(self.prefix)
        for byte, child in self.child_items():
            node.set_child(byte, child)
        return node


class _Node256(_InnerNode):
    __slots__ = ("children", "count")

    def __init__(self, prefix: bytes) -> None:
        super().__init__(prefix)
        self.children: list[Any] = [None] * 256
        self.count = 0

    def find_child(self, byte: int):
        return self.children[byte]

    def set_child(self, byte: int, child: Any) -> None:
        if self.children[byte] is None:
            self.count += 1
        self.children[byte] = child

    def remove_child(self, byte: int) -> None:
        if self.children[byte] is not None:
            self.children[byte] = None
            self.count -= 1

    def child_items(self):
        for byte in range(256):
            child = self.children[byte]
            if child is not None:
                yield byte, child

    @property
    def num_children(self) -> int:
        return self.count

    @property
    def is_full(self) -> bool:
        return False

    def shrink(self) -> _Node48:
        node = _Node48(self.prefix)
        for byte, child in self.child_items():
            node.set_child(byte, child)
        return node


def _common_prefix_length(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class ARTIndex:
    """An adaptive radix tree mapping encoded keys to row-id lists.

    ``unique=True`` enforces at most one value per key and raises
    :class:`~repro.errors.ConstraintError` on duplicate insert — the
    behaviour primary keys and `INSERT OR REPLACE` rely on.
    """

    def __init__(self, unique: bool = False) -> None:
        self.unique = unique
        self._root: Any = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- point operations ------------------------------------------------

    def insert(self, key: bytes, value: Any) -> None:
        """Insert ``value`` under ``key``; grows nodes adaptively."""
        self._size += 1
        if self._root is None:
            self._root = _Leaf(key, value)
            return
        self._root = self._insert(self._root, key, 0, value)

    def _insert(self, node: Any, key: bytes, depth: int, value: Any):
        if isinstance(node, _Leaf):
            if node.key == key:
                if self.unique:
                    self._size -= 1
                    raise ConstraintError(
                        f"duplicate key in unique index: {key!r}"
                    )
                node.values.append(value)
                return node
            # Split: make a Node4 whose prefix is the common part.
            existing_rest = node.key[depth:]
            new_rest = key[depth:]
            common = _common_prefix_length(existing_rest, new_rest)
            parent = _Node4(existing_rest[:common])
            parent.set_child(
                existing_rest[common] if common < len(existing_rest) else 0, node
            )
            new_leaf = _Leaf(key, value)
            parent.set_child(
                new_rest[common] if common < len(new_rest) else 0, new_leaf
            )
            return parent
        prefix = node.prefix
        rest = key[depth:]
        common = _common_prefix_length(prefix, rest)
        if common < len(prefix):
            # Prefix mismatch: split this node's prefix.
            parent = _Node4(prefix[:common])
            node.prefix = prefix[common + 1:]
            parent.set_child(prefix[common], node)
            new_leaf = _Leaf(key, value)
            parent.set_child(
                rest[common] if common < len(rest) else 0, new_leaf
            )
            return parent
        depth += len(prefix)
        byte = key[depth] if depth < len(key) else 0
        child = node.find_child(byte)
        if child is None:
            if node.is_full:
                node = node.grow()
            node.set_child(byte, _Leaf(key, value))
            return node
        new_child = self._insert(child, key, depth + 1, value)
        if new_child is not child:
            node.set_child(byte, new_child)
        return node

    def search(self, key: bytes) -> list[Any]:
        """Return the values stored under ``key`` (empty list if absent)."""
        node = self._root
        depth = 0
        while node is not None:
            if isinstance(node, _Leaf):
                return list(node.values) if node.key == key else []
            prefix = node.prefix
            if key[depth:depth + len(prefix)] != prefix:
                return []
            depth += len(prefix)
            byte = key[depth] if depth < len(key) else 0
            node = node.find_child(byte)
            depth += 1
        return []

    def contains(self, key: bytes) -> bool:
        return bool(self.search(key))

    def delete(self, key: bytes, value: Any | None = None) -> bool:
        """Remove ``value`` under ``key`` (or all values when ``None``).

        Returns True if something was removed.  Shrinks nodes on the way
        back up and collapses single-child Node4s into their child.
        """
        if self._root is None:
            return False
        removed, new_root = self._delete(self._root, key, 0, value)
        if removed:
            self._root = new_root
        return removed

    def _delete(self, node: Any, key: bytes, depth: int, value: Any | None):
        if isinstance(node, _Leaf):
            if node.key != key:
                return False, node
            if value is None:
                self._size -= len(node.values)
                return True, None
            try:
                node.values.remove(value)
            except ValueError:
                return False, node
            self._size -= 1
            if not node.values:
                return True, None
            return True, node
        prefix = node.prefix
        if key[depth:depth + len(prefix)] != prefix:
            return False, node
        depth += len(prefix)
        byte = key[depth] if depth < len(key) else 0
        child = node.find_child(byte)
        if child is None:
            return False, node
        removed, new_child = self._delete(child, key, depth + 1, value)
        if not removed:
            return False, node
        if new_child is None:
            node.remove_child(byte)
            if node.num_children == 1 and isinstance(node, _Node4):
                # Collapse: merge prefix with the only remaining child.
                only_byte, only_child = next(iter(node.child_items()))
                if isinstance(only_child, _InnerNode):
                    only_child.prefix = (
                        node.prefix + bytes([only_byte]) + only_child.prefix
                    )
                return True, only_child
            node = self._maybe_shrink(node)
        elif new_child is not child:
            node.set_child(byte, new_child)
        return True, node

    @staticmethod
    def _maybe_shrink(node: Any):
        if isinstance(node, _Node256) and node.num_children <= _NODE48_MAX // 2:
            return node.shrink()
        if isinstance(node, _Node48) and node.num_children <= _NODE16_MAX // 2:
            return node.shrink()
        if isinstance(node, _Node16) and node.num_children <= _NODE4_MAX // 2:
            return node.shrink()
        return node

    # -- scans ------------------------------------------------------------

    def items(self) -> Iterator[tuple[bytes, list[Any]]]:
        """Yield ``(key, values)`` in ascending key order."""
        yield from self._walk(self._root)

    def _walk(self, node: Any) -> Iterator[tuple[bytes, list[Any]]]:
        if node is None:
            return
        if isinstance(node, _Leaf):
            yield node.key, node.values
            return
        for _, child in node.child_items():
            yield from self._walk(child)

    def first_item(self) -> tuple[bytes, list[Any]] | None:
        """The smallest-key entry, via one leftmost descent (O(depth)).

        The memcomparable encoding makes this the SQL MIN of the keyed
        values — the incremental MIN/MAX state leans on it for O(log n)
        extremum lookups after retractions.
        """
        return self._edge_item(leftmost=True)

    def last_item(self) -> tuple[bytes, list[Any]] | None:
        """The largest-key entry, via one rightmost descent (O(depth))."""
        return self._edge_item(leftmost=False)

    def _edge_item(self, leftmost: bool) -> tuple[bytes, list[Any]] | None:
        node = self._root
        if node is None:
            return None
        while not isinstance(node, _Leaf):
            # child_items() yields in ascending byte order, so the first
            # yield is the leftmost child; only the rightmost walk has to
            # exhaust the wide nodes' generators.
            if leftmost:
                node = next(iter(node.child_items()))[1]
            else:
                node = list(node.child_items())[-1][1]
        return node.key, list(node.values)

    def range_scan(
        self, low: bytes | None = None, high: bytes | None = None
    ) -> Iterator[tuple[bytes, list[Any]]]:
        """Yield entries with ``low <= key < high`` in key order.

        A straightforward ordered walk with pruning at the leaves; the
        memcomparable encoding makes byte comparison equal SQL comparison.
        """
        for key, values in self.items():
            if low is not None and key < low:
                continue
            if high is not None and key >= high:
                return
            yield key, values

    # -- chunked construction ----------------------------------------------

    @classmethod
    def build_chunked(
        cls,
        entries: list[tuple[bytes, Any]],
        chunk_size: int = 2048,
        unique: bool = False,
    ) -> "ARTIndex":
        """Build by creating one small ART per chunk and merging them.

        Mirrors the paper's note that DuckDB builds "small indexes for each
        chunk" and merges; the merge here walks each chunk index in key
        order and bulk-inserts into the result.
        """
        chunks: list[ARTIndex] = []
        for start in range(0, len(entries), chunk_size):
            chunk = cls(unique=False)
            for key, value in entries[start:start + chunk_size]:
                chunk.insert(key, value)
            chunks.append(chunk)
        merged = cls(unique=unique)
        for chunk in chunks:
            for key, values in chunk.items():
                for value in values:
                    merged.insert(key, value)
        return merged

    # -- diagnostics ---------------------------------------------------------

    def node_histogram(self) -> dict[str, int]:
        """Count nodes by kind — exercised by tests to prove adaptivity."""
        histogram = {"Leaf": 0, "Node4": 0, "Node16": 0, "Node48": 0, "Node256": 0}

        def visit(node: Any) -> None:
            if node is None:
                return
            histogram[type(node).__name__.lstrip("_")] += 1
            if isinstance(node, _InnerNode):
                for _, child in node.child_items():
                    visit(child)

        visit(self._root)
        return histogram
