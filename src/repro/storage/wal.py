"""Append-only write-ahead log of captured base-table deltas.

The IVM capture path (the AFTER triggers installed by the extension)
writes every delta batch here *before* inserting it into the in-memory
delta table, so a crash after the append can always be replayed: recovery
re-applies the logged rows to the base tables and ΔT and lets one refresh
round carry them into the views.

File layout (all integers big-endian)::

    header   magic  b"IVMWAL1\\n"                              8 bytes
    record   u32 body_len | u32 crc32(body) | body
    body     u64 lsn | u16 table_len | table utf-8 | u32 nrows | rows
    row      u32 row_len | encode_key(values)

Rows are full delta rows — the base columns plus the trailing boolean
multiplicity column — serialized with the memcomparable encoding of
:mod:`repro.storage.keys` (the same bytes the ART indexes key on), so
the log shares one codec with the rest of the storage layer.  LSNs are
strictly increasing; checkpoints record the highest LSN they cover and
replay starts just past it.

Crash semantics on read:

* a **torn tail** — the file ends mid-record because the process died
  mid-append — is expected: reading stops at the last complete record
  and reports the valid byte length, which recovery truncates to.
* a **CRC mismatch on a complete record** is corruption, not a crash
  artifact (truncation can only shorten the file), and raises
  :class:`~repro.errors.WALError`.
"""

from __future__ import annotations

import os
import pathlib
import struct
from dataclasses import dataclass
from typing import Any, Iterable, Sequence
from zlib import crc32

from repro.errors import WALError
from repro.storage.keys import decode_key, encode_key

MAGIC = b"IVMWAL1\n"
HEADER_SIZE = len(MAGIC)
_RECORD_HEADER = struct.Struct(">II")  # body_len, crc32(body)
_BODY_PREFIX = struct.Struct(">QH")  # lsn, table name length
_U32 = struct.Struct(">I")


@dataclass
class WALRecord:
    """One decoded log record: a delta batch for one base table."""

    lsn: int
    table: str
    # Full delta rows (base columns + trailing boolean multiplicity),
    # decoded through decode_key — numbers come back as floats; replay
    # coerces them through the table schema.
    rows: list[tuple]


def encode_record(lsn: int, table: str, rows: Iterable[Sequence[Any]]) -> bytes:
    """Serialize one record (header + body) to its on-disk bytes."""
    name = table.encode("utf-8")
    parts = [_BODY_PREFIX.pack(lsn, len(name)), name]
    encoded_rows = [encode_key(row) for row in rows]
    parts.append(_U32.pack(len(encoded_rows)))
    for encoded in encoded_rows:
        parts.append(_U32.pack(len(encoded)))
        parts.append(encoded)
    body = b"".join(parts)
    return _RECORD_HEADER.pack(len(body), crc32(body)) + body


def _decode_body(body: bytes) -> WALRecord:
    lsn, name_len = _BODY_PREFIX.unpack_from(body, 0)
    pos = _BODY_PREFIX.size
    table = body[pos:pos + name_len].decode("utf-8")
    pos += name_len
    (nrows,) = _U32.unpack_from(body, pos)
    pos += _U32.size
    rows: list[tuple] = []
    for _ in range(nrows):
        (row_len,) = _U32.unpack_from(body, pos)
        pos += _U32.size
        rows.append(tuple(decode_key(body[pos:pos + row_len])))
        pos += row_len
    if pos != len(body):
        raise WALError("corrupt WAL record: trailing bytes inside body")
    return WALRecord(lsn=lsn, table=table, rows=rows)


def read_records(path: str | pathlib.Path) -> tuple[list[WALRecord], int]:
    """Read every complete record; returns ``(records, valid_size)``.

    ``valid_size`` is the byte offset of the last complete record's end —
    a torn tail past it is reported by stopping, never by raising.  A
    missing file reads as empty.  CRC mismatches and non-monotone LSNs on
    *complete* records raise :class:`WALError`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], 0
    data = path.read_bytes()
    if len(data) < HEADER_SIZE:
        # The file died mid-header — nothing was ever fully logged.
        return [], 0
    if data[:HEADER_SIZE] != MAGIC:
        raise WALError(f"bad WAL magic in {path}")
    records: list[WALRecord] = []
    pos = HEADER_SIZE
    last_lsn = 0
    while pos < len(data):
        if pos + _RECORD_HEADER.size > len(data):
            break  # torn record header
        body_len, crc = _RECORD_HEADER.unpack_from(data, pos)
        body_start = pos + _RECORD_HEADER.size
        if body_start + body_len > len(data):
            break  # torn record body
        body = data[body_start:body_start + body_len]
        if crc32(body) != crc:
            raise WALError(
                f"WAL CRC mismatch at byte {pos} of {path} "
                f"(complete record, so this is corruption, not a crash)"
            )
        record = _decode_body(body)
        if record.lsn <= last_lsn:
            raise WALError(
                f"non-monotone WAL LSN {record.lsn} after {last_lsn}"
            )
        last_lsn = record.lsn
        records.append(record)
        pos = body_start + body_len
    return records, pos


class WriteAheadLog:
    """Appender over one WAL file.

    ``sync=True`` fsyncs after every append (the ``wal_sync`` flag);
    off, durability extends only to the OS page cache — the right
    trade-off for CI and benchmarks.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        sync: bool = False,
        fault_plan: Any = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.sync = bool(sync)
        self.fault_plan = fault_plan
        self._last_lsn = 0
        self._file = None

    @classmethod
    def open(
        cls,
        path: str | pathlib.Path,
        sync: bool = False,
        fault_plan: Any = None,
    ) -> "WriteAheadLog":
        """Open (or create) a log for appending.

        Scans any existing file, truncates a torn tail off the end, and
        resumes LSNs after the last complete record.
        """
        wal = cls(path, sync=sync, fault_plan=fault_plan)
        records, valid_size = read_records(wal.path)
        wal._last_lsn = records[-1].lsn if records else 0
        fresh = valid_size == 0
        wal._file = open(wal.path, "ab" if not fresh else "wb")
        if fresh:
            wal._file.write(MAGIC)
            wal._file.flush()
        elif wal.path.stat().st_size > valid_size:
            wal._file.truncate(valid_size)
        return wal

    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    def ensure_lsn_at_least(self, lsn: int) -> None:
        """Raise the LSN floor so future appends stay above ``lsn``.

        Recovery calls this with the checkpoint's LSN: if the log itself
        was lost (truncated below its header), freshly appended records
        must not restart below the checkpoint horizon, or a later
        recovery would skip them as already covered.
        """
        self._last_lsn = max(self._last_lsn, int(lsn))

    def append(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Log one delta batch; returns the record's LSN.

        The append is atomic from the surviving process's perspective: a
        failed (or fault-injected torn) write rolls the file back to the
        pre-append offset before re-raising, so later appends can never
        land behind a torn *middle* — which the reader would have to
        treat as corruption rather than a crash tail.  A real crash
        mid-append leaves the torn tail for :meth:`open` to truncate,
        exactly as before.  ``wal.append`` is a named fault-injection
        site: ``error`` faults raise before any bytes are written,
        ``torn`` faults persist a prefix of the record and then fail
        (rolled back as above, with the partial bytes having transiently
        hit the file — the crash-simulation window)."""
        if self._file is None:
            raise WALError("write-ahead log is closed")
        torn = None
        if self.fault_plan is not None:
            torn = self.fault_plan.check("wal.append", table=table)
        lsn = self._last_lsn + 1
        payload = encode_record(lsn, table, rows)
        start = self._file.seek(0, os.SEEK_END)
        try:
            if torn is not None:
                self._file.write(torn.cut(payload))
                self._file.flush()
                raise torn.error
            self._file.write(payload)
            self._file.flush()
        except Exception:
            try:
                self._file.truncate(start)
                self._file.seek(start)
            except OSError:  # pragma: no cover - rollback best-effort
                pass
            raise
        if self.sync:
            os.fsync(self._file.fileno())
        self._last_lsn = lsn
        return lsn

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def wal_health(path: str | pathlib.Path) -> dict:
    """Offline WAL inspection for the ``openivm health`` report.

    Unlike :meth:`WriteAheadLog.open`, this never truncates — it reports
    the torn tail (if any) so the operator sees the pre-recovery state of
    the file.  A CRC mismatch on a complete record flips ``valid`` to
    False with the error message attached.
    """
    path = pathlib.Path(path)
    report = {
        "path": str(path),
        "exists": path.exists(),
        "valid": True,
        "records": 0,
        "last_lsn": 0,
        "size_bytes": 0,
        "valid_bytes": 0,
        "torn_tail_bytes": 0,
        "error": None,
    }
    if not path.exists():
        return report
    report["size_bytes"] = path.stat().st_size
    try:
        records, valid_size = read_records(path)
    except WALError as error:
        report["valid"] = False
        report["error"] = str(error)
        return report
    report["records"] = len(records)
    report["last_lsn"] = records[-1].lsn if records else 0
    report["valid_bytes"] = valid_size
    report["torn_tail_bytes"] = max(0, report["size_bytes"] - valid_size)
    return report
