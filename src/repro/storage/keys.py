"""Order-preserving byte encoding of SQL key tuples.

ART indexes keys by raw bytes; for range scans and ordered iteration to be
meaningful, the encoding must be *memcomparable*: byte-wise comparison of
encoded keys must equal SQL comparison of the original tuples.  The layout
per value is a one-byte type tag followed by a payload:

* NULL        → tag 0x00, no payload (sorts first, as in DuckDB ORDER BY).
* booleans    → tag 0x01, payload 0x00/0x01.
* numbers     → tag 0x02, 8-byte big-endian transformed IEEE-754 double
                (sign-flip trick), so ints and floats interleave correctly.
* strings     → tag 0x03, UTF-8 with 0x00 escaped as 0x00 0xFF, terminated
                by 0x00 0x00 (so prefixes sort before extensions).
* dates       → tag 0x02 with the proleptic ordinal as the number payload
                (dates and their ISO strings are normalized before keying).

Integers above 2**53 would lose precision through the double transform, so
they get an exact big-int path under the same tag ordering guarantees only
when within range; out-of-range ints raise, which no workload here hits.
"""

from __future__ import annotations

import datetime
import struct
from typing import Any, Sequence

from repro.errors import TypeError_

_TAG_NULL = b"\x00"
_TAG_BOOL = b"\x01"
_TAG_NUMBER = b"\x02"
_TAG_STRING = b"\x03"

_MAX_EXACT_INT = 2**53


def _encode_number(value: float) -> bytes:
    # IEEE-754 total-order trick: flip all bits of negative numbers, flip
    # just the sign bit of non-negatives.  Resulting bytes sort like floats.
    value = float(value)
    if value == 0.0:
        value = 0.0  # -0.0 == 0 in SQL; normalize so equal values encode equal
    bits = struct.unpack(">Q", struct.pack(">d", value))[0]
    if bits & 0x8000_0000_0000_0000:
        bits ^= 0xFFFF_FFFF_FFFF_FFFF
    else:
        bits ^= 0x8000_0000_0000_0000
    return struct.pack(">Q", bits)


def _decode_number(payload: bytes) -> float:
    bits = struct.unpack(">Q", payload)[0]
    if bits & 0x8000_0000_0000_0000:
        bits ^= 0x8000_0000_0000_0000
    else:
        bits ^= 0xFFFF_FFFF_FFFF_FFFF
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def _encode_string(value: str) -> bytes:
    encoded = value.encode("utf-8").replace(b"\x00", b"\x00\xff")
    return encoded + b"\x00\x00"


def encode_value(value: Any) -> bytes:
    """Encode one SQL value with its type tag."""
    if value is None:
        return _TAG_NULL
    if isinstance(value, bool):
        return _TAG_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        if abs(value) > _MAX_EXACT_INT:
            raise TypeError_(f"integer key {value} exceeds exact-encoding range")
        return _TAG_NUMBER + _encode_number(float(value))
    if isinstance(value, float):
        return _TAG_NUMBER + _encode_number(value)
    if isinstance(value, datetime.date):
        return _TAG_NUMBER + _encode_number(float(value.toordinal()))
    if isinstance(value, str):
        return _TAG_STRING + _encode_string(value)
    raise TypeError_(f"cannot encode {value!r} as an index key")


def encode_key(values: Sequence[Any]) -> bytes:
    """Encode a composite key tuple into one memcomparable byte string."""
    return b"".join(encode_value(v) for v in values)


def decode_key(key: bytes) -> list[Any]:
    """Decode a key back into values (numbers come back as floats).

    Mainly used by tests to verify the ordering property and by debugging
    tools; table storage keeps the original values alongside row ids, so
    lossless decoding is not required on the hot path.
    """
    values: list[Any] = []
    pos = 0
    while pos < len(key):
        tag = key[pos:pos + 1]
        pos += 1
        if tag == _TAG_NULL:
            values.append(None)
        elif tag == _TAG_BOOL:
            values.append(key[pos] == 1)
            pos += 1
        elif tag == _TAG_NUMBER:
            values.append(_decode_number(key[pos:pos + 8]))
            pos += 8
        elif tag == _TAG_STRING:
            end = key.find(b"\x00\x00", pos)
            while end != -1 and key[end:end + 3] == b"\x00\xff\x00":
                # The 0x00 we found is an escaped NUL, keep scanning.
                end = key.find(b"\x00\x00", end + 2)
            if end == -1:
                raise TypeError_("corrupt string key: missing terminator")
            raw = key[pos:end].replace(b"\x00\xff", b"\x00")
            values.append(raw.decode("utf-8"))
            pos = end + 2
        else:
            raise TypeError_(f"corrupt key: unknown tag {tag!r}")
    return values
