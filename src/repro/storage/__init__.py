"""Storage substrate: row store, ART index, order-preserving key encoding."""

from repro.storage.art import ARTIndex
from repro.storage.keys import decode_key, encode_key
from repro.storage.table import Table

__all__ = ["ARTIndex", "Table", "decode_key", "encode_key"]
