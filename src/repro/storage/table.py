"""Row-store table with primary-key enforcement and index maintenance.

Rows are Python tuples stored in a slotted list; deleted slots are reused
lazily.  Each table maintains zero or more ART indexes; the primary key
(when declared) is a unique ART index, which is what makes `INSERT OR
REPLACE` (upsert) efficient — the same role DuckDB's ART plays in the
paper's aggregate-maintenance plans.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, Sequence

from repro.catalog.schema import TableSchema
from repro.datatypes.values import coerce_for_storage
from repro.errors import ConstraintError, ExecutionError
from repro.storage.art import ARTIndex
from repro.storage.keys import encode_key

Row = tuple


class Table:
    """Mutable table storage bound to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[Row | None] = []
        self._free_slots: list[int] = []
        self._live_count = 0
        self._indexes: dict[str, tuple[list[int], ARTIndex]] = {}
        # Columnar (struct-of-arrays) mirror of the live rows in scan
        # order, built lazily by scan_columns() and kept valid across
        # tail appends; any other mutation invalidates it (dirty bit via
        # None).  Tables never read columnarly never pay for it.
        self._columns_cache: list[list] | None = None
        # Guards the cache and the snapshot state below.  Cache lists
        # handed to a caller are never mutated afterwards: once
        # _cache_shared is set, the next tail append publishes fresh
        # list objects and swaps them in (publish-then-swap), so a
        # reader on another thread can never observe torn column
        # lengths mid-extend.
        self._cache_lock = threading.Lock()
        self._cache_shared = False
        # Snapshot-read state (epoch pinning).  While pinned, the first
        # mutation parks the current row list as the read epoch and
        # swaps self._rows for a shallow copy; readers on threads other
        # than the pinning owner scan the parked epoch and therefore
        # never see a half-applied refresh.  Slot ids stay valid for
        # both lists, so ART row ids keep working either way.
        self._snapshot_pinned = False
        self._snapshot_owner: int | None = None
        self._snapshot_rows: list[Row | None] | None = None
        self._snapshot_columns: list[list] | None = None
        # Parked alongside the rows at copy-on-write time so a failed
        # refresh can be aborted: restoring _rows without the matching
        # free list / live count would let a later insert overwrite a
        # live slot.
        self._snapshot_free_slots: list[int] | None = None
        self._snapshot_live_count = 0
        if schema.primary_key:
            self.add_index(
                "__pk__", schema.primary_key_indexes, unique=True
            )

    # -- row access --------------------------------------------------------

    def __len__(self) -> int:
        return self._live_count

    def scan(self) -> Iterator[Row]:
        """Yield live rows in slot order (the pinned epoch for readers
        racing a snapshot-pinned refresh)."""
        for row in self._reader_rows():
            if row is not None:
                yield row

    def scan_with_ids(self) -> Iterator[tuple[int, Row]]:
        for row_id, row in enumerate(self._reader_rows()):
            if row is not None:
                yield row_id, row

    def scan_columns(self) -> list[list]:
        """Live rows transposed into per-column value lists (struct-of-
        arrays order matches the schema).  The result is a cached mirror
        maintained incrementally across tail appends (the delta-table
        ingest pattern: append-heavy, truncated wholesale), so repeated
        refreshes don't re-transpose the whole table; deletes and
        updates invalidate it.  Callers must not mutate the returned
        lists; the lists they receive are frozen — a later append
        publishes fresh list objects instead of extending these."""
        with self._cache_lock:
            snapshot = self._snapshot_rows
            if (
                snapshot is not None
                and threading.get_ident() != self._snapshot_owner
            ):
                if self._snapshot_columns is None:
                    self._snapshot_columns = self._transpose(snapshot)
                return self._snapshot_columns
            if self._columns_cache is None:
                self._columns_cache = self._transpose(self._rows)
            self._cache_shared = True
            return self._columns_cache

    def _transpose(self, rows: Sequence[Row | None]) -> list[list]:
        columns: list[list] = [[] for _ in self.schema.columns]
        for row in rows:
            if row is not None:
                for j, value in enumerate(row):
                    columns[j].append(value)
        return columns

    def _reader_rows(self) -> list[Row | None]:
        """The row list this thread should scan: the parked snapshot
        epoch while a refresh on another thread holds the pin, else the
        live rows (the pinning thread always sees its own writes)."""
        snapshot = self._snapshot_rows
        if (
            snapshot is not None
            and threading.get_ident() != self._snapshot_owner
        ):
            return snapshot
        return self._rows

    # -- snapshot pinning ---------------------------------------------------

    def begin_refresh_snapshot(self) -> None:
        """Pin the current epoch for the calling (refresher) thread.

        Until :meth:`commit_refresh_snapshot`, the first mutation parks
        the pre-refresh row list; readers on other threads scan that
        parked epoch, so a refresh is invisible until it commits.  The
        copy is lazy — an unpinned or mutation-free refresh costs
        nothing."""
        with self._cache_lock:
            self._snapshot_pinned = True
            self._snapshot_owner = threading.get_ident()
            self._snapshot_rows = None
            self._snapshot_columns = None

    def commit_refresh_snapshot(self) -> None:
        """Publish the refreshed state: drop the parked epoch so all
        threads read the live rows again."""
        with self._cache_lock:
            self._snapshot_pinned = False
            self._snapshot_owner = None
            self._snapshot_rows = None
            self._snapshot_columns = None
            self._snapshot_free_slots = None
            self._snapshot_live_count = 0

    def abort_refresh_snapshot(self) -> None:
        """Throw away the refresh's writes and restore the pinned epoch.

        The inverse of :meth:`commit_refresh_snapshot` for a refresh that
        raised mid-pipeline: the parked row list, columnar mirror, free
        list, and live count become current again, so readers — and the
        next mutation — see the pre-refresh state instead of a
        half-applied one.  ART index entries added by the failed refresh
        are *not* rolled back (the indexes are not parked); the caller
        must schedule a full recompute of the table, whose
        :meth:`truncate` rebuilds every index from scratch.  Without a
        parked epoch (no mutation happened, or the table was never
        pinned) this just releases the pin."""
        with self._cache_lock:
            if self._snapshot_rows is not None:
                self._rows = self._snapshot_rows
                self._columns_cache = self._snapshot_columns
                if self._snapshot_free_slots is not None:
                    self._free_slots = self._snapshot_free_slots
                self._live_count = self._snapshot_live_count
            self._snapshot_pinned = False
            self._snapshot_owner = None
            self._snapshot_rows = None
            self._snapshot_columns = None
            self._snapshot_free_slots = None
            self._snapshot_live_count = 0

    def _maybe_cow(self) -> None:
        """Copy-on-first-write under a snapshot pin: park the current
        row list as the read epoch and mutate a shallow copy.  Slot ids
        are preserved, so index row ids resolve in both lists."""
        if not self._snapshot_pinned or self._snapshot_rows is not None:
            return
        with self._cache_lock:
            if not self._snapshot_pinned or self._snapshot_rows is not None:
                return
            # Freeze the columnar mirror alongside the rows: readers of
            # the parked epoch may reuse it, so later appends must
            # publish fresh lists rather than extend these.
            self._snapshot_columns = self._columns_cache
            self._cache_shared = True
            self._snapshot_rows = self._rows
            self._snapshot_free_slots = list(self._free_slots)
            self._snapshot_live_count = self._live_count
            self._rows = list(self._rows)

    def row(self, row_id: int) -> Row:
        row = self._rows[row_id]
        if row is None:
            raise ExecutionError(f"row id {row_id} is deleted")
        return row

    # -- mutation -----------------------------------------------------------

    def insert(self, values: Sequence[Any], coerce: bool = True) -> int:
        """Insert one row; returns its row id.

        Coerces values to the declared column types and enforces NOT NULL
        and primary-key uniqueness.
        """
        columns = self.schema.columns
        if len(values) != len(columns):
            raise ExecutionError(
                f"table {self.schema.name!r} expects {len(columns)} values, "
                f"got {len(values)}"
            )
        if coerce:
            row = tuple(
                coerce_for_storage(value, column.type)
                for value, column in zip(values, columns)
            )
        else:
            row = tuple(values)
        for value, column in zip(row, columns):
            if value is None and column.not_null:
                raise ConstraintError(
                    f"NOT NULL constraint failed: {self.schema.name}.{column.name}"
                )
        self._maybe_cow()
        reused_slot = bool(self._free_slots)
        row_id = self._allocate_slot(row)
        try:
            self._index_insert(row_id, row)
        except ConstraintError:
            # Exact undo: a reused slot goes back on the free list (it
            # was popped from the tail, so appending restores the order),
            # a tail slot is truncated away rather than free-listed.
            if reused_slot:
                self._rows[row_id] = None
                self._free_slots.append(row_id)
            else:
                del self._rows[row_id:]
            raise
        self._live_count += 1
        self._cache_append(row, reused_slot)
        return row_id

    def insert_batch(
        self, rows: Sequence[Sequence[Any]], coerce: bool = True
    ) -> int:
        """Append a block of rows at once; returns how many were inserted.

        The columnar counterpart of :meth:`insert` and the write half of
        the engine's batched ingestion path: coercion and NOT NULL checks
        run column-at-a-time, slots are allocated in one extend, and each
        index is maintained with a single sorted pass over the batch's
        encoded keys instead of per-row inserts.  The batch is atomic —
        a constraint violation rolls back every row of it (per-row
        :meth:`insert` leaves the prefix in place instead).
        """
        columns = self.schema.columns
        width = len(columns)
        prepared: list[Row] = []
        for values in rows:
            if len(values) != width:
                raise ExecutionError(
                    f"table {self.schema.name!r} expects {width} values, "
                    f"got {len(values)}"
                )
            prepared.append(tuple(values))
        if not prepared:
            return 0
        if coerce:
            cols = list(zip(*prepared))
            cols = [
                [coerce_for_storage(value, column.type) for value in col]
                for col, column in zip(cols, columns)
            ]
            prepared = list(zip(*cols))
        for j, column in enumerate(columns):
            if column.not_null:
                for row in prepared:
                    if row[j] is None:
                        raise ConstraintError(
                            f"NOT NULL constraint failed: "
                            f"{self.schema.name}.{column.name}"
                        )

        self._maybe_cow()
        reused_slots = bool(self._free_slots)
        tail_start = len(self._rows)
        row_ids = self._allocate_slots(prepared)
        inserted: list[tuple[str, list[tuple[bytes, int]]]] = []
        try:
            for name, (key_columns, index) in self._indexes.items():
                entries = [
                    (encode_key([row[i] for i in key_columns]), row_id)
                    for row, row_id in zip(prepared, row_ids)
                ]
                # One sorted pass per index: duplicate keys inside the
                # batch become adjacent (cheap unique pre-check) and the
                # ART is fed in key order.
                entries.sort(key=lambda entry: entry[0])
                if index.unique:
                    for (a, _), (b, _) in zip(entries, entries[1:]):
                        if a == b:
                            raise ConstraintError(
                                f"duplicate key violates unique constraint "
                                f"on {self.schema.name!r} ({name})"
                            )
                done: list[tuple[bytes, int]] = []
                try:
                    for key, row_id in entries:
                        index.insert(key, row_id)
                        done.append((key, row_id))
                except ConstraintError:
                    for key, row_id in done:
                        index.delete(key, row_id)
                    raise ConstraintError(
                        f"duplicate key violates unique constraint on "
                        f"{self.schema.name!r} ({name})"
                    ) from None
                inserted.append((name, entries))
        except ConstraintError:
            for name, entries in inserted:
                undo = self._indexes[name][1]
                for key, row_id in entries:
                    undo.delete(key, row_id)
            # Exact undo of _allocate_slots: truncate the tail extend
            # and re-free the reused slots in reverse pop order, so the
            # row list and free list match the pre-batch state
            # byte-for-byte (release-listing tail slots would leave
            # phantom None entries behind).
            del self._rows[tail_start:]
            for row_id in reversed(row_ids):
                if row_id < tail_start:
                    self._rows[row_id] = None
                    self._free_slots.append(row_id)
            raise
        self._live_count += len(prepared)
        with self._cache_lock:
            if self._columns_cache is not None:
                if reused_slots:
                    self._columns_cache = None
                else:
                    if self._cache_shared:
                        self._columns_cache = [
                            list(c) for c in self._columns_cache
                        ]
                        self._cache_shared = False
                    for j, cached in enumerate(self._columns_cache):
                        cached.extend(row[j] for row in prepared)
        return len(prepared)

    def upsert(self, values: Sequence[Any]) -> int:
        """INSERT OR REPLACE semantics over the primary key.

        Requires a primary key (DuckDB likewise requires an ART index for
        `INSERT OR REPLACE`, as the paper notes).
        """
        if not self.schema.primary_key:
            raise ExecutionError(
                f"INSERT OR REPLACE on {self.schema.name!r} requires a PRIMARY KEY"
            )
        columns = self.schema.columns
        row = tuple(
            coerce_for_storage(value, column.type)
            for value, column in zip(values, columns)
        )
        key_columns, index = self._indexes["__pk__"]
        key = encode_key([row[i] for i in key_columns])
        existing = index.search(key)
        if existing:
            self.delete_row(existing[0])
        return self.insert(row, coerce=False)

    def upsert_batch(
        self,
        rows: Sequence[Sequence[Any]],
        replaced_out: list | None = None,
        survivors_out: list | None = None,
    ) -> int:
        """INSERT OR REPLACE a block of rows over the primary key.

        Matches a sequence of :meth:`upsert` calls — later rows win on
        intra-batch key collisions — but replaces existing rows with one
        encoded-key pass and appends the survivors through
        :meth:`insert_batch`.  Atomic like :meth:`insert_batch`: if the
        insert half fails (NOT NULL, secondary unique), the replaced rows
        are restored before the error propagates.  Returns the number of
        input rows.

        ``replaced_out`` / ``survivors_out``, when given, receive the old
        rows this batch displaced and the deduped rows it inserted —
        extended only on success, so trigger-firing callers can report
        the exact stored-row delta (retract replaced, insert survivors).
        """
        if not self.schema.primary_key:
            raise ExecutionError(
                f"INSERT OR REPLACE on {self.schema.name!r} requires a PRIMARY KEY"
            )
        columns = self.schema.columns
        key_columns, index = self._indexes["__pk__"]
        count = 0
        deduped: dict[bytes, Row] = {}
        for values in rows:
            if len(values) != len(columns):
                # Checked before any row is replaced (zip would silently
                # truncate and insert_batch would reject too late).
                raise ExecutionError(
                    f"table {self.schema.name!r} expects {len(columns)} "
                    f"values, got {len(values)}"
                )
            row = tuple(
                coerce_for_storage(value, column.type)
                for value, column in zip(values, columns)
            )
            deduped[encode_key([row[i] for i in key_columns])] = row
            count += 1
        replaced: list[tuple[int, Row]] = []
        for key in deduped:
            for row_id in index.search(key):
                replaced.append((row_id, self.delete_row(row_id)))
        try:
            self.insert_batch(list(deduped.values()), coerce=False)
        except Exception:
            # The replaced rows coexisted before, so restoring them
            # cannot itself violate a constraint.  Each goes back into
            # its *original* slot (insert_batch already rolled its own
            # allocations back, leaving the free list exactly as the
            # deletes left it), so index row ids, the free list, and the
            # row list match the pre-batch state byte-for-byte.
            restore_ids = {row_id for row_id, _ in replaced}
            self._free_slots = [
                slot for slot in self._free_slots if slot not in restore_ids
            ]
            for row_id, row in replaced:
                self._rows[row_id] = row
                self._index_insert(row_id, row)
            self._live_count += len(replaced)
            self._invalidate_cache()
            raise
        if replaced_out is not None:
            replaced_out.extend(row for _, row in replaced)
        if survivors_out is not None:
            survivors_out.extend(deduped.values())
        return count

    def delete_row(self, row_id: int) -> Row:
        """Delete by row id; returns the removed row."""
        row = self.row(row_id)
        self._maybe_cow()
        self._index_delete(row_id, row)
        self._release_slot(row_id)
        self._live_count -= 1
        self._invalidate_cache()
        return row

    def delete_by_key(self, key_values: Sequence[Any]) -> int:
        """Delete the row(s) matching a primary-key tuple; returns the
        count (0 when the key is absent).  Requires a primary key."""
        if "__pk__" not in self._indexes:
            raise ExecutionError(
                f"delete_by_key on {self.schema.name!r} requires a PRIMARY KEY"
            )
        row_ids = list(self.lookup_row_ids("__pk__", key_values))
        for row_id in row_ids:
            self.delete_row(row_id)
        return len(row_ids)

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete all rows matching ``predicate``; returns the count."""
        victims = [rid for rid, row in self.scan_with_ids() if predicate(row)]
        for row_id in victims:
            self.delete_row(row_id)
        return len(victims)

    def update_row(self, row_id: int, new_values: Sequence[Any]) -> tuple[Row, Row]:
        """Replace the row at ``row_id``; returns (old_row, new_row)."""
        old = self.row(row_id)
        columns = self.schema.columns
        new_row = tuple(
            coerce_for_storage(value, column.type)
            for value, column in zip(new_values, columns)
        )
        for value, column in zip(new_row, columns):
            if value is None and column.not_null:
                raise ConstraintError(
                    f"NOT NULL constraint failed: {self.schema.name}.{column.name}"
                )
        self._maybe_cow()
        self._index_delete(row_id, old)
        try:
            self._index_insert(row_id, new_row)
        except ConstraintError:
            self._index_insert(row_id, old)
            raise
        self._rows[row_id] = new_row
        self._invalidate_cache()
        return old, new_row

    def truncate(self) -> int:
        """Remove all rows; returns how many were removed."""
        count = self._live_count
        self._maybe_cow()
        self._rows.clear()
        self._free_slots.clear()
        self._live_count = 0
        self._invalidate_cache()
        for name, (key_columns, index) in list(self._indexes.items()):
            self._indexes[name] = (key_columns, ARTIndex(unique=index.unique))
        return count

    # -- indexes ------------------------------------------------------------

    def add_index(
        self, name: str, key_columns: Sequence[int], unique: bool = False,
        chunked: bool = False, chunk_size: int = 2048,
    ) -> ARTIndex:
        """Create and populate an ART index over ``key_columns``.

        ``chunked=True`` uses the chunk-build-and-merge strategy.
        """
        entries = [
            (encode_key([row[i] for i in key_columns]), row_id)
            for row_id, row in self.scan_with_ids()
        ]
        if chunked:
            index = ARTIndex.build_chunked(entries, chunk_size=chunk_size, unique=unique)
        else:
            index = ARTIndex(unique=unique)
            for key, row_id in entries:
                index.insert(key, row_id)
        self._indexes[name] = (list(key_columns), index)
        return index

    def drop_index(self, name: str) -> None:
        self._indexes.pop(name, None)

    def index(self, name: str) -> ARTIndex:
        return self._indexes[name][1]

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    def index_names(self) -> list[str]:
        return sorted(self._indexes)

    def lookup(self, name: str, key_values: Sequence[Any]) -> list[Row]:
        """Point lookup through a named index."""
        _, index = self._indexes[name]
        return [self.row(row_id) for row_id in index.search(encode_key(key_values))]

    def find_index_on(self, column_ordinals: Sequence[int]) -> str | None:
        """Name of an index whose key columns equal ``column_ordinals`` as a
        set (probe values are reordered to the index's column order), or
        None.  Used by the executor's index-nested-loop join."""
        wanted = sorted(column_ordinals)
        for name, (key_columns, _) in self._indexes.items():
            if sorted(key_columns) == wanted:
                return name
        return None

    def index_key_columns(self, name: str) -> list[int]:
        return list(self._indexes[name][0])

    def lookup_row_ids(self, name: str, key_values: Sequence[Any]) -> list[int]:
        """Row ids matching ``key_values`` (given in the index's key order)."""
        _, index = self._indexes[name]
        return index.search(encode_key(key_values))

    def pk_lookup(self, key_values: Sequence[Any]) -> Row | None:
        """Primary-key point lookup (None when absent or no PK declared)."""
        if "__pk__" not in self._indexes:
            return None
        rows = self.lookup("__pk__", key_values)
        return rows[0] if rows else None

    # -- internals ------------------------------------------------------------

    def _invalidate_cache(self) -> None:
        with self._cache_lock:
            self._columns_cache = None

    def _cache_append(self, row: Row, reused_slot: bool) -> None:
        """Keep the columnar mirror valid across a single insert.

        Tail appends extend the cached columns in place (scan order is
        slot order, so a new tail slot lands at the end); a reused middle
        slot would reorder the mirror, so it is dropped instead.  If the
        current lists were handed to a caller, fresh copies are
        published first so the caller's reference stays frozen.
        """
        with self._cache_lock:
            if self._columns_cache is None:
                return
            if reused_slot:
                self._columns_cache = None
                return
            if self._cache_shared:
                self._columns_cache = [list(c) for c in self._columns_cache]
                self._cache_shared = False
            for column, value in zip(self._columns_cache, row):
                column.append(value)

    def _allocate_slot(self, row: Row) -> int:
        if self._free_slots:
            row_id = self._free_slots.pop()
            self._rows[row_id] = row
            return row_id
        self._rows.append(row)
        return len(self._rows) - 1

    def _allocate_slots(self, rows: Sequence[Row]) -> list[int]:
        """Place a block of rows: free slots first, then one tail extend."""
        row_ids: list[int] = []
        filled = 0
        while self._free_slots and filled < len(rows):
            row_id = self._free_slots.pop()
            self._rows[row_id] = rows[filled]
            row_ids.append(row_id)
            filled += 1
        if filled < len(rows):
            start = len(self._rows)
            self._rows.extend(rows[filled:])
            row_ids.extend(range(start, len(self._rows)))
        return row_ids

    def _release_slot(self, row_id: int) -> None:
        self._rows[row_id] = None
        self._free_slots.append(row_id)

    def _index_insert(self, row_id: int, row: Row) -> None:
        inserted: list[tuple[str, bytes]] = []
        for name, (key_columns, index) in self._indexes.items():
            key = encode_key([row[i] for i in key_columns])
            try:
                index.insert(key, row_id)
            except ConstraintError:
                for done_name, done_key in inserted:
                    self._indexes[done_name][1].delete(done_key, row_id)
                raise ConstraintError(
                    f"duplicate key violates unique constraint on "
                    f"{self.schema.name!r} ({name})"
                ) from None
            inserted.append((name, key))

    def _index_delete(self, row_id: int, row: Row) -> None:
        for _, (key_columns, index) in self._indexes.items():
            key = encode_key([row[i] for i in key_columns])
            index.delete(key, row_id)
