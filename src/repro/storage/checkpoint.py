"""Checkpoints and replay-on-restart for the durability subsystem.

A checkpoint is one self-describing file capturing everything a fresh
process needs to rebuild the engine at a quiescent point (no refresh in
flight, step-level pendings empty):

* the catalog of *plain* base tables (schemas + secondary indexes) —
  view-owned tables (the materialized table, ΔV, the ΔT delta tables and
  the ``_duckdb_ivm_views`` metadata table) are recreated by re-running
  each view's compiled DDL instead, so the stored image can never drift
  from what the compiler would emit;
* every table's rows, serialized with the memcomparable row codec of
  :mod:`repro.storage.keys` (the same codec the WAL uses);
* every view's ``CREATE MATERIALIZED VIEW`` statement, in creation
  order, plus its pending-change counter;
* the incremental states of :mod:`repro.zset.incremental` — indexed
  join sides, group-liveness counters, per-column extrema multisets —
  as flat ``dump()`` images;
* the WAL LSN the image covers.  Recovery replays only records past it.

File layout (all integers big-endian)::

    magic "IVMCKPT1" | u64 lsn | u32 meta_len | meta JSON
    | u32 nsections | section... | u32 crc32(everything before)

    section := u16 name_len | name utf8 | u32 nrows
               | (u32 row_len | encode_key(row))...

Files are named ``checkpoint-<seq:08d>.ckpt`` and written in one
``write_bytes`` call; a crash mid-write leaves a file whose trailing CRC
cannot match, and the reader simply skips it and falls back to the
previous sequence number.  Old checkpoints are pruned down to
:data:`KEEP_CHECKPOINTS`.

Decoded rows come back through :func:`repro.storage.keys.decode_key`,
which widens every number to float and dates to ordinal floats; restore
paths therefore coerce each value by the owning table schema
(:func:`coerce_decoded_row`) before it re-enters storage.

See ``docs/durability.md`` for the full protocol.
"""

from __future__ import annotations

import datetime
import enum
import json
import pathlib
import struct
from dataclasses import dataclass, fields as dataclass_fields
from typing import TYPE_CHECKING, Iterable
from zlib import crc32

from repro.catalog.schema import Column, IndexSchema, TableSchema
from repro.core.flags import CompilerFlags, MaterializationStrategy, PropagationMode
from repro.datatypes.types import DataType, TypeId
from repro.datatypes.values import cast_value
from repro.errors import RecoveryError
from repro.storage.keys import decode_key, encode_key
from repro.storage.wal import WriteAheadLog, read_records

if TYPE_CHECKING:
    from repro.engine.connection import Connection
    from repro.extension.ivm_extension import IVMExtension

MAGIC = b"IVMCKPT1"
WAL_FILENAME = "wal.log"
CHECKPOINT_PATTERN = "checkpoint-*.ckpt"
KEEP_CHECKPOINTS = 3
METADATA_TABLE = "_duckdb_ivm_views"

_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")


# -- value coercion ---------------------------------------------------------


def coerce_decoded_value(value, dtype: DataType):
    """Undo the widening of the memcomparable codec for one value.

    ``decode_key`` returns every number as float and every date as its
    ordinal-as-float; ``cast_value`` recovers ints but will not cast a
    float back to DATE, so that case is handled here explicitly.
    """
    if value is None:
        return None
    if dtype.id is TypeId.DATE and isinstance(value, (int, float)):
        return datetime.date.fromordinal(int(value))
    return cast_value(value, dtype)


def coerce_decoded_row(row: tuple, schema: TableSchema) -> tuple:
    """Coerce a decoded row back to the column types of ``schema``."""
    return tuple(
        coerce_decoded_value(value, column.type)
        for value, column in zip(row, schema.columns)
    )


def restore_state_value(value, dtype: DataType | None):
    """Byte-identity-preserving restore for incremental-state entries.

    The states (join sides, liveness counters, extrema multisets) hold
    whatever the capture path carried — stored-typed objects from base
    scans and DELETE captures, *raw literals* (e.g. an ISO date string)
    from INSERT captures — and address entries by their memcomparable
    encoding, where both spellings coexist.  A full schema cast would
    merge a raw-string cell into the typed one and change its bytes, so
    only the codec's lossy decodes are undone: a float that was a date
    (identical encodings) or an int.  Everything else is kept verbatim.
    """
    if isinstance(value, float) and dtype is not None:
        if dtype.id is TypeId.DATE and value.is_integer():
            return datetime.date.fromordinal(int(value))
        if dtype.id in (TypeId.INTEGER, TypeId.BIGINT) and value.is_integer():
            return int(value)
    return value


def restore_state_row(row: tuple, schema: TableSchema) -> tuple:
    """Apply :func:`restore_state_value` columnwise; extra trailing values
    (beyond the schema) are kept verbatim."""
    restored = [
        restore_state_value(value, column.type)
        for value, column in zip(row, schema.columns)
    ]
    restored.extend(row[len(schema.columns):])
    return tuple(restored)


# -- flags (de)serialization ------------------------------------------------


def flags_to_json(flags: CompilerFlags) -> dict:
    out = {}
    for spec in dataclass_fields(flags):
        if spec.name == "fault_plan":
            continue  # a live object, not config — never persisted
        value = getattr(flags, spec.name)
        if isinstance(value, enum.Enum):
            value = value.value
        elif isinstance(value, tuple):
            value = list(value)
        out[spec.name] = value
    return out


def flags_from_json(data: dict) -> CompilerFlags:
    known = {spec.name for spec in dataclass_fields(CompilerFlags)}
    kwargs = {name: value for name, value in data.items() if name in known}
    if "strategy" in kwargs:
        kwargs["strategy"] = MaterializationStrategy(kwargs["strategy"])
    if "mode" in kwargs:
        kwargs["mode"] = PropagationMode(kwargs["mode"])
    if "native_steps" in kwargs:
        kwargs["native_steps"] = tuple(kwargs["native_steps"])
    return CompilerFlags(**kwargs)


# -- checkpoint files -------------------------------------------------------


@dataclass
class Checkpoint:
    """One decoded checkpoint image."""

    lsn: int
    meta: dict
    sections: dict[str, list[tuple]]
    path: pathlib.Path | None = None


def encode_checkpoint(
    lsn: int,
    meta: dict,
    sections: dict[str, Iterable[tuple]],
) -> bytes:
    """Serialize one checkpoint image (payload + CRC trailer) to bytes."""
    parts: list[bytes] = [MAGIC, _U64.pack(lsn)]
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    parts.append(_U32.pack(len(meta_bytes)))
    parts.append(meta_bytes)
    parts.append(_U32.pack(len(sections)))
    for name, rows in sections.items():
        name_bytes = name.encode("utf-8")
        parts.append(_U16.pack(len(name_bytes)))
        parts.append(name_bytes)
        encoded = [encode_key(row) for row in rows]
        parts.append(_U32.pack(len(encoded)))
        for row_bytes in encoded:
            parts.append(_U32.pack(len(row_bytes)))
            parts.append(row_bytes)
    payload = b"".join(parts)
    return payload + _U32.pack(crc32(payload))


def write_checkpoint(
    path: pathlib.Path,
    lsn: int,
    meta: dict,
    sections: dict[str, Iterable[tuple]],
) -> None:
    """Serialize one checkpoint image to ``path`` in a single write."""
    path.write_bytes(encode_checkpoint(lsn, meta, sections))


def read_checkpoint(path: pathlib.Path) -> Checkpoint | None:
    """Decode ``path``; None when missing, torn, or corrupt.

    Invalid files are skipped rather than raised on: the previous
    checkpoint in the sequence is always a consistent fallback, which is
    what makes the non-atomic single-write protocol safe.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return None
    if len(data) < len(MAGIC) + 8 + 4 + 4 + 4:
        return None
    if not data.startswith(MAGIC):
        return None
    payload, trailer = data[:-4], data[-4:]
    if crc32(payload) != _U32.unpack(trailer)[0]:
        return None
    try:
        offset = len(MAGIC)
        (lsn,) = _U64.unpack_from(payload, offset)
        offset += 8
        (meta_len,) = _U32.unpack_from(payload, offset)
        offset += 4
        meta = json.loads(payload[offset : offset + meta_len].decode("utf-8"))
        offset += meta_len
        (nsections,) = _U32.unpack_from(payload, offset)
        offset += 4
        sections: dict[str, list[tuple]] = {}
        for _ in range(nsections):
            (name_len,) = _U16.unpack_from(payload, offset)
            offset += 2
            name = payload[offset : offset + name_len].decode("utf-8")
            offset += name_len
            (nrows,) = _U32.unpack_from(payload, offset)
            offset += 4
            rows = []
            for _ in range(nrows):
                (row_len,) = _U32.unpack_from(payload, offset)
                offset += 4
                rows.append(tuple(decode_key(payload[offset : offset + row_len])))
                offset += row_len
            sections[name] = rows
        if offset != len(payload):
            return None
    except (struct.error, ValueError, UnicodeDecodeError):
        return None
    return Checkpoint(lsn=lsn, meta=meta, sections=sections, path=path)


def _checkpoint_seq(path: pathlib.Path) -> int | None:
    stem = path.stem  # checkpoint-00000007
    prefix, _, digits = stem.partition("-")
    if prefix != "checkpoint" or not digits.isdigit():
        return None
    return int(digits)


def _checkpoint_paths(directory: pathlib.Path) -> list[tuple[int, pathlib.Path]]:
    found = []
    for path in directory.glob(CHECKPOINT_PATTERN):
        seq = _checkpoint_seq(path)
        if seq is not None:
            found.append((seq, path))
    return sorted(found)


def latest_checkpoint(directory: pathlib.Path) -> Checkpoint | None:
    """Newest decodable checkpoint in ``directory`` (descending seq scan,
    skipping torn/corrupt candidates), or None."""
    for _, path in reversed(_checkpoint_paths(directory)):
        checkpoint = read_checkpoint(path)
        if checkpoint is not None:
            return checkpoint
    return None


# -- building a checkpoint image -------------------------------------------


def build_checkpoint_payload(
    connection: "Connection", extension: "IVMExtension"
) -> tuple[dict, dict[str, list[tuple]]]:
    """Snapshot the engine into (meta, sections) for write_checkpoint.

    Must run at a quiescent point — the extension only calls it between
    statements, never mid-refresh.
    """
    view_states = list(extension._views.values())  # creation order
    owned = {METADATA_TABLE.lower()}
    views_meta = []
    for state in view_states:
        compiled = state.compiled
        owned.add(compiled.name.lower())
        owned.add(compiled.delta_view_table.lower())
        for delta in compiled.delta_tables.values():
            owned.add(delta.lower())
        views_meta.append(
            {
                "name": compiled.name,
                "sql": (
                    f"CREATE MATERIALIZED VIEW {compiled.name} "
                    f"AS {compiled.view_sql}"
                ),
                "pending_changes": state.pending_changes,
            }
        )

    tables_meta = []
    indexes_meta = []
    sections: dict[str, list[tuple]] = {}
    for table in connection.catalog.tables():
        name = table.schema.name
        if name.lower() == METADATA_TABLE.lower():
            continue  # rebuilt by each view's DDL (metadata_insert)
        sections[f"rows:{name.lower()}"] = [tuple(row) for row in table.scan()]
        if name.lower() in owned:
            continue  # schema comes from the view's compiled DDL
        tables_meta.append(
            {
                "name": name,
                "columns": [
                    [c.name, c.type.id.value, c.type.width, c.not_null]
                    for c in table.schema.columns
                ],
                "primary_key": list(table.schema.primary_key),
            }
        )
        for index in connection.catalog.indexes_on(name):
            indexes_meta.append(
                {
                    "name": index.name,
                    "table": index.table,
                    "columns": list(index.columns),
                    "unique": index.unique,
                }
            )

    for state in view_states:
        compiled = state.compiled
        vkey = compiled.name.lower()
        join_state, counters, sources = _native_states(compiled)
        if join_state is not None:
            sections[f"state:{vkey}:join"] = [
                (side,) + tuple(row) + (weight,)
                for side, row, weight in join_state.dump()
            ]
        if counters is not None:
            sections[f"state:{vkey}:live"] = [
                tuple(key) + (count,) for key, count in counters.dump()
            ]
        for ordinal, source in sources.items():
            sections[f"state:{vkey}:ext:{ordinal}"] = [
                tuple(key) + (value, count)
                for key, value, count in source.state.dump()
            ]

    meta = {
        "version": 1,
        "flags": flags_to_json(extension.flags),
        "tables": tables_meta,
        "indexes": indexes_meta,
        "views": views_meta,
    }
    return meta, sections


def _native_states(compiled):
    """(join_state, liveness_counters, extrema_sources) of a compiled view,
    whichever of the three its native pipeline carries (None/{} otherwise)."""
    join_state = None
    counters = None
    sources: dict = {}
    for step in compiled.native_steps:
        if step.name == "sharded":
            if step.step1.is_join:
                join_state = step.step1.state
            counters = step.step3.counters
            if step.step2b is not None:
                sources = step.step2b.sources
        elif step.name == "step1" and getattr(step, "is_join", False):
            join_state = step.state
        elif step.name == "step3":
            counters = step.counters
        elif step.name == "step2b":
            sources = step.sources
    return join_state, counters, sources


# -- the durability manager -------------------------------------------------


class DurabilityManager:
    """Owns one durability directory: the WAL plus its checkpoints.

    Created by the extension when ``flags.durability`` is on and a
    directory was passed to ``load_ivm``; opening it truncates any torn
    WAL tail left by a previous crash.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        extension: "IVMExtension",
        sync: bool = False,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.extension = extension
        self.wal = WriteAheadLog.open(
            self.directory / WAL_FILENAME,
            sync=sync,
            fault_plan=getattr(extension.flags, "fault_plan", None),
        )
        self.keep_checkpoints = KEEP_CHECKPOINTS
        self._refreshes_since_checkpoint = 0
        # Set by the extension when the ingest queue is on: checkpoints
        # must drain queued batches to WAL + ΔT first, or the image
        # would cover base rows whose deltas exist nowhere durable.
        self.pre_checkpoint_hook = None
        self.checkpoint_failures = 0

    @property
    def wal_path(self) -> pathlib.Path:
        return self.directory / WAL_FILENAME

    def log_delta(self, base_table: str, delta_rows) -> int:
        """Append one captured delta batch; returns its LSN.  Called by
        the capture trigger *before* the rows reach ΔT."""
        return self.wal.append(base_table, delta_rows)

    def note_refresh(self) -> None:
        """Periodic-checkpoint hook, called after each completed refresh.

        A *periodic* checkpoint failure is swallowed (and counted in
        ``checkpoint_failures``): the WAL still covers everything since
        the last good image, and the reader skips a torn candidate, so
        durability degrades only in recovery time, never correctness.
        Explicit ``checkpoint()`` calls still raise.
        """
        every = self.extension.flags.checkpoint_every
        if every <= 0:
            return
        self._refreshes_since_checkpoint += 1
        if self._refreshes_since_checkpoint >= every:
            try:
                self.checkpoint()
            except Exception:
                self._refreshes_since_checkpoint = 0

    def checkpoint(self) -> pathlib.Path:
        """Write a new checkpoint covering everything up to the current
        WAL LSN, then prune old ones.

        ``checkpoint.write`` is a named fault-injection site: ``error``
        faults raise before any bytes are written; ``torn`` faults
        persist a prefix of the image and then raise — the CRC trailer
        cannot match, so the reader falls back to the previous sequence
        number, exactly like a crash mid-write.
        """
        if self.pre_checkpoint_hook is not None:
            self.pre_checkpoint_hook()
        try:
            connection = self.extension._require_connection()
            meta, sections = build_checkpoint_payload(
                connection, self.extension
            )
            existing = _checkpoint_paths(self.directory)
            seq = (existing[-1][0] + 1) if existing else 1
            path = self.directory / f"checkpoint-{seq:08d}.ckpt"
            plan = getattr(self.extension.flags, "fault_plan", None)
            torn = None
            if plan is not None:
                torn = plan.check("checkpoint.write", seq=seq)
            data = encode_checkpoint(self.wal.last_lsn, meta, sections)
            if torn is not None:
                path.write_bytes(torn.cut(data))
                raise torn.error
            path.write_bytes(data)
        except Exception:
            self.checkpoint_failures += 1
            raise
        self._refreshes_since_checkpoint = 0
        for _, old in _checkpoint_paths(self.directory)[: -self.keep_checkpoints]:
            try:
                old.unlink()
            except OSError:
                pass
        return path

    def close(self) -> None:
        self.wal.close()


# -- recovery ---------------------------------------------------------------


def recover_connection(
    directory: str | pathlib.Path,
    flags: CompilerFlags | None = None,
) -> tuple["Connection", "IVMExtension"]:
    """Rebuild a connection from a durability directory.

    Protocol: load the newest valid checkpoint; recreate the plain
    tables, then the views (DDL only — rows and incremental states come
    from the image, the initial populate never runs); replay WAL records
    past the checkpoint's LSN directly into the base and delta tables
    (trigger-free, so nothing is re-logged); finally run one refresh so
    every view reflects the replayed tail.  Opening the WAL truncates a
    torn final record before any of this — a half-written record is
    never replayed.
    """
    from repro.engine.connection import Connection
    from repro.extension.ivm_extension import load_ivm

    directory = pathlib.Path(directory)
    checkpoint = latest_checkpoint(directory)
    wal_path = directory / WAL_FILENAME

    if checkpoint is None:
        records, _ = read_records(wal_path)
        if records:
            raise RecoveryError(
                f"durability directory {directory} has WAL records but no "
                "valid checkpoint covering the initial state"
            )
        flags = flags or CompilerFlags(durability=True)
        connection = Connection(dialect=flags.dialect)
        extension = load_ivm(connection, flags=flags, durability_dir=directory)
        return connection, extension

    if flags is None:
        flags = flags_from_json(checkpoint.meta["flags"])
    connection = Connection(dialect=flags.dialect)
    extension = load_ivm(connection, flags=flags, durability_dir=directory)
    if extension.durability is not None:
        # If the log was lost entirely, new appends must not restart
        # below the checkpoint horizon.
        extension.durability.wal.ensure_lsn_at_least(checkpoint.lsn)

    # 1. plain base tables: schemas, rows, secondary indexes.
    from repro.storage.table import Table

    plain = set()
    for table_meta in checkpoint.meta["tables"]:
        columns = [
            Column(name, DataType(TypeId(type_id), width), not_null=not_null)
            for name, type_id, width, not_null in table_meta["columns"]
        ]
        schema = TableSchema(
            table_meta["name"], columns, primary_key=list(table_meta["primary_key"])
        )
        table = Table(schema)
        connection.catalog.create_table(table)
        plain.add(schema.name.lower())
        rows = checkpoint.sections.get(f"rows:{schema.name.lower()}", [])
        if rows:
            table.insert_batch(
                [coerce_decoded_row(row, schema) for row in rows], coerce=False
            )
    for index_meta in checkpoint.meta["indexes"]:
        table = connection.table(index_meta["table"])
        ordinals = [table.schema.column_index(c) for c in index_meta["columns"]]
        table.add_index(index_meta["name"], ordinals, unique=index_meta["unique"])
        connection.catalog.create_index(
            IndexSchema(
                name=index_meta["name"],
                table=index_meta["table"],
                columns=list(index_meta["columns"]),
                unique=index_meta["unique"],
            )
        )

    # 2. views: definitions first (DDL recreates mv/ΔT/ΔV empty), then
    # every remaining rows section, then the incremental states.
    for view_meta in checkpoint.meta["views"]:
        extension.restore_view_definition(view_meta["sql"])
    for section_name, rows in checkpoint.sections.items():
        if not section_name.startswith("rows:"):
            continue
        table_name = section_name[len("rows:") :]
        if table_name in plain or not rows:
            continue
        table = connection.table(table_name)
        table.insert_batch(
            [coerce_decoded_row(row, table.schema) for row in rows], coerce=False
        )
    for view_meta in checkpoint.meta["views"]:
        extension.restore_view_state(
            view_meta["name"],
            checkpoint.sections,
            pending_changes=view_meta["pending_changes"],
        )

    # 3. WAL replay past the checkpoint, then one refresh to fold it in.
    records, _ = read_records(wal_path)
    for record in records:
        if record.lsn <= checkpoint.lsn:
            continue
        _replay_record(connection, extension, record)
    extension.refresh_all()
    return connection, extension


def _replay_record(connection, extension, record) -> None:
    """Apply one WAL record directly to the base table and its ΔT.

    Mirrors what the original statement + capture trigger did, without
    going through the executor (and therefore without re-logging): base
    rows are inserted/deleted, the full signed rows are appended to the
    delta table, and the watching views' pending counters are bumped so
    the closing refresh consumes them.
    """
    base = connection.table(record.table)
    schema = base.schema
    delta_name = extension.flags.delta_table(record.table)
    delta = (
        connection.table(delta_name)
        if connection.catalog.has_table(delta_name)
        else None
    )
    inserts = []
    delta_rows = []
    for row in record.rows:
        multiplicity = bool(row[-1])
        values = coerce_decoded_row(tuple(row[:-1]), schema)
        delta_rows.append(values + (multiplicity,))
        if multiplicity:
            # Deletes apply inline, inserts are batched at the end: the
            # only mixed records are UPDATE captures, whose deletes
            # target pre-statement rows — never rows this record adds.
            inserts.append(values)
        else:
            _delete_one(base, values)
    if inserts:
        base.insert_batch(inserts, coerce=False)
    if delta is not None and delta_rows:
        delta.insert_batch(delta_rows, coerce=False)
    for view_name in extension._watched.get(record.table.lower(), ()):
        extension._views[view_name].pending_changes += len(record.rows)


def durability_health(directory: str | pathlib.Path) -> dict:
    """Offline inspection of one durability directory for the
    ``openivm health`` report: WAL tail validity plus every checkpoint
    candidate's decodability and the epoch recovery would load.  Never
    mutates the directory (no tail truncation, no pruning)."""
    from repro.storage.wal import wal_health

    directory = pathlib.Path(directory)
    report = {
        "directory": str(directory),
        "exists": directory.is_dir(),
        "wal": wal_health(directory / WAL_FILENAME),
        "checkpoints": [],
        "latest_checkpoint": None,
    }
    if not report["exists"]:
        return report
    for seq, path in _checkpoint_paths(directory):
        decoded = read_checkpoint(path)
        report["checkpoints"].append(
            {
                "seq": seq,
                "file": path.name,
                "valid": decoded is not None,
                "lsn": None if decoded is None else decoded.lsn,
            }
        )
    latest = latest_checkpoint(directory)
    if latest is not None:
        report["latest_checkpoint"] = {
            "seq": _checkpoint_seq(latest.path),
            "file": latest.path.name,
            "lsn": latest.lsn,
            "views": [
                view["name"] for view in latest.meta.get("views", [])
            ],
            "replay_records": sum(
                1
                for record in read_records(directory / WAL_FILENAME)[0]
                if record.lsn > latest.lsn
            )
            if report["wal"]["valid"]
            else None,
        }
    return report


def _delete_one(base, values: tuple) -> None:
    """Delete exactly one row equal to ``values`` (multiset semantics)."""
    if base.schema.primary_key:
        key = [values[i] for i in base.schema.primary_key_indexes]
        for row_id in base.lookup_row_ids("__pk__", key):
            base.delete_row(row_id)
            return
        return
    for row_id, row in base.scan_with_ids():
        if row == values:
            base.delete_row(row_id)
            return
