"""The embedded engine's user-facing connection.

A :class:`Connection` owns a catalog, binder, optimizer, trigger manager
and extension registry — the same shape as linking DuckDB as a library
gives the paper's compiler access to "the DuckDB SQL parser, planner, and
optimizer".

Typical use::

    con = Connection()
    con.execute("CREATE TABLE t (a VARCHAR, b INTEGER)")
    con.execute("INSERT INTO t VALUES ('x', 1), ('y', 2)")
    rows = con.execute("SELECT a, SUM(b) FROM t GROUP BY a").fetchall()
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, IndexSchema, TableSchema, ViewSchema
from repro.datatypes.types import type_from_name
from repro.datatypes.values import coerce_for_storage
from repro.errors import (
    BinderError,
    ExecutionError,
    ParserError,
    UnsupportedError,
)
from repro.execution.executor import ExecutionContext, execute_plan
from repro.execution.expression import compile_expression
from repro.planner.binder import Binder, bind_value_row
from repro.planner.logical import LogicalOperator, explain
from repro.planner.optimizer import Optimizer
from repro.engine.extension import ExtensionRegistry
from repro.engine.result import Result
from repro.engine.triggers import TriggerManager
from repro.sql import ast
from repro.sql.dialect import Dialect, dialect_by_name
from repro.sql.parser import parse_script
from repro.sql.render import render_select
from repro.storage.table import Table


class Connection:
    """An embedded database instance."""

    def __init__(self, dialect: str | Dialect = "duckdb") -> None:
        self.dialect = (
            dialect if isinstance(dialect, Dialect) else dialect_by_name(dialect)
        )
        self.catalog = Catalog()
        self.binder = Binder(self.catalog)
        self.optimizer = Optimizer()
        self.triggers = TriggerManager()
        self.extensions = ExtensionRegistry()
        self.pragmas: dict[str, Any] = {}
        self._attached: dict[str, "Connection"] = {}

    # -- public API -----------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> Result:
        """Parse and execute a batch; returns the last statement's result."""
        statements = self._parse(sql)
        result = Result()
        for statement in statements:
            result = self.execute_statement(statement, parameters)
        return result

    def execute_statement(
        self, statement: ast.Statement, parameters: Sequence[Any] = ()
    ) -> Result:
        """Execute one parsed statement (with extension pre/post hooks)."""
        handled = self.extensions.run_pre_hooks(self, statement)
        if handled is not None:
            return handled
        result = self._dispatch(statement, parameters)
        self.extensions.run_post_hooks(self, statement, result)
        return result

    def query_plan(self, sql: str) -> LogicalOperator:
        """Bind and optimize a SELECT, returning the logical plan."""
        statement = self._parse_one(sql)
        if not isinstance(statement, ast.Select):
            raise UnsupportedError("query_plan requires a SELECT statement")
        plan = self.binder.bind_select(statement)
        return self.optimizer.optimize(plan)

    def explain(self, sql: str) -> str:
        """EXPLAIN-style plan tree for a SELECT."""
        return explain(self.query_plan(sql))

    def attach(self, alias: str, other: "Connection") -> None:
        """Attach another engine's catalog under ``alias`` (HTAP bridge)."""
        self.catalog.attach(alias, other.catalog)
        self._attached[alias.lower()] = other

    def detach(self, alias: str) -> None:
        self.catalog.detach(alias)
        self._attached.pop(alias.lower(), None)

    def attached_connection(self, alias: str) -> "Connection":
        try:
            return self._attached[alias.lower()]
        except KeyError:
            raise ExecutionError(f"database {alias!r} is not attached") from None

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- batched Z-set bridge ---------------------------------------------
    #
    # The IVM extension's vectorized propagation path moves deltas between
    # tables and Z-set batches without going through SQL statement
    # execution; these two helpers are that bridge.

    def read_delta_batch(self, delta_table: str):
        """Read a delta table (base columns + trailing boolean multiplicity)
        into a columnar :class:`~repro.zset.batch.ZSetBatch`: multiplicity
        TRUE becomes weight +1, FALSE becomes −1.  The column lists come
        straight from the table's columnar mirror (no re-transposition on
        append-only delta tables)."""
        import numpy as np

        from repro.zset.batch import ZSetBatch, _object_array

        table = self.catalog.table(delta_table)
        columns = table.scan_columns()
        mult = np.asarray(columns[-1], dtype=bool)
        weights = np.where(mult, np.int64(1), np.int64(-1))
        return ZSetBatch([_object_array(c) for c in columns[:-1]], weights)

    def insert_rows(self, table_name: str, rows) -> int:
        """Bulk-append pre-shaped rows (no coercion) — the write half of
        the batched propagation path.  AFTER INSERT triggers fire when the
        table has any (cascade capture on materialized-view tables); plain
        delta/staging tables have none, so the common path stays
        trigger-free."""
        table = self.catalog.table(table_name)
        rows = list(rows)
        count = table.insert_batch(rows, coerce=False)
        if self.triggers.triggers_on(table.schema.name):
            self.triggers.fire(self, "INSERT", table.schema.name, rows)
        return count

    def upsert_rows(self, table_name: str, rows) -> int:
        """Bulk INSERT OR REPLACE over the table's primary key — the
        native step-2 fold writes merged view rows here.  When the table
        carries triggers (cascade capture on a view another view reads
        from), the exact stored-row delta is reported: DELETE fires with
        the displaced old rows, INSERT with the deduped survivors."""
        table = self.catalog.table(table_name)
        if self.triggers.triggers_on(table.schema.name):
            replaced: list[tuple] = []
            survivors: list[tuple] = []
            count = table.upsert_batch(
                list(rows), replaced_out=replaced, survivors_out=survivors
            )
            self.triggers.fire(self, "DELETE", table.schema.name, replaced)
            self.triggers.fire(self, "INSERT", table.schema.name, survivors)
            return count
        return table.upsert_batch(list(rows))

    def delete_keys(self, table_name: str, keys) -> int:
        """Bulk delete by primary-key values — the native step-3 liveness
        kernel removes dead groups here.  Keys absent from the table are
        ignored; returns the number of rows removed.  AFTER DELETE
        triggers fire with the removed rows when the table has any."""
        table = self.catalog.table(table_name)
        if self.triggers.triggers_on(table.schema.name):
            victims: list[tuple] = []
            for key in keys:
                for row_id in list(table.lookup_row_ids("__pk__", key)):
                    victims.append(table.delete_row(row_id))
            self.triggers.fire(self, "DELETE", table.schema.name, victims)
            return len(victims)
        return sum(table.delete_by_key(key) for key in keys)

    def truncate_table(self, table_name: str) -> int:
        """Empty a table in-memory — step 4 of the native pipeline clears
        ΔV and ΔT through here.  A table with AFTER DELETE triggers (a
        view feeding dependents) reports every removed row so downstream
        retractions stay exact; trigger-free tables truncate without a
        scan."""
        table = self.catalog.table(table_name)
        if self.triggers.triggers_on(table.schema.name):
            victims = [tuple(row) for row in table.scan()]
            removed = table.truncate()
            self.triggers.fire(self, "DELETE", table.schema.name, victims)
            return removed
        return table.truncate()

    def begin_table_snapshot(self, table_name: str) -> None:
        """Epoch-pin a table for the calling (refresher) thread: until
        the matching commit, readers on other threads scan the
        pre-refresh snapshot (copy-on-first-write in the table) and
        never observe a half-applied refresh."""
        self.catalog.table(table_name).begin_refresh_snapshot()

    def commit_table_snapshot(self, table_name: str) -> None:
        """Publish a refreshed table: drop its pinned snapshot epoch."""
        self.catalog.table(table_name).commit_refresh_snapshot()

    def abort_table_snapshot(self, table_name: str) -> None:
        """Abandon a failed refresh: restore the pinned pre-refresh
        epoch (rows, free list, live count) and release the pin.  The
        caller is responsible for rebuilding the table's derived state
        (the extension schedules a full recompute)."""
        self.catalog.table(table_name).abort_refresh_snapshot()

    # -- durability ------------------------------------------------------

    @classmethod
    def recover(
        cls, path, flags=None
    ) -> "Connection":
        """Rebuild an engine from a durability directory: load the
        latest valid checkpoint, truncate any torn WAL tail, replay the
        records past the checkpoint's LSN, and refresh the recovered
        views.  Returns the new connection with the OpenIVM extension
        loaded (``connection.extensions.loaded("openivm")``) and the WAL
        reopened for appending.  See ``docs/durability.md``."""
        from repro.storage.checkpoint import recover_connection

        connection, _ = recover_connection(path, flags=flags)
        return connection

    # -- parsing with extension fall-back ----------------------------------

    def _parse(self, sql: str) -> list[ast.Statement]:
        try:
            return parse_script(sql)
        except ParserError:
            fallback = self.extensions.try_fallback_parsers(sql)
            if fallback is not None:
                return fallback
            raise

    def _parse_one(self, sql: str) -> ast.Statement:
        statements = self._parse(sql)
        if len(statements) != 1:
            raise ParserError("expected exactly one statement")
        return statements[0]

    # -- statement dispatch --------------------------------------------------

    def _dispatch(
        self, statement: ast.Statement, parameters: Sequence[Any]
    ) -> Result:
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, parameters)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name, if_exists=statement.if_exists)
            return Result(statement_type="DROP TABLE")
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.DropIndex):
            return self._execute_drop_index(statement)
        if isinstance(statement, ast.CreateView):
            return self._execute_create_view(statement)
        if isinstance(statement, ast.DropView):
            self.catalog.drop_view(statement.name, if_exists=statement.if_exists)
            return Result(statement_type="DROP VIEW")
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, parameters)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement, parameters)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement, parameters)
        if isinstance(statement, ast.Explain):
            plan = self.optimizer.optimize(self.binder.bind_select(statement.query))
            lines = explain(plan).split("\n")
            return Result(
                columns=["explain"],
                rows=[(line,) for line in lines],
                rowcount=len(lines),
                statement_type="EXPLAIN",
            )
        if isinstance(statement, ast.Pragma):
            self.pragmas[statement.name.lower()] = (
                statement.value if statement.value is not None else True
            )
            return Result(statement_type="PRAGMA")
        if isinstance(statement, ast.Transaction):
            if statement.action == "ROLLBACK":
                raise UnsupportedError(
                    "ROLLBACK is not supported (statement-level autocommit)"
                )
            return Result(statement_type=statement.action)
        if isinstance(statement, ast.Attach):
            raise UnsupportedError(
                "ATTACH via SQL requires the HTAP scanner extension; "
                "use Connection.attach(alias, connection)"
            )
        if isinstance(statement, ast.RefreshView):
            raise UnsupportedError(
                "REFRESH MATERIALIZED VIEW requires the OpenIVM extension"
            )
        raise UnsupportedError(
            f"cannot execute statement {type(statement).__name__}"
        )

    # -- SELECT -------------------------------------------------------------

    def _execute_select(
        self, select: ast.Select, parameters: Sequence[Any]
    ) -> Result:
        plan = self.binder.bind_select(select)
        plan = self.optimizer.optimize(plan)
        ctx = ExecutionContext(self.catalog, parameters)
        rows = execute_plan(plan, ctx)
        return Result(
            columns=[c.name for c in plan.output_columns],
            rows=rows,
            rowcount=len(rows),
            statement_type="SELECT",
        )

    # -- DDL -------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> Result:
        if statement.as_query is not None:
            plan = self.binder.bind_select(statement.as_query)
            plan = self.optimizer.optimize(plan)
            ctx = ExecutionContext(self.catalog)
            rows = execute_plan(plan, ctx)
            columns = [
                Column(c.name, c.type) for c in plan.output_columns
            ]
            schema = TableSchema(statement.name, columns)
            table = Table(schema)
            self.catalog.create_table(table, if_not_exists=statement.if_not_exists)
            for row in rows:
                table.insert(row, coerce=False)
            return Result(statement_type="CREATE TABLE", rowcount=len(rows))
        columns = [
            Column(
                col.name,
                type_from_name(col.type_name, col.width),
                not_null=col.not_null or col.name in statement.primary_key,
            )
            for col in statement.columns
        ]
        schema = TableSchema(
            statement.name, columns, primary_key=list(statement.primary_key)
        )
        self.catalog.create_table(
            Table(schema), if_not_exists=statement.if_not_exists
        )
        return Result(statement_type="CREATE TABLE")

    def _execute_create_index(self, statement: ast.CreateIndex) -> Result:
        table = self.catalog.table(statement.table)
        key_indexes = [table.schema.column_index(c) for c in statement.columns]
        chunked = bool(self.pragmas.get("ivm_chunked_index_build"))
        table.add_index(
            statement.name, key_indexes, unique=statement.unique, chunked=chunked
        )
        self.catalog.create_index(
            IndexSchema(
                name=statement.name,
                table=statement.table,
                columns=list(statement.columns),
                unique=statement.unique,
            ),
            if_not_exists=statement.if_not_exists,
        )
        return Result(statement_type="CREATE INDEX")

    def _execute_drop_index(self, statement: ast.DropIndex) -> Result:
        try:
            index = self.catalog.index(statement.name)
        except Exception:
            if statement.if_exists:
                return Result(statement_type="DROP INDEX")
            raise
        self.catalog.table(index.table).drop_index(statement.name)
        self.catalog.drop_index(statement.name)
        return Result(statement_type="DROP INDEX")

    def _execute_create_view(self, statement: ast.CreateView) -> Result:
        if statement.materialized:
            raise UnsupportedError(
                "CREATE MATERIALIZED VIEW requires the OpenIVM extension"
            )
        # Bind now to validate; store the AST for later re-binding.
        self.binder.bind_select(statement.query)
        self.catalog.create_view(
            ViewSchema(
                name=statement.name,
                query=statement.query,
                sql=render_select(statement.query, self.dialect),
            ),
            if_not_exists=statement.if_not_exists,
        )
        return Result(statement_type="CREATE VIEW")

    # -- DML -------------------------------------------------------------

    def _execute_insert(
        self, statement: ast.Insert, parameters: Sequence[Any]
    ) -> Result:
        table = self.catalog.table(statement.table)
        schema = table.schema
        ctx = ExecutionContext(self.catalog, parameters)

        if statement.query is not None:
            plan = self.binder.bind_select(statement.query)
            plan = self.optimizer.optimize(plan)
            source_rows = execute_plan(plan, ctx)
        else:
            source_rows = []
            for value_row in statement.values:
                bound = bind_value_row(value_row, self.binder)
                evaluators = [compile_expression(b) for b in bound]
                source_rows.append(tuple(e((), ctx) for e in evaluators))

        rows = [self._reorder_insert_row(schema, statement.columns, r) for r in source_rows]
        # Coerce to storage types *before* the append so the AFTER
        # triggers see the stored rows, exactly like DELETE and UPDATE
        # do.  Raw literals (e.g. an ISO date string headed for a DATE
        # column) must never leak into the capture path: the IVM states
        # address entries by memcomparable bytes, where a string and the
        # date it spells encode differently — mixed spellings corrupt
        # retraction cancellation and extrema ordering.
        rows = [
            tuple(
                coerce_for_storage(value, column.type)
                for value, column in zip(row, schema.columns)
            )
            for row in rows
        ]
        # Whole-statement columnar ingestion: one batch append with a
        # single sorted index pass, instead of per-row insert calls.
        if statement.or_replace:
            # Report the stored-row delta, not the raw input: replaced
            # old rows retract (DELETE) and only the deduped survivors
            # insert, so delta captures never double-count a replace.
            replaced: list[tuple] = []
            survivors: list[tuple] = []
            table.upsert_batch(
                rows, replaced_out=replaced, survivors_out=survivors
            )
            self.triggers.fire(self, "DELETE", schema.name, replaced)
            self.triggers.fire(self, "INSERT", schema.name, survivors)
        else:
            table.insert_batch(rows, coerce=False)
            self.triggers.fire(self, "INSERT", schema.name, rows)
        return Result(statement_type="INSERT", rowcount=len(rows))

    @staticmethod
    def _reorder_insert_row(
        schema: TableSchema, columns: list[str], row: tuple
    ) -> tuple:
        if not columns:
            if len(row) != len(schema.columns):
                raise ExecutionError(
                    f"INSERT into {schema.name!r} expects "
                    f"{len(schema.columns)} values, got {len(row)}"
                )
            return tuple(row)
        if len(columns) != len(row):
            raise ExecutionError(
                f"INSERT column list has {len(columns)} names but "
                f"{len(row)} values"
            )
        by_name = {name.lower(): value for name, value in zip(columns, row)}
        full = []
        for column in schema.columns:
            full.append(by_name.get(column.name.lower()))
        return tuple(full)

    def _execute_delete(
        self, statement: ast.Delete, parameters: Sequence[Any]
    ) -> Result:
        table = self.catalog.table(statement.table)
        ctx = ExecutionContext(self.catalog, parameters)
        if statement.where is None:
            victims = list(table.scan())
            table.truncate()
            self.triggers.fire(self, "DELETE", table.schema.name, victims)
            return Result(statement_type="DELETE", rowcount=len(victims))
        output = [
            # Reuse the binder's scalar path with the table's own alias.
            col
            for col in _table_output_columns(table)
        ]
        predicate = self.binder.bind_scalar(statement.where, output)
        evaluator = compile_expression(predicate)
        victims: list[tuple] = []
        victim_ids: list[int] = []
        for row_id, row in table.scan_with_ids():
            if evaluator(row, ctx) is True:
                victims.append(row)
                victim_ids.append(row_id)
        for row_id in victim_ids:
            table.delete_row(row_id)
        self.triggers.fire(self, "DELETE", table.schema.name, victims)
        return Result(statement_type="DELETE", rowcount=len(victims))

    def _execute_update(
        self, statement: ast.Update, parameters: Sequence[Any]
    ) -> Result:
        table = self.catalog.table(statement.table)
        ctx = ExecutionContext(self.catalog, parameters)
        output = _table_output_columns(table)
        assignments: list[tuple[int, Any]] = []
        for clause in statement.assignments:
            index = table.schema.column_index(clause.column)
            bound = self.binder.bind_scalar(clause.value, output)
            assignments.append((index, compile_expression(bound)))
        predicate_eval = None
        if statement.where is not None:
            predicate = self.binder.bind_scalar(statement.where, output)
            predicate_eval = compile_expression(predicate)
        targets = [
            (row_id, row)
            for row_id, row in table.scan_with_ids()
            if predicate_eval is None or predicate_eval(row, ctx) is True
        ]
        pairs: list[tuple[tuple, tuple]] = []
        for row_id, row in targets:
            new_row = list(row)
            for index, evaluator in assignments:
                new_row[index] = evaluator(row, ctx)
            old, new = table.update_row(row_id, new_row)
            pairs.append((old, new))
        self.triggers.fire(self, "UPDATE", table.schema.name, pairs)
        return Result(statement_type="UPDATE", rowcount=len(pairs))


def _table_output_columns(table: Table):
    from repro.planner.logical import OutputColumn

    return [
        OutputColumn(col.name, col.type, table.schema.name)
        for col in table.schema.columns
    ]
