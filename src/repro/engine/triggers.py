"""AFTER-statement triggers.

Triggers are the paper's delta-capture mechanism on the OLTP side of
cross-system IVM ("for PostgreSQL ... users are required to configure
these triggers").  A trigger fires after a DML statement commits, with the
affected rows:

* INSERT → the inserted row tuples,
* DELETE → the deleted row tuples,
* UPDATE → ``(old_row, new_row)`` pairs.

Trigger callables receive ``(connection, event, table_name, rows)`` and may
execute further SQL on the same connection (e.g. inserting into delta
tables).  Recursive firing is suppressed per (table, event) while a trigger
for it is running, which is how real systems avoid trigger loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.engine.connection import Connection

TriggerFn = Callable[["Connection", str, str, list], None]

EVENTS = ("INSERT", "DELETE", "UPDATE")


def delta_capture_rows(event: str, rows: list) -> list[tuple]:
    """Trigger payload → delta-table rows with the multiplicity flag.

    The paper's boolean-multiplicity encoding, shared by the IVM
    extension's capture triggers and the HTAP OLTP capture: INSERT rows
    carry TRUE, DELETE rows FALSE, and an UPDATE becomes a FALSE old row
    followed by a TRUE new row.  Returned as one block so captures append
    with a single ``Table.insert_batch`` call per statement.
    """
    if event == "INSERT":
        return [row + (True,) for row in rows]
    if event == "DELETE":
        return [row + (False,) for row in rows]
    batch: list[tuple] = []
    for old, new in rows:
        batch.append(old + (False,))
        batch.append(new + (True,))
    return batch


class TriggerManager:
    """Per-connection registry of AFTER triggers."""

    def __init__(self) -> None:
        self._triggers: dict[tuple[str, str], list[tuple[str, TriggerFn]]] = {}
        self._firing: set[tuple[str, str]] = set()

    def register(
        self, name: str, table: str, event: str, fn: TriggerFn
    ) -> None:
        event = event.upper()
        if event not in EVENTS:
            raise ValueError(f"unknown trigger event {event!r}")
        key = (table.lower(), event)
        self._triggers.setdefault(key, []).append((name, fn))

    def unregister(self, name: str) -> None:
        for key in list(self._triggers):
            self._triggers[key] = [
                (n, fn) for n, fn in self._triggers[key] if n != name
            ]
            if not self._triggers[key]:
                del self._triggers[key]

    def triggers_on(self, table: str) -> list[str]:
        return sorted(
            name
            for (tbl, _), entries in self._triggers.items()
            if tbl == table.lower()
            for name, _ in entries
        )

    def fire(
        self, connection: "Connection", event: str, table: str, rows: list[Any]
    ) -> None:
        if not rows:
            return
        key = (table.lower(), event.upper())
        entries = self._triggers.get(key)
        if not entries or key in self._firing:
            return
        self._firing.add(key)
        try:
            for _, fn in entries:
                fn(connection, event.upper(), table, rows)
        finally:
            self._firing.discard(key)
