"""Extension registry: fall-back parsers and statement hooks.

Reproduces DuckDB's extension mechanism as the paper uses it:

* **Fall-back parsers** — "the DuckDB approach here is first to use its own
  parser, but on syntax errors, try to re-parse a SQL statement with
  fall-back parsers provided by extensions."  A registered
  :class:`ParserExtension` gets the raw SQL after the core parser raises;
  the first one returning statements wins.

* **Statement hooks** — the stand-in for the optimizer rules the paper's
  extension registers to "intercept INSERT/DELETE/UPDATE statements into
  the base tables".  Hooks see each parsed statement before execution and
  may handle it entirely (returning a Result) or let it fall through
  (returning None).  Post-hooks run after execution with the affected
  row count, which the IVM extension uses for eager refresh.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Protocol

from repro.sql import ast

if TYPE_CHECKING:
    from repro.engine.connection import Connection
    from repro.engine.result import Result


class ParserExtension(Protocol):
    """A fall-back parser tried when the core parser raises."""

    def try_parse(self, sql: str) -> Optional[list[ast.Statement]]:
        """Return statements if this extension understands ``sql``."""
        ...


# A pre-hook may fully handle the statement by returning a Result.
StatementHook = Callable[["Connection", ast.Statement], Optional["Result"]]
# A post-hook observes a statement after successful execution.
PostStatementHook = Callable[["Connection", ast.Statement, "Result"], None]


class ExtensionRegistry:
    """Per-connection registry; extensions call the ``register_*`` methods.

    This mirrors the paper: "An extension module registers its new
    functionality by calling DuckDB registration functions.  These
    registration functions can also be called directly from an application
    that uses DuckDB as a library."
    """

    def __init__(self) -> None:
        self._parser_extensions: list[ParserExtension] = []
        self._pre_hooks: list[StatementHook] = []
        self._post_hooks: list[PostStatementHook] = []
        self._loaded: dict[str, object] = {}

    # -- registration -------------------------------------------------

    def register_parser(self, parser: ParserExtension) -> None:
        self._parser_extensions.append(parser)

    def register_pre_hook(self, hook: StatementHook) -> None:
        self._pre_hooks.append(hook)

    def register_post_hook(self, hook: PostStatementHook) -> None:
        self._post_hooks.append(hook)

    def mark_loaded(self, name: str, extension: object) -> None:
        self._loaded[name] = extension

    def loaded(self, name: str) -> object | None:
        return self._loaded.get(name)

    # -- dispatch ----------------------------------------------------------

    def try_fallback_parsers(self, sql: str) -> Optional[list[ast.Statement]]:
        for parser in self._parser_extensions:
            statements = parser.try_parse(sql)
            if statements is not None:
                return statements
        return None

    def run_pre_hooks(
        self, connection: "Connection", statement: ast.Statement
    ) -> Optional["Result"]:
        for hook in self._pre_hooks:
            result = hook(connection, statement)
            if result is not None:
                return result
        return None

    def run_post_hooks(
        self, connection: "Connection", statement: ast.Statement, result: "Result"
    ) -> None:
        for hook in self._post_hooks:
            hook(connection, statement, result)
