"""Query results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Result:
    """Rows and metadata returned by :meth:`Connection.execute`.

    DDL and DML return empty ``rows`` with ``rowcount`` set; queries return
    ``columns`` and ``rows``.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    statement_type: str = ""

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def fetchall(self) -> list[tuple]:
        return list(self.rows)

    def fetchone(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted(self) -> list[tuple]:
        """Rows sorted with None-safe keys — handy for order-insensitive tests."""
        def key(row: tuple):
            return tuple((v is None, str(type(v)), v) for v in row)
        return sorted(self.rows, key=key)
