"""Embedded SQL engine: connection, results, triggers, extensions.

This package is the stand-in for DuckDB in the reproduction: an embeddable
engine with a parser, binder, optimizer and executor, an extension registry
with fall-back parsers and optimizer/statement hooks, and trigger support
(the delta-capture mechanism for the OLTP side of cross-system IVM).
"""

from repro.engine.connection import Connection
from repro.engine.result import Result

__all__ = ["Connection", "Result"]
