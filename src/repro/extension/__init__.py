"""The OpenIVM extension module: native IVM inside the embedded engine.

Mirrors the paper's DuckDB extension: a fall-back parser that accepts
``CREATE MATERIALIZED VIEW`` (and ``REFRESH MATERIALIZED VIEW``),
statement hooks that intercept INSERT/DELETE/UPDATE on watched base
tables to fill the delta tables, eager/lazy/batched refresh, and an
on-disk store of the compiled propagation scripts.
"""

from repro.extension.ivm_extension import IVMExtension, load_ivm

__all__ = ["IVMExtension", "load_ivm"]
