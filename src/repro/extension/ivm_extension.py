"""OpenIVM wrapped as a loadable engine extension.

Paper §2, "The Extension Module: OpenIVM inside DuckDB":

* "when the fall-back parser parses a CREATE MATERIALIZED VIEW, we execute
  the compiled output to create the delta tables as well as any generated
  intermediate result tables or indexes, along with a table that
  represents the materialized result" — :meth:`IVMExtension._handle_create`.
* "another optimizer rule can then be used to intercept
  INSERT/DELETE/UPDATE statements into the base tables ... fill the delta
  tables ΔT, and kick off the SQL propagation scripts" — the DML capture
  triggers plus the post-statement refresh policy.
* "We store the SQL scripts that propagate the contents of the delta
  tables to the materialized view table on the disk" — ``script_dir``.
* "These SQL commands can either be run eagerly ... or lazily, i.e.
  refreshing the materialized view when it is queried" — the
  :class:`~repro.core.flags.PropagationMode` policy (plus BATCH).

Usage::

    con = Connection()
    ivm = load_ivm(con)            # like LOAD 'openivm'
    con.execute("CREATE TABLE groups (g VARCHAR, v INTEGER)")
    con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
                "FROM groups GROUP BY g")
    con.execute("INSERT INTO groups VALUES ('a', 1)")
    con.execute("SELECT * FROM q")   # lazy refresh happens here
"""

from __future__ import annotations

import math
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.adaptive import AdaptivePlanner, build_plan_arms, planner_seed
from repro.core.compiler import CompiledView, OpenIVMCompiler
from repro.core.costmodel import RefreshSignals
from repro.core.dag import ViewDependencyGraph
from repro.core.flags import CompilerFlags, PropagationMode
from repro.core.propagate import RefreshStats, run_pipeline
from repro.core.runtime import (
    RUNG_NAMES,
    RUNG_PARALLEL,
    RUNG_RECOMPUTE,
    RUNG_SERIAL,
    RUNG_UNSHARDED,
    DegradationLadder,
    IngestQueue,
    RefreshDaemon,
)
from repro.engine.connection import Connection
from repro.engine.triggers import delta_capture_rows
from repro.engine.result import Result
from repro.errors import (
    BackpressureError,
    DependencyCycleError,
    IVMError,
    ParserError,
)
from repro.sql import ast
from repro.sql.parser import parse_script
from repro.zset.incremental import IndexedJoinState


@dataclass
class _ViewState:
    """Runtime bookkeeping for one registered materialized view."""

    compiled: CompiledView
    pending_changes: int = 0
    refresh_count: int = 0
    # Propagation statements parsed once at CREATE time (labels preserved),
    # so a refresh skips re-parsing the stored scripts.
    prepared: list[tuple[str, ast.Statement]] = None
    # Per-refresh counters (wall time, per-step time, rows, shard skew).
    stats: RefreshStats = field(default_factory=RefreshStats)
    # The per-view adaptive planner (CompilerFlags.adaptive), or None.
    adaptive: Any = None
    # Captured rows with FALSE multiplicity since the last refresh — the
    # planner's retraction-rate signal, counted by the capture triggers.
    pending_retractions: int = 0
    # Set when a refresh died mid-pipeline: the stored rows were rolled
    # back to the pinned snapshot, but the in-memory incremental states
    # may have consumed part of the batch, so the next refresh rebuilds
    # the whole view from the base tables instead of propagating.
    needs_recompute: bool = False
    # The escalating degradation ladder (parallel → serial → unsharded
    # SQL → recompute); every view gets one, even when it never demotes.
    ladder: DegradationLadder = field(default_factory=DegradationLadder)
    # Set when a table referenced only inside the view's WHERE subquery
    # changed: the pinned snapshot verdicts are stale, so the next
    # refresh must repair them (natively, via the snapshot-diff
    # injection) or fall back to a recompute (SQL rungs).
    snapshot_dirty: bool = False


class _MaterializedViewParser:
    """Fall-back parser accepting the MATERIALIZED VIEW statements.

    "Similar to DuckPGQ ... we developed a simple fall-back parser that
    recognizes the CREATE MATERIALIZED VIEW syntax."
    """

    def try_parse(self, sql: str) -> list[ast.Statement] | None:
        try:
            statements = parse_script(sql, allow_materialized=True)
        except ParserError:
            return None
        interesting = any(
            (isinstance(s, ast.CreateView) and s.materialized)
            or isinstance(s, ast.RefreshView)
            for s in statements
        )
        return statements if interesting else None


class IVMExtension:
    """The extension object; one instance per connection."""

    def __init__(
        self,
        flags: CompilerFlags | None = None,
        script_dir: str | pathlib.Path | None = None,
        durability_dir: str | pathlib.Path | None = None,
    ) -> None:
        self.flags = flags or CompilerFlags()
        self.script_dir = pathlib.Path(script_dir) if script_dir else None
        self.durability_dir = (
            pathlib.Path(durability_dir) if durability_dir else None
        )
        self._connection: Connection | None = None
        self._views: dict[str, _ViewState] = {}
        # base table (lower) -> view names watching it
        self._watched: dict[str, set[str]] = {}
        # delta table name (lower) -> view names reading it
        self._delta_readers: dict[str, set[str]] = {}
        # The cascaded-view dependency DAG: every registered view is a
        # node; an edge upstream -> dependent exists when the dependent
        # is defined over the upstream's materialized rows.  Refresh
        # order, CREATE-time cycle rejection, drop protection, and the
        # depth/invalidation reporting all read this graph.
        self._dag = ViewDependencyGraph()
        # table (lower) referenced inside a WHERE subquery -> view names
        # whose snapshot verdicts depend on it (CompilerFlags.
        # subquery_snapshot); DML on these tables marks snapshot_dirty.
        self._snapshot_watch: dict[str, set[str]] = {}
        # Depth of the _refresh_into call stack: the policy hooks must
        # not start a nested refresh off the pipeline's own writes.
        self._refresh_depth = 0
        # WAL + checkpoints; opening the manager truncates a torn WAL tail.
        self._durability = None
        if self.flags.durability and self.durability_dir is not None:
            from repro.storage.checkpoint import DurabilityManager

            self._durability = DurabilityManager(
                self.durability_dir, self, sync=self.flags.wal_sync
            )
        # The async ingestion runtime (CompilerFlags.ingest_queue): the
        # capture triggers enqueue delta batches here instead of writing
        # WAL + ΔT synchronously; _drain_queue moves them on batch-size/
        # deadline/watermark triggers and at the top of every refresh.
        self._runtime_lock = threading.RLock()
        self._queue: IngestQueue | None = None
        self._daemon: RefreshDaemon | None = None
        if self.flags.ingest_queue:
            self._queue = IngestQueue(
                capacity=self.flags.queue_capacity,
                policy=self.flags.queue_policy,
                high_watermark=self.flags.queue_high_watermark,
                low_watermark=self.flags.queue_low_watermark,
                block_timeout=self.flags.queue_block_timeout,
                drain_callback=self._drain_queue,
                fault_plan=self.flags.fault_plan,
            )
            if self._durability is not None:
                # A checkpoint must cover the queued deltas: base rows
                # are already applied, so an image taken with batches
                # still queued would lose them on recovery.
                self._durability.pre_checkpoint_hook = self._drain_queue
            if self.flags.queue_async:
                tick = (
                    self.flags.queue_deadline / 2
                    if self.flags.queue_deadline > 0
                    else 0.05
                )
                self._daemon = RefreshDaemon(
                    self._queue, self._daemon_pump, tick=tick
                )

    # -- registration (the paper's "registration functions") ----------------

    def register(self, connection: Connection) -> None:
        if self._connection is not None:
            raise IVMError("extension is already loaded into a connection")
        self._connection = connection
        connection.extensions.register_parser(_MaterializedViewParser())
        connection.extensions.register_pre_hook(self._pre_hook)
        connection.extensions.register_post_hook(self._post_hook)
        connection.extensions.mark_loaded("openivm", self)
        if self._daemon is not None:
            self._daemon.start()

    def shutdown(self) -> None:
        """Stop the background refresher (draining what it holds) and
        close the durability manager.  Idempotent."""
        if self._daemon is not None:
            self._daemon.stop()
        if self._queue is not None and self._queue.depth():
            try:
                self._drain_queue()
            except Exception:
                pass  # watchers were marked needs_recompute by the drain
        if self._durability is not None:
            self._durability.close()

    # -- public API ---------------------------------------------------------

    def views(self) -> list[str]:
        return sorted(self._views)

    def view_state(self, name: str) -> _ViewState:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise IVMError(f"materialized view {name!r} does not exist") from None

    def compiled(self, name: str) -> CompiledView:
        return self.view_state(name).compiled

    def refresh(self, name: str) -> None:
        """Refresh ``name`` through the view dependency DAG.

        Three phases, all funneling into :meth:`_refresh_into`:

        * **pull** — stale upstream views refresh first, in topological
          order, so their output deltas land in the cascade feeds;
        * **target** — ``name`` (and every view sharing one of its input
          delta tables, so shared ΔT/feeds are consumed exactly once)
          runs its propagation pipeline over those feeds;
        * **push** — dependents whose policy asks for it (EAGER, BATCH
          past its threshold, or flagged for recompute) refresh in
          topological order, consuming the feed rows the target's
          refresh just emitted.

        One base-table change thereby cascades through every DAG level
        with zero recomputation; LAZY dependents simply stay pending.
        """
        state = self.view_state(name)
        if self._refresh_depth:
            # Policy hook re-entered off the pipeline's own writes (e.g.
            # a refresh statement touching a snapshot-watched table);
            # the counters are already updated, the outer refresh owns
            # the pipeline.
            return
        # Queued capture batches must reach ΔT before the pipeline reads
        # it (a drain failure marks the watchers and raises — the
        # recompute below then repairs them on the next call).
        self._drain_queue()
        target = state.compiled.name.lower()
        self._refresh_depth += 1
        try:
            for upstream in self._dag.upstream_closure(target):
                member = self._views.get(upstream)
                if member is not None and self._is_stale(member):
                    self._refresh_into(member)
            self._refresh_into(state)
            for downstream in self._dag.dependents_closure(target):
                member = self._views.get(downstream)
                if member is None:
                    continue
                if member.needs_recompute:
                    self._refresh_into(member)
                    continue
                flags = member.compiled.model.flags
                if member.pending_changes and (
                    flags.mode is PropagationMode.EAGER
                    or (
                        flags.mode is PropagationMode.BATCH
                        and member.pending_changes >= flags.batch_size
                    )
                ):
                    self._refresh_into(member)
        finally:
            self._refresh_depth -= 1

    @staticmethod
    def _is_stale(member: _ViewState) -> bool:
        """True when ``member``'s stored rows lag its inputs: unconsumed
        delta rows, a pending recompute repair, or moved snapshot pins."""
        return bool(
            member.pending_changes
            or member.needs_recompute
            or member.snapshot_dirty
        )

    def _snapshot_repairable(self, member: _ViewState) -> bool:
        """True when this round can repair moved subquery snapshots
        natively — a native step 1 carrying snapshot specs will run (the
        SQL rungs re-evaluate the subquery per statement against *live*
        tables, which would silently diverge from the stored rows'
        pinned verdicts, so they recompute instead)."""
        if member.ladder.rung >= RUNG_UNSHARDED:
            return False
        return any(
            getattr(step, "snapshots", None)
            for step in member.compiled.native_steps
        )

    def _refresh_into(self, state: _ViewState) -> None:
        """Run the propagation pipeline for one view's refresh closure
        (every view sharing one of its input delta tables, in
        topological order, so shared ΔT are consumed once).

        Each view runs its :class:`~repro.core.propagate.NativeStep`
        pipeline interleaved with the compiled SQL, per step: steps the
        vectorized kernels cover (Z-set delta compute, signed-collapse
        upsert, exact liveness delete, in-memory truncation) run natively,
        the rest execute their SQL statements.  All propagation modes —
        eager, lazy, and batch — funnel through here.
        """
        closure = self._refresh_closure(state)
        con = self._require_connection()
        for member in closure:
            if member.snapshot_dirty and not self._snapshot_repairable(
                member
            ):
                member.needs_recompute = True
        if any(
            member.needs_recompute or member.ladder.rung == RUNG_RECOMPUTE
            for member in closure
        ):
            self._recompute_closure(closure)
            return
        # Members whose ladder heals across the unsharded rung this
        # round: their native states sat out the SQL rounds and must be
        # reseeded — after the closure-wide ΔT truncation below, so the
        # rebuilt states equal exactly the current base tables.
        reseed: list[_ViewState] = []
        for member in closure:
            stats = member.stats
            stats.begin_round()
            pending_before = member.pending_changes
            # Apply the degradation-ladder rung, then (rung 0 only) the
            # adaptive plan selection: collect the O(1) signals, let the
            # per-view planner pick this round's arm, and wire it in —
            # run_pipeline then executes the chosen native steps and
            # falls back to SQL for every step the arm excludes.
            rung = member.ladder.rung
            decision = None
            active_steps = member.compiled.native_steps
            if rung == RUNG_UNSHARDED:
                # Pure SQL fallback: the compiled script is complete on
                # its own; the native states go stale and are reseeded
                # when the ladder heals back past this rung.
                active_steps = []
            elif rung == RUNG_SERIAL:
                for step in active_steps:
                    if step.name == "sharded":
                        step.set_parallel(False)
            elif member.adaptive is not None:
                signals = self._refresh_signals(member)
                decision = member.adaptive.choose(signals)
                active_steps = member.adaptive.activate(decision)
                stats.record_decision(
                    decision.arm.describe(),
                    signals.as_dict(),
                    decision.predicted_cost,
                    decision.margin,
                    decision.explored,
                    decision.regime_shift,
                )
            else:
                for step in active_steps:
                    if step.name == "sharded":
                        step.set_parallel(
                            member.compiled.model.flags.parallel_refresh
                        )
            started = time.perf_counter()
            # Epoch-pin the view table: concurrent readers keep scanning
            # the pre-refresh snapshot until the commit below, so they
            # never observe a half-applied refresh.
            pinned = member.compiled.model.flags.snapshot_reads
            if pinned:
                con.begin_table_snapshot(member.compiled.name)
            try:
                run_pipeline(
                    con,
                    member.prepared,
                    active_steps,
                    execute=con.execute_statement,
                    # Shared ΔT tables are cleared once for the whole
                    # closure.
                    skip_label=lambda label: label.startswith(
                        "step4: clear delta table"
                    ),
                    stats=stats,
                )
            except BaseException as error:
                # Roll the stored rows back to the pinned pre-refresh
                # epoch (never commit a half-applied refresh as the new
                # truth) and flag the view: the in-memory states may
                # have consumed part of the batch, so the next refresh
                # rebuilds from the base tables.  The failure also
                # demotes the degradation ladder one rung, so once the
                # recompute has repaired the view, subsequent refreshes
                # run in the next-safer execution mode.
                if pinned:
                    con.abort_table_snapshot(member.compiled.name)
                member.needs_recompute = True
                stats.record_event(
                    "refresh_failure",
                    rung=rung,
                    rung_name=RUNG_NAMES[rung],
                    error=type(error).__name__,
                    detail=str(error)[:200],
                )
                from_rung, to_rung = member.ladder.note_failure()
                if to_rung != from_rung:
                    stats.record_event(
                        "demote",
                        from_rung=from_rung,
                        to_rung=to_rung,
                        from_name=RUNG_NAMES[from_rung],
                        to_name=RUNG_NAMES[to_rung],
                        reason=type(error).__name__,
                    )
                stats.degradation_rung = member.ladder.rung
                # The cascade feed may hold captures from the pipeline
                # the rollback just discarded, so the dependents can no
                # longer trust it: flag them for the recompute self-heal
                # (their recompute truncates the feed before re-reading
                # the upstream's stored rows wholesale).
                self._invalidate_dependents(member, type(error).__name__)
                raise
            if pinned:
                con.commit_table_snapshot(member.compiled.name)
            member.pending_changes = 0
            member.snapshot_dirty = False
            member.refresh_count += 1
            rows_in = pending_before
            skew = 0.0
            for step in member.compiled.native_steps:
                loads = getattr(step, "last_shard_loads", None)
                if loads and sum(loads) > 0:
                    skew = max(loads) * len(loads) / sum(loads)
                rows_in = max(rows_in, getattr(step, "last_rows_in", 0))
            wall = time.perf_counter() - started
            stats.finish_round(wall, rows_in, skew)
            if decision is not None:
                member.adaptive.observe(decision, wall)
                stats.close_decision(wall)
            member.pending_retractions = 0
            self._note_clean_refresh(member, reseed)
        delta_tables = {
            delta
            for member in closure
            for delta in member.compiled.delta_tables.values()
        }
        native_truncate = all(
            any(
                step.name in ("step4", "sharded")
                for step in member.compiled.native_steps
            )
            for member in closure
        )
        for delta in sorted(delta_tables):
            if native_truncate:
                con.truncate_table(delta)
            else:
                con.execute(f"DELETE FROM {delta}")
        for member in reseed:
            for step in member.compiled.native_steps:
                _clear_step_pendings(step)
                step.initialize(con)
        if self._durability is not None:
            self._durability.note_refresh()

    def _note_clean_refresh(
        self, member: _ViewState, reseed: list | None = None
    ) -> None:
        """One refresh of ``member`` completed cleanly: advance the
        degradation ladder's heal counter, record the heal event when a
        rung is regained, and sync the stats mirrors (current rung, the
        ingest queue's counters)."""
        healed = member.ladder.note_clean()
        if healed is not None:
            from_rung, to_rung = healed
            member.stats.record_event(
                "heal",
                from_rung=from_rung,
                to_rung=to_rung,
                from_name=RUNG_NAMES[from_rung],
                to_name=RUNG_NAMES[to_rung],
            )
            if from_rung == RUNG_UNSHARDED and reseed is not None:
                reseed.append(member)
        member.stats.degradation_rung = member.ladder.rung
        if self._queue is not None:
            member.stats.queue = self._queue.snapshot()

    def _recompute_closure(self, closure: list[_ViewState]) -> None:
        """Rebuild every view of a refresh closure from the base tables.

        The escape hatch after a failed refresh: the stored rows were
        rolled back to the pinned snapshot, but the incremental states
        (join sides, liveness counters, extrema multisets — and any ART
        index entries mutated before the failure) are not copy-on-write,
        so propagation can no longer be trusted.  ΔT is truncated
        *first*: the reseeded states must equal ``base − unconsumed ΔT``,
        and discarding the deltas makes that simply ``base`` — the rows
        they carried are already in the base tables, which the populate
        below re-aggregates wholesale.
        """
        con = self._require_connection()
        delta_tables = {
            delta
            for member in closure
            for delta in member.compiled.delta_tables.values()
        }
        for delta in sorted(delta_tables):
            con.truncate_table(delta)
        for member in closure:
            compiled = member.compiled
            con.truncate_table(compiled.name)
            con.truncate_table(compiled.delta_view_table)
            con.execute(compiled.populate)
            for step in compiled.native_steps:
                _clear_step_pendings(step)
                step.initialize(con)
            member.pending_changes = 0
            member.pending_retractions = 0
            member.stats.record_event(
                "recompute",
                rung=member.ladder.rung,
                rung_name=member.ladder.rung_name,
                flagged=member.needs_recompute,
            )
            member.needs_recompute = False
            # step.initialize reseeded the subquery snapshots against the
            # just-recomputed state, so the pins are current again.
            member.snapshot_dirty = False
            member.refresh_count += 1
            # A successful recompute is a clean round for the ladder —
            # it is how the last rung ever heals.  The reseed above
            # already rebuilt the native states, so no extra reseed list.
            self._note_clean_refresh(member)
        if self._durability is not None:
            self._durability.note_refresh()

    def refresh_all(self) -> None:
        """Refresh every stale view, in DAG topological order — an
        upstream's refresh lands its output deltas in the cascade feeds
        before its dependents (later in the order) consume them, so one
        sweep converges the whole DAG."""
        self._drain_queue()
        self._refresh_depth += 1
        try:
            for name in self._dag.topo_sort():
                state = self._views.get(name)
                if state is not None and self._is_stale(state):
                    self._refresh_into(state)
        finally:
            self._refresh_depth -= 1

    def refresh_stats(self, name: str) -> dict:
        """JSON-shaped per-refresh counters for ``name`` (wall seconds,
        per-step seconds, rows in/moved, shard skew ratio — and, with
        the adaptive planner, the last plan, its input signals, and the
        last N decisions with observed wall times)."""
        return self.view_state(name).stats.snapshot()

    def _refresh_signals(self, member: _ViewState) -> RefreshSignals:
        """The planner's per-refresh inputs; every read is O(1) (table
        live counts, trigger-maintained counters, last-round shard
        loads) — no scans on the refresh path."""
        con = self._require_connection()
        compiled = member.compiled
        delta_rows = sum(
            len(con.table(delta))
            for delta in compiled.delta_tables.values()
        )
        view_rows = len(con.table(compiled.name))
        max_load = delta_rows
        for step in compiled.native_steps:
            if step.name != "sharded":
                continue
            state = step.step1.state
            loads = list(getattr(state, "last_shard_loads", []) or [])
            total = sum(loads)
            # Project this round's hottest shard from the last observed
            # load distribution (uniform before the first round).
            fraction = (
                max(loads) / total
                if total > 0
                else 1.0 / max(step.shard_count, 1)
            )
            max_load = int(math.ceil(delta_rows * fraction))
        return RefreshSignals(
            delta_rows=delta_rows,
            view_rows=view_rows,
            touched_groups=RefreshSignals.bound_touched(
                delta_rows, view_rows
            ),
            retraction_rows=member.pending_retractions,
            max_shard_load=max_load,
            shard_skew=member.stats.last_shard_skew,
        )

    def status(self) -> list[dict]:
        """Per-view runtime status (for dashboards/demos): name, class,
        strategy, mode, pending delta rows, refresh rounds, stored rows."""
        con = self._require_connection()
        report = []
        for name in self.views():
            state = self._views[name]
            compiled = state.compiled
            report.append(
                {
                    "view": compiled.name,
                    "class": compiled.view_class.value,
                    "strategy": compiled.model.flags.strategy.value,
                    "mode": compiled.model.flags.mode.value,
                    "batched": bool(state.compiled.native_steps),
                    "native_steps": sorted(
                        step.name for step in state.compiled.native_steps
                    ),
                    "pending_changes": state.pending_changes,
                    "needs_recompute": state.needs_recompute,
                    "refresh_count": state.refresh_count,
                    "rows": len(con.table(compiled.name)),
                    "base_tables": sorted(compiled.delta_tables),
                    "depth": self._dag.depth(name),
                    "upstreams": sorted(self._dag.upstream(name)),
                    "dependents": sorted(self._dag.dependents(name)),
                    "upstream_invalidations": (
                        state.stats.upstream_invalidations
                    ),
                }
            )
        return report

    # -- durability ---------------------------------------------------------

    @property
    def durability(self):
        """The :class:`~repro.storage.checkpoint.DurabilityManager`, or
        None when durability is off."""
        return self._durability

    def checkpoint(self) -> pathlib.Path:
        """Write a checkpoint now (views must be quiescent, which they are
        between statements); returns the new file's path."""
        if self._durability is None:
            raise IVMError(
                "durability is not enabled; load the extension with "
                "flags.durability=True and a durability_dir"
            )
        return self._durability.checkpoint()

    def restore_view_definition(self, create_sql: str) -> None:
        """Recovery: re-register one view from its stored CREATE statement.

        Runs the compiled DDL (mv table, ΔT, ΔV, metadata row) and the
        registration book-keeping, but *not* the initial populate and not
        the per-step ``initialize`` — rows and incremental states are
        restored from the checkpoint image afterwards (or reseeded by
        :meth:`restore_view_state` where the image lacks them).
        """
        con = self._require_connection()
        statement = parse_script(create_sql, allow_materialized=True)[0]
        compiler = OpenIVMCompiler(
            con.catalog, self.flags, known_views=set(self._views)
        )
        compiled = compiler.compile_query(statement.name, statement.query)
        for sql in compiled.ddl:
            con.execute(sql)
        state = self._register_compiled(compiled)
        if compiled.model.analysis.subquery_tables:
            # The checkpoint image carries no subquery-snapshot pins: the
            # WAL tail may have moved the subquery source past the
            # verdicts the stored rows were filtered under, so the
            # recovery refresh rebuilds the view wholesale instead of
            # trusting propagation against a silently re-pinned snapshot.
            state.needs_recompute = True

    def restore_view_state(
        self, name: str, sections: dict, pending_changes: int = 0
    ) -> None:
        """Recovery: load the checkpointed incremental-state images for
        ``name`` — join sides, liveness counters, extrema multisets —
        falling back to a base-table reseed (``step.initialize``) for any
        image the checkpoint lacks.  Entries are restored through the
        byte-identity-preserving :func:`~repro.storage.checkpoint.
        restore_state_value` (only the codec's lossy float decodes are
        undone), so every cell keeps the exact memcomparable address it
        had before the crash.
        """
        from repro.storage.checkpoint import (
            restore_state_row,
            restore_state_value,
        )

        con = self._require_connection()
        state = self.view_state(name)
        compiled = state.compiled
        vkey = compiled.name.lower()
        steps = {step.name: step for step in compiled.native_steps}
        sharded = steps.get("sharded")
        if sharded is not None:
            # Swap in the hash-partitioned state wrappers first; the
            # loads below then route entries by shard.
            sharded.prepare_states()
            step1, step2b, step3 = sharded.step1, sharded.step2b, sharded.step3
        else:
            step1 = steps.get("step1")
            step2b = steps.get("step2b")
            step3 = steps.get("step3")

        if step1 is not None and step1.is_join:
            entries = sections.get(f"state:{vkey}:join")
            if entries is None:
                step1.initialize(con)
            else:
                factory = step1.state_factory or IndexedJoinState
                join_state = factory(step1.join_left_key, step1.join_right_key)
                left, right = compiled.model.analysis.tables
                schemas = (
                    con.table(left.name).schema,
                    con.table(right.name).schema,
                )
                join_state.load_dump(
                    (
                        int(entry[0]),
                        restore_state_row(
                            tuple(entry[1:-1]), schemas[int(entry[0])]
                        ),
                        int(entry[-1]),
                    )
                    for entry in entries
                )
                step1.state = join_state

        if step3 is not None and step3.counters is not None:
            entries = sections.get(f"state:{vkey}:live")
            if entries is None:
                step3.initialize(con)
            else:
                # The counters are a plain dict keyed by group tuples, so
                # a decoded DATE key (ordinal float) would never hash to
                # the runtime date object it was — undo the lossy float
                # decodes through the view's key column types.  Raw-string
                # keys (INSERT-capture spelling) stay strings, exactly as
                # they were keyed before the crash.
                mv_schema = con.table(compiled.name).schema
                key_types = [
                    mv_schema.columns[i].type
                    for i in mv_schema.primary_key_indexes
                ]
                step3.counters.load(
                    (
                        tuple(
                            restore_state_value(value, dtype)
                            for value, dtype in zip(entry[:-1], key_types)
                        )
                        if len(entry) - 1 == len(key_types)
                        else tuple(entry[:-1]),
                        int(entry[-1]),
                    )
                    for entry in entries
                )

        if step2b is not None:
            complete = all(
                f"state:{vkey}:ext:{ordinal}" in sections
                for ordinal in step2b.sources
            )
            if not complete:
                step2b.initialize(con)
            else:
                mv_schema = con.table(compiled.name).schema
                value_types = {
                    column.value_ordinal: mv_schema.columns[
                        column.stored_ordinal
                    ].type
                    for column in step2b.columns
                }
                for ordinal, source in step2b.sources.items():
                    entries = sections[f"state:{vkey}:ext:{ordinal}"]
                    vtype = value_types.get(ordinal)
                    source.state.load(
                        (
                            tuple(entry[:-2]),
                            restore_state_value(entry[-2], vtype),
                            int(entry[-1]),
                        )
                        for entry in entries
                    )

        state.pending_changes = int(pending_changes)

    def _refresh_closure(self, state: _ViewState) -> list[_ViewState]:
        """Every view sharing one of ``state``'s input delta tables
        (transitively), in DAG topological order — a closure can span
        levels when a view joins an upstream with that upstream's own
        source, and the upstream must then consume the shared ΔT (and
        emit its feed rows) before the joining view reads both."""
        names: set[str] = set()
        frontier = [state.compiled.name.lower()]
        while frontier:
            current = frontier.pop()
            if current in names:
                continue
            names.add(current)
            compiled = self._views[current].compiled
            for delta in compiled.delta_tables.values():
                for reader in self._delta_readers.get(delta.lower(), ()):
                    if reader not in names:
                        frontier.append(reader)
        order = {n: i for i, n in enumerate(self._dag.topo_sort())}
        return [
            self._views[n]
            for n in sorted(names, key=lambda n: (order.get(n, -1), n))
        ]

    def _invalidate_dependents(self, member: _ViewState, reason: str) -> None:
        """An upstream refresh failed (or was rolled back): flag every
        direct dependent for the recompute self-heal and count the
        invalidation — the cascade feed may carry captures from the
        discarded pipeline, so propagating from it is no longer safe."""
        name = member.compiled.name.lower()
        for dependent in self._dag.dependents(name):
            dep = self._views.get(dependent)
            if dep is None:
                continue
            dep.needs_recompute = True
            dep.stats.upstream_invalidations += 1
            dep.stats.record_event(
                "upstream_invalidate", upstream=name, reason=reason
            )

    # -- hooks ----------------------------------------------------------------

    def _pre_hook(self, connection: Connection, statement: ast.Statement):
        if isinstance(statement, ast.CreateView) and statement.materialized:
            return self._handle_create(statement)
        if isinstance(statement, ast.RefreshView):
            self.refresh(statement.name)
            return Result(statement_type="REFRESH MATERIALIZED VIEW")
        if isinstance(statement, ast.DropView):
            if statement.name.lower() in self._views:
                return self._handle_drop(statement)
            return None
        if isinstance(statement, ast.Select):
            self._lazy_refresh_for_select(statement)
            return None
        return None

    def _post_hook(
        self, connection: Connection, statement: ast.Statement, result: Result
    ) -> None:
        """After a DML statement on a watched base table, apply the refresh
        policy (the capture itself happened in the AFTER triggers).

        With the ingest queue on, the pending-change accounting moves to
        drain time (:meth:`_drain_queue`) — the capture deferred the ΔT
        write, so counting here would let a refresh consume an empty ΔT
        and zero counters the queue still backs.  The synchronous pump
        below drains on the batch-size/deadline/watermark triggers when
        no background refresher owns the queue.
        """
        if not isinstance(statement, (ast.Insert, ast.Delete, ast.Update)):
            return
        table_key = statement.table.lower()
        watchers = self._watched.get(table_key, set())
        snapshot_watchers = self._snapshot_watch.get(table_key, set())
        if (not watchers and not snapshot_watchers) or result.rowcount == 0:
            return
        for view_name in sorted(snapshot_watchers):
            member = self._views.get(view_name)
            if member is not None:
                # The table only feeds the view's WHERE subquery: no ΔT
                # rows, but the pinned verdicts are stale — the next
                # refresh repairs them (or recomputes on the SQL rungs).
                member.snapshot_dirty = True
        if self._refresh_depth:
            # Statement issued by a running pipeline (e.g. a recompute
            # populate touching a snapshot-watched table): the flags are
            # set, the owning refresh finishes the work.
            return
        if self._queue is not None and self._daemon is None:
            self._runtime_pump()
        for view_name in sorted(watchers | snapshot_watchers):
            state = self._views.get(view_name)
            if state is None:
                continue
            if view_name in watchers and self._queue is None:
                state.pending_changes += result.rowcount
            mode = state.compiled.model.flags.mode
            if mode is PropagationMode.EAGER:
                self.refresh(view_name)
            elif (
                mode is PropagationMode.BATCH
                and state.pending_changes >= state.compiled.model.flags.batch_size
            ):
                self.refresh(view_name)

    # -- CREATE / DROP ---------------------------------------------------------

    def _handle_create(self, statement: ast.CreateView) -> Result:
        con = self._require_connection()
        name = statement.name
        if name.lower() in self._views:
            if statement.if_not_exists:
                return Result(statement_type="CREATE MATERIALIZED VIEW")
            raise IVMError(f"materialized view {name!r} already exists")
        if name.lower() in _referenced_tables(statement.query):
            raise DependencyCycleError(
                f"materialized view {name!r} references itself",
                cycle=(name.lower(), name.lower()),
            )
        compiler = OpenIVMCompiler(
            con.catalog, self.flags, known_views=set(self._views)
        )
        compiled = compiler.compile_query(name, statement.query)
        # Cascade protocol: bring every upstream view current and let the
        # existing readers of its feed consume (and truncate) any parked
        # feed rows first — the populate below reads the upstream's
        # stored rows directly, so feed deltas left pending would later
        # be applied on top of state that already includes them.
        for source in compiled.view_sources:
            self.refresh(source)
            feed = self.flags.cascade_delta_table(source)
            for reader in sorted(self._delta_readers.get(feed.lower(), ())):
                self.refresh(reader)
        for sql in compiled.ddl:
            con.execute(sql)
        con.execute(compiled.populate)
        for step in compiled.native_steps:
            # Build per-step persistent state from the just-populated base
            # tables: the ART-indexed join state for step 1 (rewinding any
            # ΔT rows other views left pending), the exact group-liveness
            # counters for step 3.
            step.initialize(con)
        self._register_compiled(compiled)
        if self._durability is not None:
            # Cover the freshly populated view: WAL records only carry
            # base-table deltas, so the initial state must come from a
            # checkpoint.
            self._durability.checkpoint()
        return Result(statement_type="CREATE MATERIALIZED VIEW")

    def _register_compiled(self, compiled: CompiledView) -> _ViewState:
        """Book-keeping shared by CREATE and recovery: store the script,
        parse the propagation statements once, register the view state,
        and install the capture triggers."""
        name = compiled.name
        # Register the DAG node first: the cycle check must reject the
        # view before any runtime bookkeeping is installed.
        self._dag.add_view(name, upstream=compiled.view_sources)
        self._store_script(compiled)
        prepared = [
            (label, parse_script(sql)[0]) for label, sql in compiled.propagation
        ]
        state = _ViewState(compiled=compiled, prepared=prepared)
        flags = compiled.model.flags
        state.ladder = DegradationLadder(heal_after=flags.degradation_heal_after)
        if flags.adaptive:
            state.adaptive = AdaptivePlanner(
                build_plan_arms(compiled.model, compiled.native_steps),
                all_steps=compiled.native_steps,
                epsilon=flags.adaptive_epsilon,
                seed=planner_seed(flags.adaptive_seed, name),
            )
            state.stats.decision_history = flags.adaptive_history
        self._views[name.lower()] = state
        state.stats.dag_depth = self._dag.depth(name)
        view_sources = {source.lower() for source in compiled.view_sources}
        for base_table, delta_table in compiled.delta_tables.items():
            self._delta_readers.setdefault(delta_table.lower(), set()).add(
                name.lower()
            )
            if base_table.lower() in view_sources:
                # View-over-view source: deltas arrive through the
                # upstream's cascade feed, written by the cascade trigger
                # on the upstream's stored table.  Not in _watched — the
                # post-statement policy hook must never mistake refresh
                # writes for base DML.
                self._install_cascade_trigger(base_table, delta_table)
            else:
                self._watched.setdefault(base_table.lower(), set()).add(
                    name.lower()
                )
                self._install_capture_triggers(base_table, delta_table)
        for table in compiled.model.analysis.subquery_tables:
            self._snapshot_watch.setdefault(table.lower(), set()).add(
                name.lower()
            )
        return state

    def _handle_drop(self, statement: ast.DropView) -> Result:
        con = self._require_connection()
        name = statement.name.lower()
        dependents = self._dag.dependents(name)
        if dependents:
            raise IVMError(
                f"cannot drop materialized view {statement.name!r}: "
                f"{sorted(dependents)} are defined over it"
            )
        state = self._views.pop(name)
        compiled = state.compiled
        view_sources = {
            source.lower() for source in compiled.view_sources
        }
        for base_table, delta_table in compiled.delta_tables.items():
            if base_table.lower() in view_sources:
                # The last reader of an upstream's cascade feed takes
                # the feed table and the capture trigger with it.
                readers = self._delta_readers.get(delta_table.lower())
                if readers:
                    readers.discard(name)
                    if not readers:
                        del self._delta_readers[delta_table.lower()]
                        con.triggers.unregister(
                            f"__ivm_cascade_{base_table.lower()}"
                        )
                        con.execute(f"DROP TABLE IF EXISTS {delta_table}")
                continue
            watchers = self._watched.get(base_table.lower())
            if watchers:
                watchers.discard(name)
                if not watchers:
                    del self._watched[base_table.lower()]
                    con.triggers.unregister(f"__ivm_capture_{base_table.lower()}")
            readers = self._delta_readers.get(delta_table.lower())
            if readers:
                readers.discard(name)
                if not readers:
                    del self._delta_readers[delta_table.lower()]
                    con.execute(f"DROP TABLE IF EXISTS {delta_table}")
        for table in compiled.model.analysis.subquery_tables:
            snapshot_watchers = self._snapshot_watch.get(table.lower())
            if snapshot_watchers:
                snapshot_watchers.discard(name)
                if not snapshot_watchers:
                    del self._snapshot_watch[table.lower()]
        self._dag.remove_view(name)
        con.execute(f"DROP TABLE IF EXISTS {compiled.delta_view_table}")
        con.execute(f"DROP TABLE IF EXISTS {compiled.name}")
        con.execute(
            "DELETE FROM _duckdb_ivm_views WHERE view_name = ?",
            [compiled.name],
        )
        return Result(statement_type="DROP MATERIALIZED VIEW")

    # -- delta capture ------------------------------------------------------

    def _install_capture_triggers(self, base_table: str, delta_table: str) -> None:
        """AFTER triggers writing changed rows (with multiplicity) to ΔT.

        This is the same mechanism the paper leaves to the user on
        PostgreSQL; inside the extension it is installed automatically,
        playing the role of the DuckDB optimizer rule.
        """
        con = self._require_connection()
        trigger_name = f"__ivm_capture_{base_table.lower()}"
        if trigger_name in con.triggers.triggers_on(base_table):
            return
        delta = con.table(delta_table)

        def capture(connection: Connection, event: str, table: str, rows) -> None:
            delta_rows = delta_capture_rows(event, rows)
            retractions = sum(1 for row in delta_rows if not row[-1])
            if self._queue is not None:
                # Async ingestion: park the batch in the bounded queue;
                # WAL + ΔT happen at drain time.  The base mutation has
                # already been applied (AFTER trigger), so a rejected or
                # fault-injected enqueue flags the watching views for
                # recompute before the error surfaces — shed load costs
                # refresh work, never correctness.
                try:
                    self._queue.enqueue(base_table, delta_rows, retractions)
                except BackpressureError:
                    self._mark_watchers_recompute(
                        base_table, "shed", "backpressure"
                    )
                    raise
                except Exception as error:
                    self._mark_watchers_recompute(
                        base_table, "capture_failure", type(error).__name__
                    )
                    raise
                return
            try:
                if self._durability is not None:
                    # Write-ahead: the signed rows hit the log (and, with
                    # wal_sync, the disk) before they reach ΔT, so a crash
                    # after this point replays them instead of losing them.
                    self._durability.log_delta(base_table, delta_rows)
                # One columnar append per statement (delta tables have no
                # indexes, so this is a straight block extend).
                delta.insert_batch(delta_rows, coerce=False)
            except Exception as error:
                # Fault containment: the base rows are in, the delta is
                # not — the views can no longer trust propagation, so
                # flag them for the recompute self-heal and re-raise.
                self._mark_watchers_recompute(
                    base_table, "capture_failure", type(error).__name__
                )
                raise
            if retractions:
                for watcher in self._watched.get(base_table.lower(), ()):
                    member = self._views.get(watcher)
                    if member is not None:
                        member.pending_retractions += retractions

        for event in ("INSERT", "DELETE", "UPDATE"):
            con.triggers.register(trigger_name, base_table, event, capture)

    def _install_cascade_trigger(self, upstream: str, feed_table: str) -> None:
        """AFTER triggers on an upstream materialized view's stored table,
        writing its refresh-applied row changes (with multiplicity) into
        the shared cascade feed ``delta_<view>__out`` — the downstream
        views' ΔT.  One feed per upstream, shared by all dependents,
        exactly like a base table's shared ΔT.

        Unlike the base-table capture path this bypasses both the WAL and
        the ingest queue on purpose: feed rows are *derived* state — a
        recovery regenerates them by refreshing the DAG in topological
        order — and routing them through the base-table queue would
        re-order them against the refresh that produced them.
        """
        con = self._require_connection()
        trigger_name = f"__ivm_cascade_{upstream.lower()}"
        if trigger_name in con.triggers.triggers_on(upstream):
            return
        feed = con.table(feed_table)
        feed_key = feed_table.lower()

        def capture(connection: Connection, event: str, table: str, rows) -> None:
            delta_rows = delta_capture_rows(event, rows)
            if not delta_rows:
                return
            retractions = sum(1 for row in delta_rows if not row[-1])
            feed.insert_batch(delta_rows, coerce=False)
            for reader in self._delta_readers.get(feed_key, ()):
                member = self._views.get(reader)
                if member is not None:
                    member.pending_changes += len(delta_rows)
                    member.pending_retractions += retractions

        for event in ("INSERT", "DELETE", "UPDATE"):
            con.triggers.register(trigger_name, upstream, event, capture)

    # -- lazy refresh -----------------------------------------------------------

    def _lazy_refresh_for_select(self, statement: ast.Select) -> None:
        referenced = _referenced_tables(statement)
        if self._queue is not None and any(
            name in self._views for name in referenced
        ):
            # Deltas still parked in the ingest queue are invisible to
            # the pending counters; a lazy read must see them.
            self._drain_queue()
        for name in sorted(referenced):
            state = self._views.get(name)
            if state is None:
                continue
            upstream_stale = any(
                self._is_stale(self._views[upstream])
                for upstream in self._dag.upstream_closure(name)
                if upstream in self._views
            )
            if state.needs_recompute or state.snapshot_dirty or upstream_stale:
                # Repair before the read regardless of mode: a shed or
                # contained capture failure (or a stale upstream whose
                # deltas have not cascaded down yet, or a moved subquery
                # snapshot) left the view behind, and no future DML is
                # guaranteed.
                self.refresh(state.compiled.name)
            elif (
                state.pending_changes
                and state.compiled.model.flags.mode
                is not PropagationMode.EAGER
            ):
                self.refresh(state.compiled.name)

    # -- script store ---------------------------------------------------------

    def _store_script(self, compiled: CompiledView) -> None:
        if self.script_dir is None:
            return
        self.script_dir.mkdir(parents=True, exist_ok=True)
        path = self.script_dir / f"{compiled.name}.sql"
        path.write_text(compiled.script() + "\n", encoding="utf-8")

    def _require_connection(self) -> Connection:
        if self._connection is None:
            raise IVMError("extension is not loaded; call load_ivm(connection)")
        return self._connection

    # -- the async ingestion runtime ----------------------------------------

    @property
    def queue(self) -> IngestQueue | None:
        """The bounded ingest queue, or None when
        ``CompilerFlags.ingest_queue`` is off."""
        return self._queue

    def _drain_queue(self) -> None:
        """Move every queued delta batch to WAL + ΔT and update the
        pending counters — the single funnel between the async capture
        path and the refresh pipeline.

        A batch that fails to land (WAL fault, ΔT error) marks its
        watchers ``needs_recompute`` and is dropped — its base rows are
        already applied, so the recompute self-heal converges the views;
        the remaining batches still land.  The first error is re-raised
        after the drain completes.
        """
        if self._queue is None or self._queue.depth() == 0:
            return
        con = self._require_connection()
        with self._runtime_lock:
            batches = self._queue.drain()
            first_error: Exception | None = None
            for batch in batches:
                try:
                    if self._durability is not None:
                        self._durability.log_delta(batch.table, batch.rows)
                    delta_name = self.flags.delta_table(batch.table)
                    con.table(delta_name).insert_batch(
                        batch.rows, coerce=False
                    )
                except Exception as error:
                    self._mark_watchers_recompute(
                        batch.table, "drain_failure", type(error).__name__
                    )
                    if first_error is None:
                        first_error = error
                    continue
                for watcher in self._watched.get(batch.table.lower(), ()):
                    member = self._views.get(watcher)
                    if member is not None:
                        member.pending_changes += len(batch.rows)
                        member.pending_retractions += batch.retractions
            if first_error is not None:
                raise first_error

    def _runtime_pump(self, force: bool = False) -> None:
        """The synchronous refresher: drain when a trigger is due —
        queued rows past the batch size (BATCH mode), the oldest batch
        past ``queue_deadline``, or the high watermark crossed."""
        if self._queue is None:
            return
        batch_rows = (
            self.flags.batch_size
            if self.flags.mode is PropagationMode.BATCH
            else 0
        )
        if force or self._queue.drain_due(batch_rows, self.flags.queue_deadline):
            self._drain_queue()

    def _daemon_pump(self) -> None:
        """The background refresher's tick (``queue_async``): same
        triggers as the synchronous pump, on the daemon thread."""
        self._runtime_pump()

    def _mark_watchers_recompute(
        self, base_table: str, kind: str, reason: str
    ) -> None:
        """Flag every view watching ``base_table`` for the recompute
        self-heal and record the structured event."""
        for watcher in self._watched.get(base_table.lower(), ()):
            member = self._views.get(watcher)
            if member is None:
                continue
            member.needs_recompute = True
            member.stats.record_event(kind, table=base_table, reason=reason)

    def health(self) -> dict:
        """The live health report (the ``openivm health`` CLI shape):
        per-view recompute/degradation status, ingest-queue counters,
        durability facts, and the fault plan's firing counts."""
        report: dict[str, Any] = {
            "views": [],
            "queue": None if self._queue is None else self._queue.snapshot(),
            "durability": None,
            "faults": None,
        }
        for name in self.views():
            state = self._views[name]
            ladder = state.ladder
            report["views"].append(
                {
                    "view": state.compiled.name,
                    "pending_changes": state.pending_changes,
                    "needs_recompute": state.needs_recompute,
                    "rung": ladder.rung,
                    "rung_name": ladder.rung_name,
                    "demotions": ladder.demotions,
                    "heals": ladder.heals,
                    "refresh_count": state.refresh_count,
                    "depth": self._dag.depth(name),
                    "upstreams": sorted(self._dag.upstream(name)),
                    "dependents": sorted(self._dag.dependents(name)),
                    "upstream_invalidations": (
                        state.stats.upstream_invalidations
                    ),
                    "snapshot_dirty": state.snapshot_dirty,
                    "recent_events": [
                        dict(event) for event in state.stats.events[-8:]
                    ],
                }
            )
        if self._durability is not None:
            report["durability"] = {
                "directory": str(self._durability.directory),
                "wal_last_lsn": self._durability.wal.last_lsn,
                "checkpoint_failures": self._durability.checkpoint_failures,
            }
        if self.flags.fault_plan is not None:
            report["faults"] = self.flags.fault_plan.snapshot()
        return report


def load_ivm(
    connection: Connection,
    flags: CompilerFlags | None = None,
    script_dir: str | pathlib.Path | None = None,
    durability_dir: str | pathlib.Path | None = None,
) -> IVMExtension:
    """Load the OpenIVM extension into ``connection`` (like DuckDB LOAD)."""
    extension = IVMExtension(
        flags=flags, script_dir=script_dir, durability_dir=durability_dir
    )
    extension.register(connection)
    return extension


def _clear_step_pendings(step) -> None:
    """Drop per-round batches a failed refresh may have left half-consumed
    (step-1 pushes to the liveness/extrema steps, touched-key lists)."""
    if step.name == "sharded":
        for inner in (step.step1, step.step2, step.step3, step.step2b):
            if inner is not None:
                _clear_step_pendings(inner)
        return
    for attr in ("pending", "pending_keys", "pending_touched"):
        value = getattr(step, attr, None)
        if isinstance(value, list):
            value.clear()
    sources = getattr(step, "sources", None)
    if isinstance(sources, dict):
        for source in sources.values():
            source.pending.clear()


def _referenced_tables(statement: ast.Select) -> set[str]:
    """All base-table names referenced anywhere in a SELECT (lowercased)."""
    names: set[str] = set()

    def visit_select(select: ast.Select) -> None:
        for cte in select.ctes:
            visit_select(cte.query)
        if select.from_clause is not None:
            visit_ref(select.from_clause)
        for _, right in select.set_ops:
            visit_select(right)

    def visit_ref(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.BaseTableRef):
            names.add(ref.name.lower())
        elif isinstance(ref, ast.SubqueryRef):
            visit_select(ref.query)
        elif isinstance(ref, ast.JoinRef):
            visit_ref(ref.left)
            visit_ref(ref.right)

    visit_select(statement)
    return names
