"""OpenIVM wrapped as a loadable engine extension.

Paper §2, "The Extension Module: OpenIVM inside DuckDB":

* "when the fall-back parser parses a CREATE MATERIALIZED VIEW, we execute
  the compiled output to create the delta tables as well as any generated
  intermediate result tables or indexes, along with a table that
  represents the materialized result" — :meth:`IVMExtension._handle_create`.
* "another optimizer rule can then be used to intercept
  INSERT/DELETE/UPDATE statements into the base tables ... fill the delta
  tables ΔT, and kick off the SQL propagation scripts" — the DML capture
  triggers plus the post-statement refresh policy.
* "We store the SQL scripts that propagate the contents of the delta
  tables to the materialized view table on the disk" — ``script_dir``.
* "These SQL commands can either be run eagerly ... or lazily, i.e.
  refreshing the materialized view when it is queried" — the
  :class:`~repro.core.flags.PropagationMode` policy (plus BATCH).

Usage::

    con = Connection()
    ivm = load_ivm(con)            # like LOAD 'openivm'
    con.execute("CREATE TABLE groups (g VARCHAR, v INTEGER)")
    con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
                "FROM groups GROUP BY g")
    con.execute("INSERT INTO groups VALUES ('a', 1)")
    con.execute("SELECT * FROM q")   # lazy refresh happens here
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field

from repro.core.compiler import CompiledView, OpenIVMCompiler
from repro.core.flags import CompilerFlags, PropagationMode
from repro.core.propagate import RefreshStats, run_pipeline
from repro.engine.connection import Connection
from repro.engine.triggers import delta_capture_rows
from repro.engine.result import Result
from repro.errors import IVMError, ParserError
from repro.sql import ast
from repro.sql.parser import parse_script


@dataclass
class _ViewState:
    """Runtime bookkeeping for one registered materialized view."""

    compiled: CompiledView
    pending_changes: int = 0
    refresh_count: int = 0
    # Propagation statements parsed once at CREATE time (labels preserved),
    # so a refresh skips re-parsing the stored scripts.
    prepared: list[tuple[str, ast.Statement]] = None
    # Per-refresh counters (wall time, per-step time, rows, shard skew).
    stats: RefreshStats = field(default_factory=RefreshStats)


class _MaterializedViewParser:
    """Fall-back parser accepting the MATERIALIZED VIEW statements.

    "Similar to DuckPGQ ... we developed a simple fall-back parser that
    recognizes the CREATE MATERIALIZED VIEW syntax."
    """

    def try_parse(self, sql: str) -> list[ast.Statement] | None:
        try:
            statements = parse_script(sql, allow_materialized=True)
        except ParserError:
            return None
        interesting = any(
            (isinstance(s, ast.CreateView) and s.materialized)
            or isinstance(s, ast.RefreshView)
            for s in statements
        )
        return statements if interesting else None


class IVMExtension:
    """The extension object; one instance per connection."""

    def __init__(
        self,
        flags: CompilerFlags | None = None,
        script_dir: str | pathlib.Path | None = None,
    ) -> None:
        self.flags = flags or CompilerFlags()
        self.script_dir = pathlib.Path(script_dir) if script_dir else None
        self._connection: Connection | None = None
        self._views: dict[str, _ViewState] = {}
        # base table (lower) -> view names watching it
        self._watched: dict[str, set[str]] = {}
        # delta table name (lower) -> view names reading it
        self._delta_readers: dict[str, set[str]] = {}

    # -- registration (the paper's "registration functions") ----------------

    def register(self, connection: Connection) -> None:
        if self._connection is not None:
            raise IVMError("extension is already loaded into a connection")
        self._connection = connection
        connection.extensions.register_parser(_MaterializedViewParser())
        connection.extensions.register_pre_hook(self._pre_hook)
        connection.extensions.register_post_hook(self._post_hook)
        connection.extensions.mark_loaded("openivm", self)

    # -- public API ---------------------------------------------------------

    def views(self) -> list[str]:
        return sorted(self._views)

    def view_state(self, name: str) -> _ViewState:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise IVMError(f"materialized view {name!r} does not exist") from None

    def compiled(self, name: str) -> CompiledView:
        return self.view_state(name).compiled

    def refresh(self, name: str) -> None:
        """Run the propagation pipeline for ``name`` (and for every view
        sharing one of its delta tables, so shared ΔT are consumed once).

        Each view runs its :class:`~repro.core.propagate.NativeStep`
        pipeline interleaved with the compiled SQL, per step: steps the
        vectorized kernels cover (Z-set delta compute, signed-collapse
        upsert, exact liveness delete, in-memory truncation) run natively,
        the rest execute their SQL statements.  All propagation modes —
        eager, lazy, and batch — funnel through here.
        """
        state = self.view_state(name)
        closure = self._refresh_closure(state)
        con = self._require_connection()
        for member in closure:
            stats = member.stats
            stats.begin_round()
            pending_before = member.pending_changes
            started = time.perf_counter()
            # Epoch-pin the view table: concurrent readers keep scanning
            # the pre-refresh snapshot until the commit below, so they
            # never observe a half-applied refresh.
            pinned = member.compiled.model.flags.snapshot_reads
            if pinned:
                con.begin_table_snapshot(member.compiled.name)
            try:
                run_pipeline(
                    con,
                    member.prepared,
                    member.compiled.native_steps,
                    execute=con.execute_statement,
                    # Shared ΔT tables are cleared once for the whole
                    # closure.
                    skip_label=lambda label: label.startswith(
                        "step4: clear delta table"
                    ),
                    stats=stats,
                )
            finally:
                if pinned:
                    con.commit_table_snapshot(member.compiled.name)
            member.pending_changes = 0
            member.refresh_count += 1
            rows_in = pending_before
            skew = 0.0
            for step in member.compiled.native_steps:
                loads = getattr(step, "last_shard_loads", None)
                if loads and sum(loads) > 0:
                    skew = max(loads) * len(loads) / sum(loads)
                rows_in = max(rows_in, getattr(step, "last_rows_in", 0))
            stats.finish_round(time.perf_counter() - started, rows_in, skew)
        delta_tables = {
            delta
            for member in closure
            for delta in member.compiled.delta_tables.values()
        }
        native_truncate = all(
            any(
                step.name in ("step4", "sharded")
                for step in member.compiled.native_steps
            )
            for member in closure
        )
        for delta in sorted(delta_tables):
            if native_truncate:
                con.truncate_table(delta)
            else:
                con.execute(f"DELETE FROM {delta}")

    def refresh_all(self) -> None:
        for name in self.views():
            if self._views[name].pending_changes:
                self.refresh(name)

    def refresh_stats(self, name: str) -> dict:
        """JSON-shaped per-refresh counters for ``name`` (wall seconds,
        per-step seconds, rows in/moved, shard skew ratio)."""
        return self.view_state(name).stats.snapshot()

    def status(self) -> list[dict]:
        """Per-view runtime status (for dashboards/demos): name, class,
        strategy, mode, pending delta rows, refresh rounds, stored rows."""
        con = self._require_connection()
        report = []
        for name in self.views():
            state = self._views[name]
            compiled = state.compiled
            report.append(
                {
                    "view": compiled.name,
                    "class": compiled.view_class.value,
                    "strategy": compiled.model.flags.strategy.value,
                    "mode": compiled.model.flags.mode.value,
                    "batched": bool(state.compiled.native_steps),
                    "native_steps": sorted(
                        step.name for step in state.compiled.native_steps
                    ),
                    "pending_changes": state.pending_changes,
                    "refresh_count": state.refresh_count,
                    "rows": len(con.table(compiled.name)),
                    "base_tables": sorted(compiled.delta_tables),
                }
            )
        return report

    def _refresh_closure(self, state: _ViewState) -> list[_ViewState]:
        names: set[str] = set()
        frontier = [state.compiled.name.lower()]
        while frontier:
            current = frontier.pop()
            if current in names:
                continue
            names.add(current)
            compiled = self._views[current].compiled
            for delta in compiled.delta_tables.values():
                for reader in self._delta_readers.get(delta.lower(), ()):
                    if reader not in names:
                        frontier.append(reader)
        return [self._views[n] for n in sorted(names)]

    # -- hooks ----------------------------------------------------------------

    def _pre_hook(self, connection: Connection, statement: ast.Statement):
        if isinstance(statement, ast.CreateView) and statement.materialized:
            return self._handle_create(statement)
        if isinstance(statement, ast.RefreshView):
            self.refresh(statement.name)
            return Result(statement_type="REFRESH MATERIALIZED VIEW")
        if isinstance(statement, ast.DropView):
            if statement.name.lower() in self._views:
                return self._handle_drop(statement)
            return None
        if isinstance(statement, ast.Select):
            self._lazy_refresh_for_select(statement)
            return None
        return None

    def _post_hook(
        self, connection: Connection, statement: ast.Statement, result: Result
    ) -> None:
        """After a DML statement on a watched base table, apply the refresh
        policy (the capture itself happened in the AFTER triggers)."""
        if not isinstance(statement, (ast.Insert, ast.Delete, ast.Update)):
            return
        watchers = self._watched.get(statement.table.lower())
        if not watchers or result.rowcount == 0:
            return
        for view_name in sorted(watchers):
            state = self._views[view_name]
            state.pending_changes += result.rowcount
            mode = state.compiled.model.flags.mode
            if mode is PropagationMode.EAGER:
                self.refresh(view_name)
            elif (
                mode is PropagationMode.BATCH
                and state.pending_changes >= state.compiled.model.flags.batch_size
            ):
                self.refresh(view_name)

    # -- CREATE / DROP ---------------------------------------------------------

    def _handle_create(self, statement: ast.CreateView) -> Result:
        con = self._require_connection()
        name = statement.name
        if name.lower() in self._views:
            if statement.if_not_exists:
                return Result(statement_type="CREATE MATERIALIZED VIEW")
            raise IVMError(f"materialized view {name!r} already exists")
        compiler = OpenIVMCompiler(con.catalog, self.flags)
        compiled = compiler.compile_query(name, statement.query)
        for sql in compiled.ddl:
            con.execute(sql)
        con.execute(compiled.populate)
        for step in compiled.native_steps:
            # Build per-step persistent state from the just-populated base
            # tables: the ART-indexed join state for step 1 (rewinding any
            # ΔT rows other views left pending), the exact group-liveness
            # counters for step 3.
            step.initialize(con)
        self._store_script(compiled)
        prepared = [
            (label, parse_script(sql)[0]) for label, sql in compiled.propagation
        ]
        state = _ViewState(compiled=compiled, prepared=prepared)
        self._views[name.lower()] = state
        for base_table, delta_table in compiled.delta_tables.items():
            self._watched.setdefault(base_table.lower(), set()).add(name.lower())
            self._delta_readers.setdefault(delta_table.lower(), set()).add(
                name.lower()
            )
            self._install_capture_triggers(base_table, delta_table)
        return Result(statement_type="CREATE MATERIALIZED VIEW")

    def _handle_drop(self, statement: ast.DropView) -> Result:
        con = self._require_connection()
        name = statement.name.lower()
        state = self._views.pop(name)
        compiled = state.compiled
        for base_table, delta_table in compiled.delta_tables.items():
            watchers = self._watched.get(base_table.lower())
            if watchers:
                watchers.discard(name)
                if not watchers:
                    del self._watched[base_table.lower()]
                    con.triggers.unregister(f"__ivm_capture_{base_table.lower()}")
            readers = self._delta_readers.get(delta_table.lower())
            if readers:
                readers.discard(name)
                if not readers:
                    del self._delta_readers[delta_table.lower()]
                    con.execute(f"DROP TABLE IF EXISTS {delta_table}")
        con.execute(f"DROP TABLE IF EXISTS {compiled.delta_view_table}")
        con.execute(f"DROP TABLE IF EXISTS {compiled.name}")
        con.execute(
            "DELETE FROM _duckdb_ivm_views WHERE view_name = ?",
            [compiled.name],
        )
        return Result(statement_type="DROP MATERIALIZED VIEW")

    # -- delta capture ------------------------------------------------------

    def _install_capture_triggers(self, base_table: str, delta_table: str) -> None:
        """AFTER triggers writing changed rows (with multiplicity) to ΔT.

        This is the same mechanism the paper leaves to the user on
        PostgreSQL; inside the extension it is installed automatically,
        playing the role of the DuckDB optimizer rule.
        """
        con = self._require_connection()
        trigger_name = f"__ivm_capture_{base_table.lower()}"
        if trigger_name in con.triggers.triggers_on(base_table):
            return
        delta = con.table(delta_table)

        def capture(connection: Connection, event: str, table: str, rows) -> None:
            # One columnar append per statement (delta tables have no
            # indexes, so this is a straight block extend).
            delta.insert_batch(delta_capture_rows(event, rows), coerce=False)

        for event in ("INSERT", "DELETE", "UPDATE"):
            con.triggers.register(trigger_name, base_table, event, capture)

    # -- lazy refresh -----------------------------------------------------------

    def _lazy_refresh_for_select(self, statement: ast.Select) -> None:
        referenced = _referenced_tables(statement)
        for name in sorted(referenced):
            state = self._views.get(name)
            if state is None or state.pending_changes == 0:
                continue
            if state.compiled.model.flags.mode is not PropagationMode.EAGER:
                self.refresh(state.compiled.name)

    # -- script store ---------------------------------------------------------

    def _store_script(self, compiled: CompiledView) -> None:
        if self.script_dir is None:
            return
        self.script_dir.mkdir(parents=True, exist_ok=True)
        path = self.script_dir / f"{compiled.name}.sql"
        path.write_text(compiled.script() + "\n", encoding="utf-8")

    def _require_connection(self) -> Connection:
        if self._connection is None:
            raise IVMError("extension is not loaded; call load_ivm(connection)")
        return self._connection


def load_ivm(
    connection: Connection,
    flags: CompilerFlags | None = None,
    script_dir: str | pathlib.Path | None = None,
) -> IVMExtension:
    """Load the OpenIVM extension into ``connection`` (like DuckDB LOAD)."""
    extension = IVMExtension(flags=flags, script_dir=script_dir)
    extension.register(connection)
    return extension


def _referenced_tables(statement: ast.Select) -> set[str]:
    """All base-table names referenced anywhere in a SELECT (lowercased)."""
    names: set[str] = set()

    def visit_select(select: ast.Select) -> None:
        for cte in select.ctes:
            visit_select(cte.query)
        if select.from_clause is not None:
            visit_ref(select.from_clause)
        for _, right in select.set_ops:
            visit_select(right)

    def visit_ref(ref: ast.TableRef) -> None:
        if isinstance(ref, ast.BaseTableRef):
            names.add(ref.name.lower())
        elif isinstance(ref, ast.SubqueryRef):
            visit_select(ref.query)
        elif isinstance(ref, ast.JoinRef):
            visit_ref(ref.left)
            visit_ref(ref.right)

    visit_select(statement)
    return names
