"""In-memory catalog of tables, views and indexes.

One :class:`Catalog` per engine instance.  Lookup is case-insensitive, as
in DuckDB/PostgreSQL with unquoted identifiers.  Attached foreign catalogs
(the HTAP scanner bridge) are registered here under an alias so that
``alias.table`` resolves across systems.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.catalog.schema import IndexSchema, TableSchema, ViewSchema
from repro.errors import CatalogError

if TYPE_CHECKING:
    from repro.storage.table import Table


class Catalog:
    """Registry mapping names to storage objects."""

    def __init__(self) -> None:
        self._tables: dict[str, "Table"] = {}
        self._views: dict[str, ViewSchema] = {}
        self._indexes: dict[str, IndexSchema] = {}
        self._attached: dict[str, "Catalog"] = {}

    # -- tables ---------------------------------------------------------

    def create_table(self, table: "Table", if_not_exists: bool = False) -> None:
        key = table.schema.name.lower()
        if key in self._tables or key in self._views:
            if if_not_exists:
                return
            raise CatalogError(f"object {table.schema.name!r} already exists")
        self._tables[key] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self._indexes = {
            iname: idx for iname, idx in self._indexes.items() if idx.table.lower() != key
        }

    def table(self, name: str, schema: str | None = None) -> "Table":
        if schema is not None:
            return self.attached(schema).table(name)
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterator["Table"]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(t.schema.name for t in self._tables.values())

    # -- views ------------------------------------------------------------

    def create_view(self, view: ViewSchema, if_not_exists: bool = False) -> None:
        key = view.name.lower()
        if key in self._views or key in self._tables:
            if if_not_exists:
                return
            raise CatalogError(f"object {view.name!r} already exists")
        self._views[key] = view

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return
            raise CatalogError(f"view {name!r} does not exist")
        del self._views[key]

    def view(self, name: str) -> ViewSchema:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"view {name!r} does not exist") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    # -- indexes ---------------------------------------------------------

    def create_index(self, index: IndexSchema, if_not_exists: bool = False) -> None:
        key = index.name.lower()
        if key in self._indexes:
            if if_not_exists:
                return
            raise CatalogError(f"index {index.name!r} already exists")
        if not self.has_table(index.table):
            raise CatalogError(f"table {index.table!r} does not exist")
        self._indexes[key] = index

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._indexes:
            if if_exists:
                return
            raise CatalogError(f"index {name!r} does not exist")
        del self._indexes[key]

    def index(self, name: str) -> IndexSchema:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"index {name!r} does not exist") from None

    def indexes_on(self, table: str) -> list[IndexSchema]:
        key = table.lower()
        return [idx for idx in self._indexes.values() if idx.table.lower() == key]

    # -- attached catalogs -------------------------------------------------

    def attach(self, alias: str, other: "Catalog") -> None:
        key = alias.lower()
        if key in self._attached:
            raise CatalogError(f"database alias {alias!r} already attached")
        self._attached[key] = other

    def detach(self, alias: str) -> None:
        try:
            del self._attached[alias.lower()]
        except KeyError:
            raise CatalogError(f"database alias {alias!r} is not attached") from None

    def attached(self, alias: str) -> "Catalog":
        try:
            return self._attached[alias.lower()]
        except KeyError:
            raise CatalogError(f"database alias {alias!r} is not attached") from None

    def attached_aliases(self) -> list[str]:
        return sorted(self._attached)
