"""Catalog: schemas for tables/views/indexes and their registry."""

from repro.catalog.schema import Column, IndexSchema, TableSchema, ViewSchema
from repro.catalog.catalog import Catalog

__all__ = ["Catalog", "Column", "IndexSchema", "TableSchema", "ViewSchema"]
