"""Schema value objects: columns, tables, views, indexes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.datatypes.types import DataType
from repro.errors import BinderError

if TYPE_CHECKING:
    from repro.sql.ast import Select


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type: DataType
    not_null: bool = False

    def __str__(self) -> str:
        suffix = " NOT NULL" if self.not_null else ""
        return f"{self.name} {self.type}{suffix}"


@dataclass
class TableSchema:
    """Column layout and primary key of a stored table."""

    name: str
    columns: list[Column]
    primary_key: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index_by_name = {c.name.lower(): i for i, c in enumerate(self.columns)}
        for key in self.primary_key:
            if key.lower() not in self._index_by_name:
                raise BinderError(
                    f"primary key column {key!r} not in table {self.name!r}"
                )

    def column_index(self, name: str) -> int:
        """Ordinal of ``name`` (case-insensitive); raises BinderError if absent."""
        try:
            return self._index_by_name[name.lower()]
        except KeyError:
            raise BinderError(
                f"column {name!r} does not exist in table {self.name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_by_name

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key_indexes(self) -> list[int]:
        return [self.column_index(name) for name in self.primary_key]


@dataclass
class ViewSchema:
    """A non-materialized view: a named stored query."""

    name: str
    query: "Select"
    sql: str


@dataclass
class IndexSchema:
    """Metadata for a secondary (ART) index."""

    name: str
    table: str
    columns: list[str]
    unique: bool = False
