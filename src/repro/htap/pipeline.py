"""The cross-system orchestrator (paper Figure 3).

Wiring: the OLTP system (PostgreSQL stand-in) holds the base tables and
captures changes into its delta tables via triggers.  The OLAP system
(DuckDB stand-in) attaches the OLTP catalog — "the data stored on
PostgreSQL is accessed via the DuckDB integration with PostgreSQL" — and
hosts the materialized view.  A refresh:

1. drains each OLTP delta table into the OLAP-local mirror ΔT,
2. runs the compiled propagation script on the OLAP side, with base-table
   scans re-pointed at the attached OLTP catalog (the bases have already
   been updated by the transactional workload),
3. clears the local mirrors (step 4 of the script).

The same compiled output drives both the single-system extension and this
pipeline — that is the paper's portability claim in action.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.compiler import CompiledView, OpenIVMCompiler
from repro.core.flags import CompilerFlags
from repro.core.propagate import NativeStep, run_pipeline
from repro.engine.connection import Connection
from repro.engine.result import Result
from repro.errors import IVMError
from repro.htap.oltp import OLTPSystem
from repro.sql import ast
from repro.sql.parser import parse_one

OLTP_ALIAS = "oltp"


@dataclass
class _PipelineView:
    compiled: CompiledView
    # Propagation statements as ASTs with base tables re-pointed at the
    # attached OLTP catalog; executed directly on the OLAP connection.
    propagation: list[tuple[str, ast.Statement]] = field(default_factory=list)
    # Native pipeline steps that run OLAP-locally (everything except the
    # steps needing base-table scans, which live on the OLTP side).
    native_steps: list[NativeStep] = field(default_factory=list)


class CrossSystemPipeline:
    """HTAP pipeline: OLTP deltas → compiled SQL → OLAP materialized view."""

    def __init__(
        self,
        oltp: OLTPSystem | None = None,
        olap: Connection | None = None,
        flags: CompilerFlags | None = None,
    ) -> None:
        self.oltp = oltp or OLTPSystem()
        self.olap = olap or Connection(dialect="duckdb")
        self.flags = flags or CompilerFlags()
        self.olap.attach(OLTP_ALIAS, self.oltp.connection)
        self._views: dict[str, _PipelineView] = {}

    # -- setup ---------------------------------------------------------------

    def create_materialized_view(self, create_view_sql: str) -> CompiledView:
        """Compile against the OLTP schema; host the view on the OLAP side."""
        compiler = OpenIVMCompiler(self.oltp.connection.catalog, self.flags)
        compiled = compiler.compile(create_view_sql)
        if compiled.name.lower() in self._views:
            raise IVMError(f"materialized view {compiled.name!r} already exists")

        # OLTP side: delta capture (the user-configured triggers).
        for base_table in compiled.delta_tables:
            self.oltp.install_capture(base_table)

        # OLAP side: mirror delta tables, the mv table, delta-view table,
        # metadata — the compiled DDL runs verbatim.
        for sql in compiled.ddl:
            self.olap.execute(sql)

        # Initial population scans the base tables through the attachment.
        populate = parse_one(compiled.populate)
        assert isinstance(populate, ast.Insert) and populate.query is not None
        populate.query = self._repoint(populate.query, compiled)
        self.olap.execute_statement(populate)

        view = _PipelineView(compiled=compiled)
        for label, sql in compiled.propagation:
            statement = parse_one(sql)
            self._repoint_statement(statement, compiled)
            view.propagation.append((label, statement))
        # Native steps run against OLAP-local tables only (ΔT mirrors, ΔV,
        # the mv table); steps that must scan the base tables — the join
        # state build, the liveness-counter seeding — stay on the SQL path
        # because the bases live behind the OLTP attachment.
        for step in compiled.native_steps:
            if step.requires_base_tables:
                continue
            step.initialize(self.olap)
            view.native_steps.append(step)
        for step in view.native_steps:
            # A kept step 1 must not feed deltas to a step that was
            # dropped (nothing would ever consume them): the exact
            # liveness counters and the MIN/MAX extrema state both ride
            # on step 1's source-level view of the batch.
            for attr in ("liveness_step", "extrema_step"):
                linked = getattr(step, attr, None)
                if linked is not None and linked not in view.native_steps:
                    setattr(step, attr, None)
        self._views[compiled.name.lower()] = view
        return compiled

    # -- refresh -----------------------------------------------------------------

    def refresh(self, name: str) -> int:
        """Propagate pending OLTP changes into the view; returns the number
        of delta rows transferred."""
        view = self._view(name)
        transferred = 0
        for base_table, delta_table in view.compiled.delta_tables.items():
            rows = self.oltp.drain_delta(base_table)
            transferred += len(rows)
            self.olap.table(delta_table).insert_batch(rows, coerce=False)
        run_pipeline(
            self.olap,
            view.propagation,
            view.native_steps,
            execute=self.olap.execute_statement,
        )
        return transferred

    def pending_changes(self, name: str) -> int:
        view = self._view(name)
        return sum(
            self.oltp.pending_delta_count(base)
            for base in view.compiled.delta_tables
        )

    # -- queries -------------------------------------------------------------------

    def query(self, sql: str, parameters: Sequence[Any] = (),
              refresh: bool = True) -> Result:
        """Run an analytical query on the OLAP side.

        With ``refresh=True`` (the demo's lazy behaviour), every registered
        view with pending OLTP changes is refreshed first.
        """
        if refresh:
            for name, view in self._views.items():
                if self.pending_changes(name):
                    self.refresh(name)
        return self.olap.execute(sql, parameters)

    def views(self) -> list[str]:
        return sorted(self._views)

    def compiled(self, name: str) -> CompiledView:
        return self._view(name).compiled

    # -- internals ---------------------------------------------------------------

    def _view(self, name: str) -> _PipelineView:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise IVMError(f"materialized view {name!r} does not exist") from None

    def _repoint_statement(self, statement: ast.Statement, compiled: CompiledView) -> None:
        """Re-point base-table scans inside a propagation statement."""
        if isinstance(statement, ast.Insert) and statement.query is not None:
            statement.query = self._repoint(statement.query, compiled)
        elif isinstance(statement, ast.CreateTable) and statement.as_query is not None:
            statement.as_query = self._repoint(statement.as_query, compiled)
        # DELETE statements touch only local tables; nothing to re-point.

    def _repoint(self, select: ast.Select, compiled: CompiledView) -> ast.Select:
        """Qualify references to OLTP base tables with the attach alias."""
        base_names = {name.lower() for name in compiled.delta_tables}
        select = copy.deepcopy(select)

        def visit_select(node: ast.Select) -> None:
            for cte in node.ctes:
                visit_select(cte.query)
            if node.from_clause is not None:
                node.from_clause = visit_ref(node.from_clause)
            for _, right in node.set_ops:
                visit_select(right)

        def visit_ref(ref: ast.TableRef) -> ast.TableRef:
            if isinstance(ref, ast.BaseTableRef):
                if ref.schema is None and ref.name.lower() in base_names:
                    return ast.BaseTableRef(
                        name=ref.name,
                        alias=ref.alias or ref.name,
                        schema=OLTP_ALIAS,
                    )
                return ref
            if isinstance(ref, ast.SubqueryRef):
                visit_select(ref.query)
                return ref
            if isinstance(ref, ast.JoinRef):
                ref.left = visit_ref(ref.left)
                ref.right = visit_ref(ref.right)
                return ref
            return ref

        visit_select(select)
        return select
