"""The OLTP side: a PostgreSQL stand-in with trigger-based delta capture.

The paper: "how to propagate changes from T to ΔT ... could be done in
many ways: through triggers, optimizer rules, or not at all ... for
PostgreSQL (or any alternative system), users are required to configure
these triggers independently."  :meth:`OLTPSystem.install_capture` is that
configuration step, generating the delta-table DDL in the PostgreSQL
dialect and registering AFTER triggers.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.datatypes.types import BOOLEAN
from repro.engine.connection import Connection
from repro.engine.triggers import delta_capture_rows
from repro.engine.result import Result
from repro.core.ddl import render_create_table


class OLTPSystem:
    """A transactional engine instance speaking the PostgreSQL dialect."""

    def __init__(self, delta_prefix: str = "delta_",
                 multiplicity_column: str = "_duckdb_ivm_multiplicity") -> None:
        self.connection = Connection(dialect="postgres")
        self.delta_prefix = delta_prefix
        self.multiplicity_column = multiplicity_column
        self._captured: set[str] = set()

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> Result:
        return self.connection.execute(sql, parameters)

    def delta_table(self, table: str) -> str:
        return f"{self.delta_prefix}{table}"

    def captured_tables(self) -> list[str]:
        return sorted(self._captured)

    def install_capture(self, table_name: str) -> str:
        """Create ΔT and the AFTER INSERT/DELETE/UPDATE triggers for it.

        Returns the delta-table DDL that was executed (for inspection),
        matching what a user would run on a real PostgreSQL.
        """
        con = self.connection
        table = con.table(table_name)
        delta_name = self.delta_table(table.schema.name)
        columns = [(c.name, c.type) for c in table.schema.columns]
        columns.append((self.multiplicity_column, BOOLEAN))
        ddl = render_create_table(delta_name, columns, con.dialect, if_not_exists=True)
        con.execute(ddl)
        if table_name.lower() in self._captured:
            return ddl
        delta = con.table(delta_name)

        def capture(connection: Connection, event: str, table_: str, rows) -> None:
            delta.insert_batch(delta_capture_rows(event, rows), coerce=False)

        trigger = f"__ivm_oltp_capture_{table_name.lower()}"
        for event in ("INSERT", "DELETE", "UPDATE"):
            con.triggers.register(trigger, table_name, event, capture)
        self._captured.add(table_name.lower())
        return ddl

    def capture_trigger_ddl(self, table_name: str) -> str:
        """The PostgreSQL DDL a user would run to configure delta capture.

        The paper: "for PostgreSQL (or any alternative system), users are
        required to configure these triggers independently."  Our engine's
        triggers are registered programmatically; this emits the equivalent
        real-PostgreSQL script for inspection/porting.
        """
        table = self.connection.table(table_name)
        delta = self.delta_table(table.schema.name)
        mult = self.multiplicity_column
        columns = ", ".join(c.name for c in table.schema.columns)
        new_cols = ", ".join(f"NEW.{c.name}" for c in table.schema.columns)
        old_cols = ", ".join(f"OLD.{c.name}" for c in table.schema.columns)
        fn = f"{delta}_capture_fn"
        return "\n".join(
            [
                f"CREATE OR REPLACE FUNCTION {fn}() RETURNS TRIGGER AS $$",
                "BEGIN",
                "  IF TG_OP = 'INSERT' THEN",
                f"    INSERT INTO {delta} ({columns}, {mult}) "
                f"VALUES ({new_cols}, TRUE);",
                "  ELSIF TG_OP = 'DELETE' THEN",
                f"    INSERT INTO {delta} ({columns}, {mult}) "
                f"VALUES ({old_cols}, FALSE);",
                "  ELSE",
                f"    INSERT INTO {delta} ({columns}, {mult}) "
                f"VALUES ({old_cols}, FALSE);",
                f"    INSERT INTO {delta} ({columns}, {mult}) "
                f"VALUES ({new_cols}, TRUE);",
                "  END IF;",
                "  RETURN NULL;",
                "END;",
                "$$ LANGUAGE plpgsql;",
                f"CREATE TRIGGER {delta}_capture",
                f"AFTER INSERT OR UPDATE OR DELETE ON {table.schema.name}",
                f"FOR EACH ROW EXECUTE FUNCTION {fn}();",
            ]
        )

    def drain_delta(self, table_name: str) -> list[tuple]:
        """Read-and-clear the delta rows for one base table."""
        delta_name = self.delta_table(table_name)
        delta = self.connection.table(delta_name)
        rows = list(delta.scan())
        delta.truncate()
        return rows

    def pending_delta_count(self, table_name: str) -> int:
        return len(self.connection.table(self.delta_table(table_name)))
