"""Logical SQL data types.

The engine models the small, portable type lattice that the OpenIVM paper's
emitted SQL needs: booleans, two integer widths, double-precision floats,
variable-length strings, and dates.  ``DECIMAL(p, s)`` is accepted in DDL
and mapped to :data:`DOUBLE`, matching how a quick prototype on top of an
analytical engine would treat it.

Types are immutable value objects; identity of the lattice members is by
:class:`TypeId`, so ``INTEGER == INTEGER`` regardless of how the instance
was produced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TypeError_


class TypeId(enum.Enum):
    """Discriminator for the supported logical types."""

    BOOLEAN = "BOOLEAN"
    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    DATE = "DATE"


@dataclass(frozen=True)
class DataType:
    """A logical SQL type.

    ``width`` is retained for display purposes (e.g. ``VARCHAR(20)``) but
    does not constrain stored values — the same permissive behaviour DuckDB
    exhibits for string widths.
    """

    id: TypeId
    width: int | None = None

    def __str__(self) -> str:
        if self.width is not None:
            return f"{self.id.value}({self.width})"
        return self.id.value

    @property
    def is_numeric(self) -> bool:
        return self.id in (TypeId.INTEGER, TypeId.BIGINT, TypeId.DOUBLE)

    @property
    def is_integral(self) -> bool:
        return self.id in (TypeId.INTEGER, TypeId.BIGINT)


BOOLEAN = DataType(TypeId.BOOLEAN)
INTEGER = DataType(TypeId.INTEGER)
BIGINT = DataType(TypeId.BIGINT)
DOUBLE = DataType(TypeId.DOUBLE)
VARCHAR = DataType(TypeId.VARCHAR)
DATE = DataType(TypeId.DATE)

_NAME_ALIASES = {
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "INT4": INTEGER,
    "SMALLINT": INTEGER,
    "TINYINT": INTEGER,
    "BIGINT": BIGINT,
    "INT8": BIGINT,
    "LONG": BIGINT,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "FLOAT8": DOUBLE,
    "REAL": DOUBLE,
    "DECIMAL": DOUBLE,
    "NUMERIC": DOUBLE,
    "VARCHAR": VARCHAR,
    "TEXT": VARCHAR,
    "STRING": VARCHAR,
    "CHAR": VARCHAR,
    "DATE": DATE,
}

# Numeric promotion order used by common_super_type.
_NUMERIC_ORDER = [TypeId.INTEGER, TypeId.BIGINT, TypeId.DOUBLE]


def type_from_name(name: str, width: int | None = None) -> DataType:
    """Resolve a type name as written in DDL to a :class:`DataType`.

    Raises :class:`~repro.errors.TypeError_` for unknown names.
    """
    base = _NAME_ALIASES.get(name.upper())
    if base is None:
        raise TypeError_(f"unknown type name: {name!r}")
    if width is not None and base.id is TypeId.VARCHAR:
        return DataType(base.id, width)
    return base


def common_super_type(left: DataType, right: DataType) -> DataType:
    """The smallest type both operands promote to, for mixed expressions.

    Follows the usual SQL lattice: INTEGER < BIGINT < DOUBLE; VARCHAR
    unifies only with VARCHAR; BOOLEAN only with BOOLEAN; DATE unifies with
    VARCHAR (dates are stored as ISO strings) and itself.
    """
    if left.id == right.id:
        return DataType(left.id)
    if left.is_numeric and right.is_numeric:
        order = max(_NUMERIC_ORDER.index(left.id), _NUMERIC_ORDER.index(right.id))
        return DataType(_NUMERIC_ORDER[order])
    date_varchar = {left.id, right.id} == {TypeId.DATE, TypeId.VARCHAR}
    if date_varchar:
        return VARCHAR
    raise TypeError_(f"no common type between {left} and {right}")
