"""Runtime value handling: casts, storage coercion, comparisons, literals.

SQL values are represented with plain Python objects: ``None`` for NULL,
``bool``, ``int``, ``float``, ``str``, and :class:`datetime.date`.  All
functions here implement three-valued SQL semantics where it matters:
comparing anything to NULL yields NULL (returned as ``None``).
"""

from __future__ import annotations

import datetime
import math
from typing import Any

from repro.datatypes.types import DataType, TypeId
from repro.errors import TypeError_

_DATE_FORMAT = "%Y-%m-%d"


def _parse_date(text: str) -> datetime.date:
    try:
        return datetime.datetime.strptime(text, _DATE_FORMAT).date()
    except ValueError as exc:
        raise TypeError_(f"cannot cast {text!r} to DATE") from exc


def cast_value(value: Any, target: DataType) -> Any:
    """Cast ``value`` to ``target``, following SQL CAST semantics.

    NULL casts to NULL for every target type.  Invalid casts raise
    :class:`~repro.errors.TypeError_` (matching strict engines rather than
    returning NULL, which makes compiler bugs visible in tests).
    """
    if value is None:
        return None
    tid = target.id
    if tid is TypeId.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1", "yes"):
                return True
            if lowered in ("false", "f", "0", "no"):
                return False
        raise TypeError_(f"cannot cast {value!r} to BOOLEAN")
    if tid in (TypeId.INTEGER, TypeId.BIGINT):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if math.isnan(value) or math.isinf(value):
                raise TypeError_(f"cannot cast {value!r} to {target}")
            return round(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError:
                try:
                    return round(float(value.strip()))
                except ValueError as exc:
                    raise TypeError_(f"cannot cast {value!r} to {target}") from exc
        raise TypeError_(f"cannot cast {value!r} to {target}")
    if tid is TypeId.DOUBLE:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise TypeError_(f"cannot cast {value!r} to DOUBLE") from exc
        raise TypeError_(f"cannot cast {value!r} to DOUBLE")
    if tid is TypeId.VARCHAR:
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, datetime.date):
            return value.strftime(_DATE_FORMAT)
        return str(value)
    if tid is TypeId.DATE:
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            return _parse_date(value)
        raise TypeError_(f"cannot cast {value!r} to DATE")
    raise TypeError_(f"unsupported cast target {target}")


def coerce_for_storage(value: Any, target: DataType) -> Any:
    """Coerce an inserted value to the declared column type.

    Unlike :func:`cast_value` this is what INSERT applies: it accepts values
    that already match and casts compatible ones, so `INSERT INTO t VALUES
    ('3')` works for an INTEGER column, mirroring common engine behaviour.
    """
    if value is None:
        return None
    return cast_value(value, target)


def sql_compare(left: Any, right: Any) -> int | None:
    """Three-valued comparison: -1, 0, 1, or ``None`` when either is NULL.

    Mixed int/float compares numerically; bools compare as bools only with
    bools (to avoid the Python ``True == 1`` trap crossing SQL types);
    dates compare with dates or ISO strings.
    """
    if left is None or right is None:
        return None
    left, right = _comparable_pair(left, right)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def _comparable_pair(left: Any, right: Any) -> tuple[Any, Any]:
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return left, right
        # bool vs number: promote through int, as SQL engines do for
        # boolean-to-integer casts.
        return (int(left) if isinstance(left, bool) else left,
                int(right) if isinstance(right, bool) else right)
    if isinstance(left, datetime.date) and isinstance(right, str):
        return left, _parse_date(right)
    if isinstance(left, str) and isinstance(right, datetime.date):
        return _parse_date(left), right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, str):
        raise TypeError_(f"cannot compare {left!r} with {right!r}")
    if isinstance(left, str) and isinstance(right, (int, float)):
        raise TypeError_(f"cannot compare {left!r} with {right!r}")
    raise TypeError_(f"cannot compare {left!r} with {right!r}")


def sql_format_literal(value: Any) -> str:
    """Render a Python value as a SQL literal (used by emitters and tools)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, datetime.date):
        return f"DATE '{value.strftime(_DATE_FORMAT)}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
