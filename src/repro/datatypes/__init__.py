"""SQL type system: logical types, NULL semantics, casts and comparisons."""

from repro.datatypes.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    VARCHAR,
    DataType,
    TypeId,
    common_super_type,
    type_from_name,
)
from repro.datatypes.values import (
    cast_value,
    coerce_for_storage,
    sql_compare,
    sql_format_literal,
)

__all__ = [
    "BIGINT",
    "BOOLEAN",
    "DATE",
    "DOUBLE",
    "INTEGER",
    "VARCHAR",
    "DataType",
    "TypeId",
    "cast_value",
    "coerce_for_storage",
    "common_super_type",
    "sql_compare",
    "sql_format_literal",
    "type_from_name",
]
