"""E6 — incremental joins: the three-join delta rule (paper's extension).

"the incremental form of a join consists of three relational join
operators" (§2); joins are the announced work-in-progress.  This bench
measures maintaining a two-table join-aggregation view incrementally
versus recomputing the join, across delta sizes — and, since the batching
milestone, the vectorized kernels with ART-indexed join state against the
row-at-a-time step-1 SQL (whose ``A ⋈ ΔB`` term rescans a base side on
every refresh).

Expected shape: for small deltas the three delta joins (each with one tiny
input) are far cheaper than the full join; the gap narrows as deltas grow
because the A⋈ΔB / ΔA⋈B terms scan a full base side.  The batched path
removes those rescans, so its refresh cost tracks |Δ| alone.

Since the full-pipeline milestone this module also emits the
``BENCH_pipeline.json`` trajectory artifact
(:func:`emit_pipeline_trajectory`, uploaded by CI): the same refresh
measured under the three propagation configurations — pure SQL, native
step 1 only (the first batching milestone), and the full native
``NativeStep`` pipeline — recording which steps ran natively and the
measured end-to-end speedups.
"""

import json
import pathlib

import pytest

from repro import (
    CompilerFlags,
    Connection,
    MaterializationStrategy,
    PropagationMode,
    load_ivm,
)
from repro.workloads import generate_sales_workload

ORDERS = 15_000

VIEW = (
    "CREATE MATERIALIZED VIEW rev AS "
    "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)
RECOMPUTE = (
    "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)

# The per-customer variant keeps |V| in the hundreds of groups, so the
# SQL steps 2–3 (view-sized CTE join + full-view DELETE scan) are a
# visible share of the refresh — the part the native pipeline removes.
VIEW_BY_CUSTOMER = (
    "CREATE MATERIALIZED VIEW rev_cust AS "
    "SELECT o.cust_id, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY o.cust_id"
)

# The MIN/MAX-heavy variant: per-customer extrema over the join, with a
# retraction-heavy delta schedule (each round deletes the previous
# round's top-amount orders).  With the rescan on SQL every refresh
# recomputes the touched groups from the 15k-row base join; the native
# rescan answers each retraction from the persistent extrema state.
VIEW_MINMAX = (
    "CREATE MATERIALIZED VIEW px AS "
    "SELECT o.cust_id, MIN(o.amount) AS lo, MAX(o.amount) AS hi, "
    "COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY o.cust_id"
)
MINMAX_RECOMPUTE = (
    "SELECT o.cust_id, MIN(o.amount) AS lo, MAX(o.amount) AS hi, "
    "COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY o.cust_id"
)

# name -> CompilerFlags overrides, in increasing nativeness.  The
# "adaptive" config in each ablation family runs the cost-based planner
# (core/adaptive.py) instead of a static plan; it gets 3x the rounds so
# the initial arm round-robin is amortized, and its entry additionally
# records the RefreshStats decision log.  The emitted artifact's
# top-level "adaptive" section summarizes it against the static configs.
PIPELINE_CONFIGS = [
    ("sql", dict(batch_kernels=False)),
    ("step1_native", dict(batch_kernels=True, native_steps=(1,))),
    ("full_native", dict(batch_kernels=True)),
    ("adaptive", dict(batch_kernels=True, adaptive=True)),
]

# Step-2b ablation: full native pipeline either way, with MIN/MAX
# retractions answered by the SQL base-table rescan or the extrema state.
MINMAX_CONFIGS = [
    ("sql_rescan", dict(native_minmax_rescan=False)),
    ("native_rescan", dict()),
    ("adaptive", dict(adaptive=True)),
]

# UNION-regroup step-2 ablation: the per-customer join view under the
# UNION_REGROUP strategy, with step 2 either rebuilding the whole table
# in SQL (the strategy's textual form, O(|V|) per refresh) or running
# the native signed union + regroup kernel (O(|ΔV|)).
VIEW_UNION = (
    "CREATE MATERIALIZED VIEW rev_union AS "
    "SELECT o.cust_id, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY o.cust_id"
)
UNION_RECOMPUTE = (
    "SELECT o.cust_id, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY o.cust_id"
)
UNION_CONFIGS = [
    ("sql_rebuild", dict(
        strategy=MaterializationStrategy.UNION_REGROUP,
        native_union_step2=False,
    )),
    ("native_regroup", dict(
        strategy=MaterializationStrategy.UNION_REGROUP,
    )),
    ("adaptive", dict(
        strategy=MaterializationStrategy.UNION_REGROUP, adaptive=True,
    )),
]

# Expression-keyed ablation: computed key + computed aggregate argument
# over the orders table, with step 1 either on SQL (native_expr_eval
# off: the pre-evaluator fallback, which also drags step 3 to SQL) or
# evaluated through the vectorized expression compiler.
VIEW_EXPR = (
    "CREATE MATERIALIZED VIEW ek AS "
    "SELECT UPPER(cust_id) AS ck, SUM(amount + 1) AS s, COUNT(*) AS n "
    "FROM orders GROUP BY UPPER(cust_id)"
)
EXPR_RECOMPUTE = (
    "SELECT UPPER(cust_id) AS ck, SUM(amount + 1) AS s, COUNT(*) AS n "
    "FROM orders GROUP BY UPPER(cust_id)"
)
EXPR_CONFIGS = [
    ("sql_step1", dict(native_expr_eval=False)),
    ("native_expr", dict()),
    ("adaptive", dict(adaptive=True)),
]

# Cascaded-view ablation: the same base delta refreshed to the leaf of
# a 1-, 2-, and 3-level view chain.  Depth 1 is the per-customer join
# view; depth 2 filters it; depth 3 aggregates the filter.  Each extra
# level is fed by the upstream's in-memory cascade feed (its stored-row
# delta), so the marginal cost per level is O(|ΔV|) of the level below —
# not a recompute, and not another pass over the 15k-row base.
# Entries: (name, CREATE statement, view read, recompute over upstream).
VIEW_DAG_LEVELS = [
    (
        "dag1",
        "CREATE MATERIALIZED VIEW dag1 AS "
        "SELECT o.cust_id, SUM(o.amount) AS revenue, COUNT(*) AS n "
        "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
        "GROUP BY o.cust_id",
        "SELECT cust_id, revenue, n FROM dag1",
        "SELECT o.cust_id, SUM(o.amount) AS revenue, COUNT(*) AS n "
        "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
        "GROUP BY o.cust_id",
    ),
    (
        "dag2",
        "CREATE MATERIALIZED VIEW dag2 AS "
        "SELECT cust_id, revenue FROM dag1 WHERE revenue > 0",
        "SELECT cust_id, revenue FROM dag2",
        "SELECT cust_id, revenue FROM dag1 WHERE revenue > 0",
    ),
    (
        "dag3",
        "CREATE MATERIALIZED VIEW dag3 AS "
        "SELECT SUM(revenue) AS grand, COUNT(*) AS nc FROM dag2",
        "SELECT grand, nc FROM dag3",
        "SELECT SUM(revenue), COUNT(*) FROM dag2",
    ),
]

# Sharding ablation: the per-customer join view refreshed through the
# per-step native pipeline (shards1 — the honest baseline) vs the
# sharded one-pass refresh at 2 and 4 shards.  On a GIL'd single-core
# runner the win is algorithmic, not parallel: one key encoding and one
# ART descent per *distinct* group key instead of per delta row, plus
# the ΔV staging-table round-trip skipped entirely — so a skewed delta
# (few hot customers) is exactly where the gap shows.
SHARDING_CONFIGS = [
    ("shards1", dict()),
    ("shards2", dict(shard_count=2, parallel_refresh=True)),
    ("shards4", dict(shard_count=4, parallel_refresh=True)),
    ("adaptive", dict(shard_count=4, parallel_refresh=True, adaptive=True)),
]

BENCH_PIPELINE_PATH = pathlib.Path(__file__).resolve().parents[1] / (
    "BENCH_pipeline.json"
)


def _config_rounds(overrides: dict, rounds: int) -> int:
    """Adaptive configs run 3x the rounds: the planner's initial
    round-robin visits every arm once before feedback converges, and
    best-of timing should reflect the converged regime."""
    return rounds * 3 if overrides.get("adaptive") else rounds


def _build(
    orders: int = ORDERS,
    batch_kernels: bool = True,
    view: str = VIEW,
    bulk_ingest: bool = False,
    **flag_overrides,
):
    workload = generate_sales_workload(num_orders=orders, seed=21)
    con = Connection()
    extension = load_ivm(
        con,
        CompilerFlags(
            mode=PropagationMode.LAZY,
            batch_kernels=batch_kernels,
            **flag_overrides,
        ),
    )
    con.execute(workload.SCHEMA)
    customers = con.table("customers")
    orders_table = con.table("orders")
    if bulk_ingest:
        # The 100k-row sharding config would take too long row-at-a-time.
        customers.insert_batch(workload.customers, coerce=False)
        orders_table.insert_batch(workload.orders, coerce=False)
    else:
        for row in workload.customers:
            customers.insert(row, coerce=False)
        for row in workload.orders:
            orders_table.insert(row, coerce=False)
    con.execute(view)
    return con, extension, workload


def _apply_delta(con, workload, start_oid, rows):
    base = con.table("orders")
    delta = con.table("delta_orders")
    for i in range(rows):
        cust = workload.customers[(start_oid + i) % len(workload.customers)][0]
        row = (start_oid + i, cust, "p", (start_oid + i) % 100)
        base.insert(row, coerce=False)
        delta.insert(row + (True,), coerce=False)


@pytest.mark.parametrize("delta_rows", [10, 200])
@pytest.mark.parametrize("kernels", ["row", "batched"])
def test_join_ivm_refresh(benchmark, delta_rows, kernels):
    con, ext, workload = _build(batch_kernels=(kernels == "batched"))
    state = {"oid": workload.next_order_id()}

    def setup():
        _apply_delta(con, workload, state["oid"], delta_rows)
        state["oid"] += delta_rows
        return (), {}

    benchmark.pedantic(lambda: ext.refresh("rev"), setup=setup, rounds=8, iterations=1)
    benchmark.extra_info["delta_rows"] = delta_rows
    benchmark.extra_info["kernels"] = kernels


def test_join_recompute(benchmark):
    con, ext, workload = _build()
    benchmark.pedantic(lambda: con.execute(RECOMPUTE), rounds=5, iterations=1)


def test_join_shape(report_lines):
    from repro.workloads import time_call

    con, ext, workload = _build()
    recompute_time, _ = time_call(lambda: con.execute(RECOMPUTE), repeat=2)
    oid = workload.next_order_id()
    _apply_delta(con, workload, oid, 10)
    refresh_time, _ = time_call(lambda: ext.refresh("rev"))
    report_lines.append(
        f"E6  join delta=10  refresh={refresh_time * 1e3:8.2f}ms  "
        f"recompute={recompute_time * 1e3:8.2f}ms  "
        f"speedup={recompute_time / refresh_time:6.1f}x"
    )
    got = con.execute("SELECT region, revenue, n FROM rev").sorted()
    want = con.execute(RECOMPUTE).sorted()
    assert got == want
    assert refresh_time < recompute_time


def test_join_batched_vs_row_shape(report_lines):
    """The batching milestone's claim: vectorized kernels + indexed join
    state beat the row-at-a-time step-1 SQL, and both stay correct."""
    from repro.workloads import time_call

    timings = {}
    for kernels in ("row", "batched"):
        con, ext, workload = _build(batch_kernels=(kernels == "batched"))
        oid = workload.next_order_id()
        best = None
        for _ in range(5):
            _apply_delta(con, workload, oid, 50)
            oid += 50
            elapsed, _ = time_call(lambda: ext.refresh("rev"))
            best = elapsed if best is None else min(best, elapsed)
        timings[kernels] = best
        got = con.execute("SELECT region, revenue, n FROM rev").sorted()
        want = con.execute(RECOMPUTE).sorted()
        assert got == want, f"{kernels} path diverged from recompute"
    ratio = timings["row"] / timings["batched"]
    report_lines.append(
        f"E6b join delta=50  row={timings['row'] * 1e3:8.2f}ms  "
        f"batched={timings['batched'] * 1e3:8.2f}ms  "
        f"batched-speedup={ratio:6.1f}x"
    )
    assert ratio > 1.0, (
        f"batched join refresh should beat row-at-a-time, got {ratio:.2f}x"
    )


# ---------------------------------------------------------------------------
# Full-pipeline trajectory: native vs SQL per step (BENCH_pipeline.json)
# ---------------------------------------------------------------------------


def collect_pipeline_trajectory(
    orders: int = ORDERS, delta_rows: int = 50, rounds: int = 8
) -> dict:
    """Measure the full refresh under each pipeline configuration.

    Uses the per-customer join view (hundreds of groups) so the steps the
    native pipeline replaces — the view-sized SQL upsert join and the
    full-view step-3 scan — actually show up in the measurement.  Records,
    per configuration, which steps ran natively vs on SQL and the per-round
    refresh times (the trajectory), plus the end-to-end speedups.
    """
    from repro.workloads import time_call

    result: dict = {
        "benchmark": "bench_join_ivm.pipeline_trajectory",
        "workload": {
            "orders": orders,
            "delta_rows": delta_rows,
            "rounds": rounds,
            "view": "rev_cust (join, GROUP BY cust_id)",
        },
        "configs": {},
    }
    for name, overrides in PIPELINE_CONFIGS:
        con, ext, workload = _build(
            orders=orders, view=VIEW_BY_CUSTOMER, **overrides
        )
        status = ext.status()[0]
        native = status["native_steps"]
        all_steps = ["step1", "step2", "step3", "step4"]
        oid = workload.next_order_id()
        timings = []
        for _ in range(_config_rounds(overrides, rounds)):
            _apply_delta(con, workload, oid, delta_rows)
            oid += delta_rows
            elapsed, _ = time_call(lambda: ext.refresh("rev_cust"))
            timings.append(elapsed)
        result["configs"][name] = {
            "native_steps": native,
            "sql_steps": [s for s in all_steps if s not in native],
            "refresh_seconds": timings,
            "best_seconds": min(timings),
        }
        if overrides.get("adaptive"):
            result["configs"][name]["refresh_stats"] = ext.refresh_stats(
                "rev_cust"
            )
    best = {name: cfg["best_seconds"] for name, cfg in result["configs"].items()}
    result["speedup_full_native_vs_sql"] = best["sql"] / best["full_native"]
    result["speedup_full_native_vs_step1_only"] = (
        best["step1_native"] / best["full_native"]
    )
    return result


def collect_minmax_trajectory(
    orders: int = ORDERS, delta_rows: int = 50, rounds: int = 6
) -> dict:
    """Measure MIN/MAX retraction-heavy refreshes: SQL vs native step 2b.

    Each round deletes the previous round's ``delta_rows`` top-amount
    orders (retracting their customers' stored maxima) and inserts a
    fresh batch of top-amount orders, then times the refresh.  Both
    configurations run the full native pipeline; only the step-2b answer
    differs — base-table rescan (SQL) vs extrema-state lookup (native).
    """
    from repro.workloads import time_call

    result: dict = {
        "benchmark": "bench_join_ivm.minmax_trajectory",
        "workload": {
            "orders": orders,
            "delta_rows": delta_rows,
            "rounds": rounds,
            "view": "px (join, MIN/MAX/COUNT GROUP BY cust_id)",
        },
        "configs": {},
    }
    for name, overrides in MINMAX_CONFIGS:
        con, ext, workload = _build(orders=orders, view=VIEW_MINMAX, **overrides)
        status = ext.status()[0]
        base = con.table("orders")
        delta = con.table("delta_orders")
        oid = workload.next_order_id()
        hot: list[tuple] = []

        def push_round(round_index: int) -> None:
            nonlocal oid, hot
            # Retract last round's maxima...
            for row in hot:
                base.delete_by_key([row[0]])
                delta.insert(row + (False,), coerce=False)
            hot = []
            # ...and create this round's (top amounts, so the next round's
            # deletes are extremum retractions again).
            for i in range(delta_rows):
                cust = workload.customers[
                    (oid + i) % len(workload.customers)
                ][0]
                row = (oid + i, cust, "p", 1_000 + round_index)
                base.insert(row, coerce=False)
                delta.insert(row + (True,), coerce=False)
                hot.append(row)
            oid += delta_rows

        push_round(0)
        ext.refresh("px")  # absorb the seed round outside the timing
        timings = []
        for round_index in range(1, _config_rounds(overrides, rounds) + 1):
            push_round(round_index)
            elapsed, _ = time_call(lambda: ext.refresh("px"))
            timings.append(elapsed)
        got = con.execute("SELECT cust_id, lo, hi, n FROM px").sorted()
        want = con.execute(MINMAX_RECOMPUTE).sorted()
        assert got == want, f"{name} diverged from recompute"
        result["configs"][name] = {
            "native_steps": status["native_steps"],
            "refresh_seconds": timings,
            "best_seconds": min(timings),
        }
        if overrides.get("adaptive"):
            result["configs"][name]["refresh_stats"] = ext.refresh_stats("px")
    best = {name: cfg["best_seconds"] for name, cfg in result["configs"].items()}
    result["speedup_native_rescan_vs_sql_rescan"] = (
        best["sql_rescan"] / best["native_rescan"]
    )
    return result


def _collect_refresh_ablation(
    benchmark_name: str,
    view_sql: str,
    view_name: str,
    recompute_sql: str,
    configs,
    orders: int,
    delta_rows: int,
    rounds: int,
    view_desc: str,
) -> dict:
    """Shared harness for two-config refresh ablations: same workload and
    delta schedule per config, per-round timings, correctness asserted
    against the recompute at the end."""
    from repro.workloads import time_call

    result: dict = {
        "benchmark": benchmark_name,
        "workload": {
            "orders": orders,
            "delta_rows": delta_rows,
            "rounds": rounds,
            "view": view_desc,
        },
        "configs": {},
    }
    for name, overrides in configs:
        con, ext, workload = _build(orders=orders, view=view_sql, **overrides)
        status = ext.status()[0]
        oid = workload.next_order_id()
        timings = []
        for _ in range(_config_rounds(overrides, rounds)):
            _apply_delta(con, workload, oid, delta_rows)
            oid += delta_rows
            elapsed, _ = time_call(lambda: ext.refresh(view_name))
            timings.append(elapsed)
        got = con.execute(f"SELECT * FROM {view_name}").sorted()
        want = con.execute(recompute_sql).sorted()
        assert got == want, f"{name} diverged from recompute"
        result["configs"][name] = {
            "native_steps": status["native_steps"],
            "refresh_seconds": timings,
            "best_seconds": min(timings),
        }
        if overrides.get("adaptive"):
            result["configs"][name]["refresh_stats"] = ext.refresh_stats(
                view_name
            )
    return result


def collect_union_trajectory(
    orders: int = ORDERS, delta_rows: int = 50, rounds: int = 6
) -> dict:
    """UNION-regroup step-2 ablation: SQL table rebuild vs the native
    signed union + regroup kernel, on the per-customer join view."""
    result = _collect_refresh_ablation(
        "bench_join_ivm.union_regroup_trajectory",
        VIEW_UNION, "rev_union", UNION_RECOMPUTE, UNION_CONFIGS,
        orders, delta_rows, rounds,
        "rev_union (join, UNION_REGROUP strategy, GROUP BY cust_id)",
    )
    best = {name: cfg["best_seconds"] for name, cfg in result["configs"].items()}
    result["speedup_native_regroup_vs_sql_rebuild"] = (
        best["sql_rebuild"] / best["native_regroup"]
    )
    return result


def collect_expr_trajectory(
    orders: int = ORDERS, delta_rows: int = 50, rounds: int = 6
) -> dict:
    """Expression-keyed ablation: SQL step 1 (native_expr_eval off) vs
    the vectorized expression evaluator, on a computed-key view."""
    result = _collect_refresh_ablation(
        "bench_join_ivm.expr_keyed_trajectory",
        VIEW_EXPR, "ek", EXPR_RECOMPUTE, EXPR_CONFIGS,
        orders, delta_rows, rounds,
        "ek (UPPER(cust_id) key, SUM(amount + 1), COUNT(*))",
    )
    best = {name: cfg["best_seconds"] for name, cfg in result["configs"].items()}
    result["speedup_native_expr_vs_sql_step1"] = (
        best["sql_step1"] / best["native_expr"]
    )
    return result


def collect_view_dag_trajectory(
    orders: int = ORDERS, delta_rows: int = 50, rounds: int = 6
) -> dict:
    """Cascade ablation: refresh-to-leaf cost at chain depth 1, 2, 3.

    Each depth builds a fresh engine over the same seeded workload, adds
    the chain up to that depth, then replays the same insert schedule
    through the trigger bridge (so base capture and the cascade feeds
    fire exactly as in production) and times ``refresh(leaf)`` — which
    pulls the whole upstream closure in topological order.  Every level
    is asserted against the recompute of its own defining query before
    the timings are recorded.
    """
    from repro.workloads import time_call

    result: dict = {
        "benchmark": "bench_join_ivm.view_dag_trajectory",
        "workload": {
            "orders": orders,
            "delta_rows": delta_rows,
            "rounds": rounds,
            "view": "dag1 (join, GROUP BY cust_id) -> dag2 (filter) "
                    "-> dag3 (scalar aggregate)",
        },
        "depths": {},
    }
    for depth in (1, 2, 3):
        con, ext, workload = _build(orders=orders, view=VIEW_DAG_LEVELS[0][1])
        for _, create_sql, _, _ in VIEW_DAG_LEVELS[1:depth]:
            con.execute(create_sql)
        leaf = VIEW_DAG_LEVELS[depth - 1][0]
        oid = workload.next_order_id()
        timings = []
        for _ in range(rounds):
            # Through the SQL front door, so capture AND the staleness
            # accounting fire exactly as for production writes — the
            # leaf refresh then pulls the stale upstreams itself.
            values = ", ".join(
                "({oid}, '{cust}', 'p', {amount})".format(
                    oid=oid + i,
                    cust=workload.customers[
                        (oid + i) % len(workload.customers)
                    ][0],
                    amount=(oid + i) % 100,
                )
                for i in range(delta_rows)
            )
            con.execute(f"INSERT INTO orders VALUES {values}")
            oid += delta_rows
            elapsed, _ = time_call(lambda: ext.refresh(leaf))
            timings.append(elapsed)
        for name, _, view_select, recompute_sql in VIEW_DAG_LEVELS[:depth]:
            got = con.execute(view_select).sorted()
            want = con.execute(recompute_sql).sorted()
            assert got == want, f"depth{depth}: {name} diverged"
        result["depths"][f"depth{depth}"] = {
            "leaf": leaf,
            "dag_depth": ext.refresh_stats(leaf)["dag_depth"],
            "refresh_seconds": timings,
            "best_seconds": min(timings),
        }
    best = {d: cfg["best_seconds"] for d, cfg in result["depths"].items()}
    result["overhead_depth3_vs_depth1"] = best["depth3"] / best["depth1"]
    return result


def collect_sharding_trajectory(
    orders: int = 100_000,
    delta_rows: int = 2_000,
    rounds: int = 5,
    warmup_rounds: int = 2,
    skew: float = 2.0,
) -> dict:
    """Sharded one-pass refresh vs the per-step pipeline, on skewed deltas.

    The per-customer join view over ``orders`` base rows, refreshed after
    Zipf-skewed insert batches (``skew`` over the 200 customers, so a
    handful of hot customers absorb most of each delta).  ``shards1`` runs
    the legacy per-step native pipeline; the sharded configs route each
    delta once, probe the join state once per distinct key, and fold
    aggregate, liveness, and extrema updates per shard without staging ΔV.

    Per config the artifact records the per-round timings plus the
    ``RefreshStats`` snapshot (wall clock, per-stage seconds, rows in,
    shard skew) from the extension's counter object.
    """
    from repro.workloads import time_call, zipf_group_keys

    result: dict = {
        "benchmark": "bench_join_ivm.sharding_trajectory",
        "workload": {
            "orders": orders,
            "delta_rows": delta_rows,
            "rounds": rounds,
            "zipf_skew": skew,
            "view": "rev_cust (join, GROUP BY cust_id)",
        },
        "configs": {},
    }
    recompute_sql = (
        "SELECT o.cust_id, SUM(o.amount) AS revenue, COUNT(*) AS n "
        "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
        "GROUP BY o.cust_id"
    )
    # Key schedule sized for the longest config (adaptive runs 3x the
    # rounds); every config replays the same prefix of it.
    max_rounds = max(
        _config_rounds(overrides, rounds) for _, overrides in SHARDING_CONFIGS
    )
    keys = zipf_group_keys(
        delta_rows * (max_rounds + warmup_rounds), 200, skew, 77
    )
    for name, overrides in SHARDING_CONFIGS:
        con, ext, workload = _build(
            orders=orders, view=VIEW_BY_CUSTOMER, bulk_ingest=True,
            **overrides,
        )
        status = ext.status()[0]
        base = con.table("orders")
        delta = con.table("delta_orders")
        oid = workload.next_order_id()
        key_index = 0
        timings = []
        total_rounds = _config_rounds(overrides, rounds) + warmup_rounds
        for round_index in range(total_rounds):
            rows = []
            for _ in range(delta_rows):
                cust = "cust_%05d" % int(keys[key_index][1:])
                rows.append((oid, cust, "p", oid % 100))
                oid += 1
                key_index += 1
            base.insert_batch(rows, coerce=False)
            delta.insert_batch([row + (True,) for row in rows], coerce=False)
            elapsed, _ = time_call(lambda: ext.refresh("rev_cust"))
            if round_index >= warmup_rounds:
                timings.append(elapsed)
        got = con.execute("SELECT * FROM rev_cust").sorted()
        want = con.execute(recompute_sql).sorted()
        assert got == want, f"{name} diverged from recompute"
        result["configs"][name] = {
            "native_steps": status["native_steps"],
            "refresh_seconds": timings,
            "best_seconds": min(timings),
            "refresh_stats": ext.refresh_stats("rev_cust"),
        }
    best = {name: cfg["best_seconds"] for name, cfg in result["configs"].items()}
    result["speedup_2_shards_vs_1"] = best["shards1"] / best["shards2"]
    result["speedup_4_shards_vs_1"] = best["shards1"] / best["shards4"]
    return result


def collect_ingestion_benchmark(
    row_counts=(500, 2000), repeats: int = 5
) -> dict:
    """Row-at-a-time vs batch ingestion of a delta-sized block.

    Two table shapes: the delta-table shape (no indexes — a straight
    columnar append on the batch path) and the PK'd base-table shape
    (the batch path maintains the ART with one sorted pass).
    """
    import time

    from repro import Connection

    shapes = {
        "delta_table": (
            "CREATE TABLE ing (oid INTEGER, cust_id VARCHAR, "
            "product VARCHAR, amount INTEGER, m BOOLEAN)"
        ),
        "pk_table": (
            "CREATE TABLE ing (oid INTEGER PRIMARY KEY, cust_id VARCHAR, "
            "product VARCHAR, amount INTEGER, m BOOLEAN)"
        ),
    }

    def best_of(ddl: str, run) -> float:
        # Fresh table per repetition; only the ingestion itself is timed.
        best = float("inf")
        for _ in range(repeats):
            con = Connection()
            con.execute(ddl)
            table = con.table("ing")
            start = time.perf_counter()
            run(table)
            best = min(best, time.perf_counter() - start)
        return best

    result: dict = {"benchmark": "bench_join_ivm.ingestion", "shapes": {}}
    for shape, ddl in shapes.items():
        result["shapes"][shape] = {}
        for count in row_counts:
            rows = [
                (i, f"cust_{i % 97:05d}", "p", i % 100, True)
                for i in range(count)
            ]

            def row_path(table):
                for row in rows:
                    table.insert(row, coerce=False)

            def batch_path(table):
                table.insert_batch(rows, coerce=False)

            row_best = best_of(ddl, row_path)
            batch_best = best_of(ddl, batch_path)
            result["shapes"][shape][str(count)] = {
                "row_seconds": row_best,
                "batch_seconds": batch_best,
                "batch_speedup": row_best / batch_best,
            }
    return result


def collect_durability_benchmark(
    rows_per_batch: int = 500, batches: int = 10, repeats: int = 3
) -> dict:
    """WAL append and recovery-replay throughput (``wal_sync`` off).

    Two measurements: raw :class:`~repro.storage.wal.WriteAheadLog`
    appends of delta-shaped batches (the overhead the capture path pays
    per DML when durability is on), and a full
    :meth:`~repro.engine.Connection.recover` of a durability directory
    whose WAL holds every batch past the checkpoint — checkpoint load,
    replay, and the catch-up refresh together, reported as replayed rows
    per second.
    """
    import shutil
    import tempfile
    import time

    from repro.storage.wal import WriteAheadLog

    total = rows_per_batch * batches
    delta_rows = [
        (i, "cust_%05d" % (i % 97), "p", i % 100, True)
        for i in range(rows_per_batch)
    ]
    append_best = float("inf")
    for _ in range(repeats):
        tmp = tempfile.mkdtemp(prefix="ivm-wal-bench-")
        try:
            wal = WriteAheadLog.open(pathlib.Path(tmp) / "wal.log")
            start = time.perf_counter()
            for _ in range(batches):
                wal.append("orders", delta_rows)
            append_best = min(append_best, time.perf_counter() - start)
            wal.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    replay_best = float("inf")
    tmp = tempfile.mkdtemp(prefix="ivm-recover-bench-")
    try:
        directory = pathlib.Path(tmp)
        con = Connection()
        load_ivm(
            con,
            flags=CompilerFlags(durability=True),
            durability_dir=directory,
        )
        con.execute(
            "CREATE TABLE t (oid INTEGER PRIMARY KEY, cust VARCHAR, "
            "amount INTEGER)"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW rev AS SELECT cust, SUM(amount) AS s, "
            "COUNT(*) AS n FROM t GROUP BY cust"
        )
        oid = 0
        for _ in range(batches):
            values = ", ".join(
                f"({oid + i}, 'cust_{(oid + i) % 97:05d}', {(oid + i) % 100})"
                for i in range(rows_per_batch)
            )
            con.execute(f"INSERT INTO t VALUES {values}")
            oid += rows_per_batch
        # Every batch sits in the WAL past the view-creation checkpoint
        # (no refresh ran), so recovery replays all of them.
        recovered = None
        for _ in range(repeats):
            start = time.perf_counter()
            recovered = Connection.recover(directory)
            replay_best = min(replay_best, time.perf_counter() - start)
        got = recovered.execute("SELECT cust, s, n FROM rev").sorted()
        want = recovered.execute(
            "SELECT cust, SUM(amount) AS s, COUNT(*) AS n FROM t GROUP BY cust"
        ).sorted()
        assert got == want, "recovered view diverged from recompute"
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    return {
        "benchmark": "bench_join_ivm.durability",
        "workload": {
            "rows_per_batch": rows_per_batch,
            "batches": batches,
            "wal_sync": False,
        },
        "wal_append": {
            "rows": total,
            "best_seconds": append_best,
            "rows_per_second": total / append_best,
        },
        "recovery_replay": {
            "rows": total,
            "best_seconds": replay_best,
            "rows_per_second": total / replay_best,
        },
    }


# Ingest-queue configs: the synchronous capture path vs the bounded
# queue under the block and coalesce backpressure policies.  Capacity
# (96 rows against ~120-row bursts) is sized so bursts overflow it —
# backpressure actually engages — and the
# watermark pump is disabled (high=1.0) so drains happen at refresh
# time — the queue's amortization, not the pump cadence, is measured.
INGEST_QUEUE_CONFIGS = [
    ("sync", dict()),
    (
        "queue_block",
        dict(
            ingest_queue=True, queue_policy="block", queue_capacity=96,
            queue_high_watermark=1.0, queue_low_watermark=0.5,
        ),
    ),
    (
        "queue_coalesce",
        dict(
            ingest_queue=True, queue_policy="coalesce", queue_capacity=96,
            queue_high_watermark=1.0, queue_low_watermark=0.5,
        ),
    ),
]


def _quantile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def collect_ingestion_queue_benchmark(
    bursts: int = 8, statements_per_burst: int = 60,
    rows_per_statement: int = 3, churn: float = 0.35,
) -> dict:
    """Sustained write throughput and refresh latency under burst, with
    and without the bounded ingest queue (``CompilerFlags.ingest_queue``).

    Each burst fires ``statements_per_burst`` DML statements (a ``churn``
    fraction are deletes of previously inserted rows — the coalesce
    policy's food) and then refreshes the view once.  Per config the
    artifact records the ingest throughput (rows/second over the DML
    wall time), the refresh-latency distribution (p50/p99/max over the
    per-burst refreshes), and the queue's admission counters — shed and
    coalesced rows quantify what backpressure absorbed.  Correctness is
    asserted against the recompute at the end of every config.
    """
    import random
    import time

    result: dict = {
        "benchmark": "bench_join_ivm.ingestion_queue",
        "workload": {
            "bursts": bursts,
            "statements_per_burst": statements_per_burst,
            "rows_per_statement": rows_per_statement,
            "churn": churn,
        },
        "configs": {},
    }
    for name, overrides in INGEST_QUEUE_CONFIGS:
        con = Connection()
        ext = load_ivm(
            con,
            CompilerFlags(mode=PropagationMode.LAZY, **overrides),
        )
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
        )
        rng = random.Random(5005)
        live: list = []
        ingest_seconds: list = []
        refresh_seconds: list = []
        rows_written = 0
        for _ in range(bursts):
            start = time.perf_counter()
            for _ in range(statements_per_burst):
                if live and rng.random() < churn:
                    g, v = live.pop(rng.randrange(len(live)))
                    con.execute(
                        "DELETE FROM t WHERE g = ? AND v = ?", [g, v]
                    )
                    rows_written += 1
                else:
                    values = []
                    for _ in range(rows_per_statement):
                        g, v = f"g{rng.randrange(32)}", rng.randint(-50, 50)
                        live.append((g, v))
                        values.append(f"('{g}', {v})")
                    con.execute(f"INSERT INTO t VALUES {', '.join(values)}")
                    rows_written += rows_per_statement
            ingest_seconds.append(time.perf_counter() - start)
            start = time.perf_counter()
            ext.refresh("q")
            refresh_seconds.append(time.perf_counter() - start)
        got = con.execute("SELECT g, s, n FROM q").sorted()
        want = con.execute(
            "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g"
        ).sorted()
        assert got == want, f"{name} diverged from recompute"
        ingest_total = sum(ingest_seconds)
        result["configs"][name] = {
            "rows_written": rows_written,
            "ingest_seconds": ingest_total,
            "rows_per_second": rows_written / ingest_total,
            "refresh_seconds": refresh_seconds,
            "refresh_p50_seconds": _quantile(refresh_seconds, 0.50),
            "refresh_p99_seconds": _quantile(refresh_seconds, 0.99),
            "refresh_max_seconds": max(refresh_seconds),
            "queue": None if ext.queue is None else ext.queue.snapshot(),
        }
    sync = result["configs"]["sync"]
    block = result["configs"]["queue_block"]
    result["queue_vs_sync_ingest_ratio"] = (
        block["rows_per_second"] / sync["rows_per_second"]
    )
    result["queue_vs_sync_p99_ratio"] = (
        block["refresh_p99_seconds"] / sync["refresh_p99_seconds"]
    )
    return result


def summarize_adaptive(data: dict) -> dict:
    """Derive the artifact's top-level ``adaptive`` section.

    Per ablation family: the best and worst *static* config, the
    adaptive config's converged best, the normalized ``vs_best_ratio``
    (adaptive / static best — the planner's goal is ~1.0), whether it
    beat the worst static plan (the floor a wrong static flag choice
    pays), and the planner's decision log summary.
    """
    families = {
        "pipeline": data["configs"],
        "minmax": data["minmax"]["configs"],
        "union_regroup": data["union_regroup"]["configs"],
        "expr_keyed": data["expr_keyed"]["configs"],
        "sharding": data["sharding"]["configs"],
    }
    summary: dict = {}
    for family, configs in families.items():
        adaptive = configs.get("adaptive")
        if adaptive is None:
            continue
        static = {
            name: cfg["best_seconds"]
            for name, cfg in configs.items()
            if name != "adaptive"
        }
        best_name = min(static, key=static.get)
        worst_name = max(static, key=static.get)
        stats = adaptive.get("refresh_stats") or {}
        decisions = stats.get("decisions") or []
        summary[family] = {
            "static_best": best_name,
            "static_best_seconds": static[best_name],
            "static_worst": worst_name,
            "static_worst_seconds": static[worst_name],
            "adaptive_best_seconds": adaptive["best_seconds"],
            "vs_best_ratio": adaptive["best_seconds"] / static[best_name],
            "beats_worst": adaptive["best_seconds"] < static[worst_name],
            "decisions": len(decisions),
            "plan_switches": stats.get("plan_switches", 0),
            "arms_seen": sorted({d["plan"]["arm"] for d in decisions}),
        }
    return summary


def emit_pipeline_trajectory(
    path: "pathlib.Path | str | None" = None,
    orders: int = ORDERS,
    delta_rows: int = 50,
    rounds: int = 8,
    minmax_rounds: int = 6,
    ingestion_rows=(500, 2000),
    ablation_rounds: int = 6,
    sharding_orders: int = 100_000,
    sharding_delta_rows: int = 2_000,
    sharding_rounds: int = 5,
    durability_rows: int = 500,
    durability_batches: int = 10,
    queue_bursts: int = 8,
    queue_statements: int = 60,
) -> dict:
    """Collect the trajectories and write ``BENCH_pipeline.json``.

    The artifact carries eight sections: the per-step pipeline
    trajectory, the MIN/MAX step-2b ablation, the row-vs-batch ingestion
    comparison, the UNION-regroup step-2 ablation, the expression-keyed
    step-1 ablation, the sharding ablation at 1/2/4 shards on the skewed
    100k-row config, WAL append and recovery-replay throughput, the
    ``ingestion_queue`` burst comparison (sync capture vs the bounded
    queue under block/coalesce backpressure), and —
    since the adaptive-planner milestone — the ``adaptive`` summary
    comparing the planner's converged refresh against the best and worst
    static config of every family (each family also carries its own
    ``adaptive`` config with the full decision log).
    """
    data = collect_pipeline_trajectory(
        orders=orders, delta_rows=delta_rows, rounds=rounds
    )
    data["minmax"] = collect_minmax_trajectory(
        orders=orders, delta_rows=delta_rows, rounds=minmax_rounds
    )
    data["ingestion"] = collect_ingestion_benchmark(row_counts=ingestion_rows)
    data["union_regroup"] = collect_union_trajectory(
        orders=orders, delta_rows=delta_rows, rounds=ablation_rounds
    )
    data["expr_keyed"] = collect_expr_trajectory(
        orders=orders, delta_rows=delta_rows, rounds=ablation_rounds
    )
    data["view_dag"] = collect_view_dag_trajectory(
        orders=orders, delta_rows=delta_rows, rounds=ablation_rounds
    )
    data["sharding"] = collect_sharding_trajectory(
        orders=sharding_orders, delta_rows=sharding_delta_rows,
        rounds=sharding_rounds,
    )
    data["durability"] = collect_durability_benchmark(
        rows_per_batch=durability_rows, batches=durability_batches,
    )
    data["ingestion_queue"] = collect_ingestion_queue_benchmark(
        bursts=queue_bursts, statements_per_burst=queue_statements,
    )
    data["adaptive"] = summarize_adaptive(data)
    target = pathlib.Path(path) if path is not None else BENCH_PIPELINE_PATH
    target.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return data


def test_pipeline_trajectory_shape(report_lines):
    """The full-pipeline milestone's claim: running steps 2–4 natively
    beats the step-1-only baseline end to end, and the trajectory artifact
    records the measurement (CI uploads BENCH_pipeline.json).  Since the
    columnar-ingestion milestone the artifact also carries the MIN/MAX
    step-2b ablation (native rescan must be ≥ 2x the SQL rescan on the
    retraction-heavy config) and the row-vs-batch ingestion comparison."""
    data = emit_pipeline_trajectory()
    best = {
        name: cfg["best_seconds"] * 1e3
        for name, cfg in data["configs"].items()
    }
    report_lines.append(
        f"E6c pipeline delta=50  sql={best['sql']:8.2f}ms  "
        f"step1-only={best['step1_native']:8.2f}ms  "
        f"full-native={best['full_native']:8.2f}ms  "
        f"full-vs-step1={data['speedup_full_native_vs_step1_only']:5.2f}x  "
        f"full-vs-sql={data['speedup_full_native_vs_sql']:5.2f}x"
    )
    minmax = data["minmax"]
    minmax_best = {
        name: cfg["best_seconds"] * 1e3
        for name, cfg in minmax["configs"].items()
    }
    report_lines.append(
        f"E6d minmax delta=50  sql-rescan={minmax_best['sql_rescan']:8.2f}ms  "
        f"native-rescan={minmax_best['native_rescan']:8.2f}ms  "
        f"speedup={minmax['speedup_native_rescan_vs_sql_rescan']:5.2f}x"
    )
    ingest = data["ingestion"]["shapes"]["delta_table"]["500"]
    report_lines.append(
        f"E6e ingest rows=500  row={ingest['row_seconds'] * 1e3:8.2f}ms  "
        f"batch={ingest['batch_seconds'] * 1e3:8.2f}ms  "
        f"speedup={ingest['batch_speedup']:5.2f}x"
    )
    union = data["union_regroup"]
    union_best = {
        name: cfg["best_seconds"] * 1e3
        for name, cfg in union["configs"].items()
    }
    report_lines.append(
        f"E6g union delta=50  "
        f"sql-rebuild={union_best['sql_rebuild']:8.2f}ms  "
        f"native-regroup={union_best['native_regroup']:8.2f}ms  "
        f"speedup={union['speedup_native_regroup_vs_sql_rebuild']:5.2f}x"
    )
    expr = data["expr_keyed"]
    expr_best = {
        name: cfg["best_seconds"] * 1e3
        for name, cfg in expr["configs"].items()
    }
    report_lines.append(
        f"E6h expr delta=50  sql-step1={expr_best['sql_step1']:8.2f}ms  "
        f"native-expr={expr_best['native_expr']:8.2f}ms  "
        f"speedup={expr['speedup_native_expr_vs_sql_step1']:5.2f}x"
    )
    shard = data["sharding"]
    shard_best = {
        name: cfg["best_seconds"] * 1e3
        for name, cfg in shard["configs"].items()
    }
    report_lines.append(
        f"E6i shard delta=2000  shards1={shard_best['shards1']:8.2f}ms  "
        f"shards2={shard_best['shards2']:8.2f}ms  "
        f"shards4={shard_best['shards4']:8.2f}ms  "
        f"4-vs-1={shard['speedup_4_shards_vs_1']:5.2f}x"
    )
    dag = data["view_dag"]
    dag_best = {
        name: cfg["best_seconds"] * 1e3
        for name, cfg in dag["depths"].items()
    }
    report_lines.append(
        f"E6l viewdag delta=50  depth1={dag_best['depth1']:8.2f}ms  "
        f"depth2={dag_best['depth2']:8.2f}ms  "
        f"depth3={dag_best['depth3']:8.2f}ms  "
        f"3-vs-1={dag['overhead_depth3_vs_depth1']:5.2f}x"
    )
    assert [
        dag["depths"][f"depth{d}"]["dag_depth"] for d in (1, 2, 3)
    ] == [0, 1, 2]
    # Cascading is incremental in the upstream's ΔV, not the base: two
    # extra levels must stay within a small multiple of the depth-1
    # refresh (sanity bound, generous for shared-runner noise).
    assert dag["overhead_depth3_vs_depth1"] < 10.0, (
        "cascaded refresh overhead grew past the per-level O(|dV|) bound"
    )
    assert data["configs"]["full_native"]["sql_steps"] == []
    assert data["speedup_full_native_vs_sql"] > 1.0, (
        "full native pipeline should beat the pure-SQL script"
    )
    # The step1-only margin (~1.3x) is real but too narrow to hard-gate on
    # a noisy shared CI runner; it is recorded in BENCH_pipeline.json and
    # the report line above, and only sanity-bounded here (native steps
    # 2-4 must at least not be materially slower than their SQL forms).
    assert data["speedup_full_native_vs_step1_only"] > 0.8, (
        "native steps 2-4 regressed against running them as SQL"
    )
    assert "step2b" in minmax["configs"]["native_rescan"]["native_steps"]
    assert "step2b" not in minmax["configs"]["sql_rescan"]["native_steps"]
    assert minmax["speedup_native_rescan_vs_sql_rescan"] >= 2.0, (
        "native MIN/MAX rescan should be >= 2x the SQL base-table rescan"
    )
    assert ingest["batch_speedup"] > 1.0, (
        "batch ingestion should beat row-at-a-time at delta >= 500"
    )
    assert "step2" in union["configs"]["native_regroup"]["native_steps"]
    assert "step2" not in union["configs"]["sql_rebuild"]["native_steps"]
    assert union["speedup_native_regroup_vs_sql_rebuild"] > 1.0, (
        "native regroup kernel should beat the SQL table rebuild"
    )
    assert "step1" in expr["configs"]["native_expr"]["native_steps"]
    assert "step1" not in expr["configs"]["sql_step1"]["native_steps"]
    # Like the step1-only margin above, the expression-evaluator margin
    # is recorded rather than hard-gated (the SQL step 1 also scans only
    # the delta); the sanity bound catches genuine regressions.
    assert expr["speedup_native_expr_vs_sql_step1"] > 0.8, (
        "vectorized expression evaluation regressed against the SQL step 1"
    )
    assert shard["configs"]["shards1"]["native_steps"] != ["sharded"], (
        "shards1 must run the per-step pipeline (the honest baseline)"
    )
    for name in ("shards2", "shards4"):
        assert shard["configs"][name]["native_steps"] == ["sharded"]
        stats = shard["configs"][name]["refresh_stats"]
        assert stats["refreshes"] > 0 and stats["last_rows_in"] > 0
    assert shard["speedup_4_shards_vs_1"] >= 2.0, (
        "sharded refresh at 4 shards should be >= 2x the per-step pipeline "
        "on the skewed 100k-row config"
    )
    queue = data["ingestion_queue"]["configs"]
    report_lines.append(
        f"E6k queue burst  "
        f"sync={queue['sync']['rows_per_second']:9.0f}rows/s "
        f"p99={queue['sync']['refresh_p99_seconds'] * 1e3:7.2f}ms  "
        f"block={queue['queue_block']['rows_per_second']:9.0f}rows/s "
        f"p99={queue['queue_block']['refresh_p99_seconds'] * 1e3:7.2f}ms  "
        f"coalesced={queue['queue_coalesce']['queue']['coalesced_rows']}"
    )
    for name, cfg in queue.items():
        assert cfg["rows_per_second"] > 0 and cfg["refresh_p99_seconds"] > 0
    assert queue["sync"]["queue"] is None
    for name in ("queue_block", "queue_coalesce"):
        counters = queue[name]["queue"]
        assert counters["enqueued_rows"] > 0
        assert counters["drained_rows"] + counters["coalesced_rows"] >= (
            counters["enqueued_rows"] - counters["depth_rows"]
        )
    adaptive = data["adaptive"]
    for family, record in adaptive.items():
        report_lines.append(
            f"E6j adaptive {family:13s} "
            f"vs-best={record['vs_best_ratio']:5.2f}x  "
            f"static-best={record['static_best']}  "
            f"switches={record['plan_switches']}"
        )
    # The planner's contract: converge near the best static plan of
    # every family (1.25 leaves room for shared-runner noise on top of
    # the 10% target checked when committing the artifact), and never
    # get stuck on the worst one where the static gap is real (pipeline
    # sql-vs-native and sharding 1-vs-4 are multi-x gaps; the expr
    # family's gap is ~noise, so beats_worst is not meaningful there).
    for family, record in adaptive.items():
        assert record["vs_best_ratio"] <= 1.25, (
            f"adaptive {family} converged {record['vs_best_ratio']:.2f}x "
            "off the best static config (allowed 1.25x)"
        )
        assert record["decisions"] > 0 and record["arms_seen"], (
            f"adaptive {family} recorded no planner decisions"
        )
    for family in ("pipeline", "sharding"):
        assert adaptive[family]["beats_worst"], (
            f"adaptive {family} failed to beat the worst static config"
        )


# ---------------------------------------------------------------------------
# Regression gate: full-native refresh vs committed baseline
# ---------------------------------------------------------------------------

BENCH_BASELINE_PATH = pathlib.Path(__file__).resolve().parents[1] / (
    "BENCH_baseline.json"
)


def measure_gate_metric(orders: int = ORDERS, delta_rows: int = 50,
                        rounds: int = 5, **flag_overrides) -> dict:
    """The machine-normalized gate metric for the 15k-row join config.

    Raw refresh seconds vary wildly across runner hardware, so the gate
    compares the *ratio* of the best full-native refresh to the best full
    recompute of the same view on the same machine — dimensionless, and
    exactly the quantity the native pipeline exists to shrink.  Extra
    flag overrides measure variants of the same config (the adaptive
    gate passes ``adaptive=True`` and triples the rounds).
    """
    from repro.workloads import time_call

    con, ext, workload = _build(
        orders=orders, view=VIEW_BY_CUSTOMER, **flag_overrides
    )
    rounds = _config_rounds(flag_overrides, rounds)
    recompute_sql = (
        "SELECT o.cust_id, SUM(o.amount) AS revenue, COUNT(*) AS n "
        "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
        "GROUP BY o.cust_id"
    )
    recompute_best, _ = time_call(lambda: con.execute(recompute_sql), repeat=3)
    oid = workload.next_order_id()
    refresh_best = float("inf")
    for _ in range(rounds):
        _apply_delta(con, workload, oid, delta_rows)
        oid += delta_rows
        elapsed, _ = time_call(lambda: ext.refresh("rev_cust"))
        refresh_best = min(refresh_best, elapsed)
    return {
        "workload": {"orders": orders, "delta_rows": delta_rows,
                     "view": "rev_cust (join, GROUP BY cust_id)"},
        "full_native_best_seconds": refresh_best,
        "recompute_best_seconds": recompute_best,
        "refresh_vs_recompute_ratio": refresh_best / recompute_best,
    }


def test_bench_regression_gate(report_lines):
    """Fail CI when the full-native refresh regresses more than 1.5x
    against the committed baseline on the 15k-row join config.

    The compared quantity is refresh/recompute on the same machine (see
    :func:`measure_gate_metric`), so a slower runner does not trip the
    gate but a genuinely slower refresh path does."""
    baseline = json.loads(BENCH_BASELINE_PATH.read_text(encoding="utf-8"))
    current = measure_gate_metric()
    allowed = baseline["join_15k"]["refresh_vs_recompute_ratio"] * 1.5
    report_lines.append(
        f"E6f gate ratio={current['refresh_vs_recompute_ratio']:6.3f} "
        f"(baseline={baseline['join_15k']['refresh_vs_recompute_ratio']:6.3f}, "
        f"allowed<{allowed:6.3f})"
    )
    assert current["refresh_vs_recompute_ratio"] <= allowed, (
        "full-native refresh regressed >1.5x vs BENCH_baseline.json on the "
        "15k-row join config"
    )
    # Same gate for the adaptive planner: its converged refresh must hold
    # the committed normalized ratio within the same 1.5x regression band
    # (a planner that dithers or picks slow arms trips this).
    adaptive = measure_gate_metric(adaptive=True)
    adaptive_allowed = (
        baseline["join_15k_adaptive"]["refresh_vs_recompute_ratio"] * 1.5
    )
    report_lines.append(
        f"E6f gate adaptive ratio="
        f"{adaptive['refresh_vs_recompute_ratio']:6.3f} "
        f"(baseline="
        f"{baseline['join_15k_adaptive']['refresh_vs_recompute_ratio']:6.3f}, "
        f"allowed<{adaptive_allowed:6.3f})"
    )
    assert adaptive["refresh_vs_recompute_ratio"] <= adaptive_allowed, (
        "adaptive refresh regressed >1.5x vs BENCH_baseline.json on the "
        "15k-row join config"
    )
