"""E6 — incremental joins: the three-join delta rule (paper's extension).

"the incremental form of a join consists of three relational join
operators" (§2); joins are the announced work-in-progress.  This bench
measures maintaining a two-table join-aggregation view incrementally
versus recomputing the join, across delta sizes — and, since the batching
milestone, the vectorized kernels with ART-indexed join state against the
row-at-a-time step-1 SQL (whose ``A ⋈ ΔB`` term rescans a base side on
every refresh).

Expected shape: for small deltas the three delta joins (each with one tiny
input) are far cheaper than the full join; the gap narrows as deltas grow
because the A⋈ΔB / ΔA⋈B terms scan a full base side.  The batched path
removes those rescans, so its refresh cost tracks |Δ| alone.
"""

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm
from repro.workloads import generate_sales_workload

ORDERS = 15_000

VIEW = (
    "CREATE MATERIALIZED VIEW rev AS "
    "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)
RECOMPUTE = (
    "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)


def _build(orders: int = ORDERS, batch_kernels: bool = True):
    workload = generate_sales_workload(num_orders=orders, seed=21)
    con = Connection()
    extension = load_ivm(
        con,
        CompilerFlags(mode=PropagationMode.LAZY, batch_kernels=batch_kernels),
    )
    con.execute(workload.SCHEMA)
    customers = con.table("customers")
    for row in workload.customers:
        customers.insert(row, coerce=False)
    orders_table = con.table("orders")
    for row in workload.orders:
        orders_table.insert(row, coerce=False)
    con.execute(VIEW)
    return con, extension, workload


def _apply_delta(con, workload, start_oid, rows):
    base = con.table("orders")
    delta = con.table("delta_orders")
    for i in range(rows):
        cust = workload.customers[(start_oid + i) % len(workload.customers)][0]
        row = (start_oid + i, cust, "p", (start_oid + i) % 100)
        base.insert(row, coerce=False)
        delta.insert(row + (True,), coerce=False)


@pytest.mark.parametrize("delta_rows", [10, 200])
@pytest.mark.parametrize("kernels", ["row", "batched"])
def test_join_ivm_refresh(benchmark, delta_rows, kernels):
    con, ext, workload = _build(batch_kernels=(kernels == "batched"))
    state = {"oid": workload.next_order_id()}

    def setup():
        _apply_delta(con, workload, state["oid"], delta_rows)
        state["oid"] += delta_rows
        return (), {}

    benchmark.pedantic(lambda: ext.refresh("rev"), setup=setup, rounds=8, iterations=1)
    benchmark.extra_info["delta_rows"] = delta_rows
    benchmark.extra_info["kernels"] = kernels


def test_join_recompute(benchmark):
    con, ext, workload = _build()
    benchmark.pedantic(lambda: con.execute(RECOMPUTE), rounds=5, iterations=1)


def test_join_shape(report_lines):
    from repro.workloads import time_call

    con, ext, workload = _build()
    recompute_time, _ = time_call(lambda: con.execute(RECOMPUTE), repeat=2)
    oid = workload.next_order_id()
    _apply_delta(con, workload, oid, 10)
    refresh_time, _ = time_call(lambda: ext.refresh("rev"))
    report_lines.append(
        f"E6  join delta=10  refresh={refresh_time * 1e3:8.2f}ms  "
        f"recompute={recompute_time * 1e3:8.2f}ms  "
        f"speedup={recompute_time / refresh_time:6.1f}x"
    )
    got = con.execute("SELECT region, revenue, n FROM rev").sorted()
    want = con.execute(RECOMPUTE).sorted()
    assert got == want
    assert refresh_time < recompute_time


def test_join_batched_vs_row_shape(report_lines):
    """The batching milestone's claim: vectorized kernels + indexed join
    state beat the row-at-a-time step-1 SQL, and both stay correct."""
    from repro.workloads import time_call

    timings = {}
    for kernels in ("row", "batched"):
        con, ext, workload = _build(batch_kernels=(kernels == "batched"))
        oid = workload.next_order_id()
        best = None
        for _ in range(5):
            _apply_delta(con, workload, oid, 50)
            oid += 50
            elapsed, _ = time_call(lambda: ext.refresh("rev"))
            best = elapsed if best is None else min(best, elapsed)
        timings[kernels] = best
        got = con.execute("SELECT region, revenue, n FROM rev").sorted()
        want = con.execute(RECOMPUTE).sorted()
        assert got == want, f"{kernels} path diverged from recompute"
    ratio = timings["row"] / timings["batched"]
    report_lines.append(
        f"E6b join delta=50  row={timings['row'] * 1e3:8.2f}ms  "
        f"batched={timings['batched'] * 1e3:8.2f}ms  "
        f"batched-speedup={ratio:6.1f}x"
    )
    assert ratio > 1.0, (
        f"batched join refresh should beat row-at-a-time, got {ratio:.2f}x"
    )
