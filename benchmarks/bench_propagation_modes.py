"""E5 — eager vs. lazy vs. batched propagation (paper §1 and §3).

"Batching changes together, for example, can amortize part of this cost
but comes at the price of reduced recency" (§1); "These SQL commands can
either be run eagerly, i.e. every time a change is registered on the base
table, or lazily, i.e. refreshing the materialized view when it is
queried" (§3).

Measured: total cost of applying K single-row changes and then querying
the view once, under each mode.  Expected shape: eager pays K propagation
rounds (highest total), lazy pays one round at query time (lowest),
batch-N sits in between with K/N rounds.
"""

import pytest

from repro.core.flags import PropagationMode
from benchmarks.conftest import build_groups_connection

BASE_ROWS = 10_000
CHANGES = 64


def _run_changes_then_query(con):
    for i in range(CHANGES):
        con.execute(f"INSERT INTO groups VALUES ('gmode{i % 7}', {i})")
    return con.execute("SELECT COUNT(*) FROM q")


@pytest.mark.parametrize(
    "mode,batch_size",
    [
        (PropagationMode.EAGER, 0),
        (PropagationMode.BATCH, 8),
        (PropagationMode.BATCH, 32),
        (PropagationMode.LAZY, 0),
    ],
    ids=["eager", "batch8", "batch32", "lazy"],
)
def test_mode_total_cost(benchmark, mode, batch_size):
    def setup():
        flags = {"mode": mode}
        if batch_size:
            flags["batch_size"] = batch_size
        con, _ = build_groups_connection(BASE_ROWS, **flags)
        return (con,), {}

    benchmark.pedantic(_run_changes_then_query, setup=setup, rounds=5, iterations=1)
    benchmark.extra_info["mode"] = mode.value
    benchmark.extra_info["batch_size"] = batch_size


def test_mode_shape(report_lines):
    """Eager ≥ batch ≥ lazy in total cost; all end at the same contents.
    Recency is the inverse: eager keeps the stored table always fresh."""
    from repro.workloads import time_call

    totals = {}
    contents = {}
    refreshes = {}
    for label, flags in (
        ("eager", {"mode": PropagationMode.EAGER}),
        ("batch8", {"mode": PropagationMode.BATCH, "batch_size": 8}),
        ("lazy", {"mode": PropagationMode.LAZY}),
    ):
        con, ext = build_groups_connection(BASE_ROWS, **flags)
        elapsed, _ = time_call(lambda: _run_changes_then_query(con))
        totals[label] = elapsed
        contents[label] = con.execute("SELECT * FROM q").sorted()
        refreshes[label] = ext.view_state("q").refresh_count
        report_lines.append(
            f"E5  mode={label:<7} total={elapsed * 1e3:8.2f}ms "
            f"refresh_rounds={refreshes[label]}"
        )

    baseline = next(iter(contents.values()))
    assert all(rows == baseline for rows in contents.values())
    assert refreshes["eager"] == CHANGES
    assert refreshes["batch8"] == CHANGES // 8
    assert refreshes["lazy"] == 1
    assert totals["lazy"] < totals["eager"]
