"""E4 — materialization-strategy ablation (paper §2's compiler switches).

"one can think of various relational strategies ... replacing the
materialized table with a UNION and regrouping, or through a
full-outer-join, or maintaining it with a left-join with an UPSERT ...
choosing one is controlled manually using compiler switches."

Expected shape: LEFT_JOIN_UPSERT touches only delta groups (cost bounded
by |ΔV|), while UNION_REGROUP and FULL_OUTER_JOIN rewrite the whole
materialized table (cost bounded by the number of groups), so upsert wins
whenever deltas touch few groups and the gap narrows as the touched-group
fraction grows.
"""

import pytest

from repro import MaterializationStrategy
from benchmarks.conftest import build_groups_connection, change_batches, fill_delta

BASE_ROWS = 20_000
NUM_GROUPS = 2_000


@pytest.mark.parametrize("strategy", list(MaterializationStrategy))
@pytest.mark.parametrize("delta_rows", [10, 500])
def test_strategy_refresh(benchmark, strategy, delta_rows):
    con, ext = build_groups_connection(
        BASE_ROWS, num_groups=NUM_GROUPS, strategy=strategy
    )
    batches = iter(change_batches(BASE_ROWS, delta_rows, batches=100))

    def setup():
        fill_delta(con, next(batches))
        return (), {}

    benchmark.pedantic(lambda: ext.refresh("q"), setup=setup, rounds=8, iterations=1)
    benchmark.extra_info["strategy"] = strategy.value
    benchmark.extra_info["delta_rows"] = delta_rows


def test_strategy_shape(report_lines):
    """Upsert must win for tiny deltas over many groups; all strategies
    must produce identical view contents."""
    from repro.workloads import time_call

    timings = {}
    contents = {}
    for strategy in MaterializationStrategy:
        con, ext = build_groups_connection(
            BASE_ROWS, num_groups=NUM_GROUPS, strategy=strategy
        )
        batches = change_batches(BASE_ROWS, 10, batches=3)
        times = []
        for batch in batches:
            fill_delta(con, batch)
            elapsed, _ = time_call(lambda: ext.refresh("q"))
            times.append(elapsed)
        timings[strategy] = min(times)
        contents[strategy] = con.execute(
            "SELECT group_index, total_value FROM q"
        ).sorted()

    baseline = next(iter(contents.values()))
    assert all(rows == baseline for rows in contents.values())
    for strategy, elapsed in timings.items():
        report_lines.append(
            f"E4  strategy={strategy.value:<18} delta=10  "
            f"refresh={elapsed * 1e3:8.2f}ms"
        )
    upsert = timings[MaterializationStrategy.LEFT_JOIN_UPSERT]
    assert upsert < timings[MaterializationStrategy.UNION_REGROUP]
    assert upsert < timings[MaterializationStrategy.FULL_OUTER_JOIN]
