"""E2 — ART index creation overhead (paper §2).

"The ART (Adaptive Radix Tree) is generated after having populated V, as
it is more efficient to build small indexes for each chunk and merge
them.  However, its creation only adds significant overhead the first
time, and it can be used in the future to speed up joins."

Measured here: (a) one-time index build cost vs. the per-refresh upsert
cost that the index enables, (b) chunked build-and-merge vs. naive
sequential build, (c) probe speed with vs. without the index.
"""

import pytest

from repro import Connection
from repro.storage.art import ARTIndex
from repro.storage.keys import encode_key
from repro.workloads import generate_groups_rows

ROWS = 20_000


def _entries(rows):
    data = generate_groups_rows(rows, num_groups=rows // 10, seed=9)
    return [(encode_key([k]), i) for i, (k, _) in enumerate(data)]


@pytest.mark.parametrize("rows", [5_000, 20_000])
def test_index_first_build(benchmark, rows):
    """The one-time cost the paper calls out."""
    entries = _entries(rows)

    def build():
        art = ARTIndex()
        for key, value in entries:
            art.insert(key, value)
        return art

    art = benchmark(build)
    assert len(art) == rows


@pytest.mark.parametrize("chunk_size", [256, 2048])
def test_index_chunked_build(benchmark, chunk_size):
    """DuckDB's strategy: build per-chunk indexes, then merge."""
    entries = _entries(ROWS)
    art = benchmark(
        lambda: ARTIndex.build_chunked(entries, chunk_size=chunk_size)
    )
    assert len(art) == ROWS


def test_index_reuse_upsert_refresh(benchmark):
    """After the one-time build, every refresh reuses the index: the
    repeated cost is tiny compared to the build."""
    from benchmarks.conftest import build_groups_connection, change_batches, fill_delta

    con, ext = build_groups_connection(ROWS)
    batches = iter(change_batches(ROWS, 50, batches=200))

    def setup():
        fill_delta(con, next(batches))
        return (), {}

    benchmark.pedantic(lambda: ext.refresh("q"), setup=setup, rounds=10, iterations=1)


def test_probe_with_index(benchmark):
    entries = _entries(ROWS)
    art = ARTIndex()
    for key, value in entries:
        art.insert(key, value)
    probes = [key for key, _ in entries[::97]]

    def probe():
        return sum(len(art.search(key)) for key in probes)

    found = benchmark(probe)
    assert found >= len(probes)


def test_probe_without_index_scan(benchmark):
    """The alternative to the index: scan everything per probe batch."""
    data = generate_groups_rows(ROWS, num_groups=ROWS // 10, seed=9)
    probes = {k for k, _ in data[::97]}

    def scan():
        return sum(1 for k, _ in data if k in probes)

    found = benchmark(scan)
    assert found >= len(probes)


def test_one_time_overhead_shape(report_lines):
    """Build cost >> single refresh cost, and chunked ≈ naive (same O(n))."""
    from repro.workloads import time_call

    entries = _entries(ROWS)

    def naive():
        art = ARTIndex()
        for key, value in entries:
            art.insert(key, value)

    build_time, _ = time_call(naive)
    chunked_time, _ = time_call(
        lambda: ARTIndex.build_chunked(entries, chunk_size=2048)
    )

    from benchmarks.conftest import build_groups_connection, change_batches, fill_delta

    con, ext = build_groups_connection(ROWS)
    batch = change_batches(ROWS, 50, batches=1)[0]
    fill_delta(con, batch)
    refresh_time, _ = time_call(lambda: ext.refresh("q"))

    report_lines.append(
        f"E2  build={build_time * 1e3:8.2f}ms  chunked={chunked_time * 1e3:8.2f}ms  "
        f"refresh(50)={refresh_time * 1e3:8.2f}ms  "
        f"build/refresh={build_time / refresh_time:6.1f}x"
    )
    assert build_time > refresh_time, "index build should dominate one refresh"
