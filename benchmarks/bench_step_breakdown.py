"""E9 — per-step cost breakdown of incremental maintenance (paper §3).

"We offer different benchmarks with sets of pre-written GROUP BY queries
to show how computationally intensive each part of the incremental
maintenance is."

This bench times each post-processing step of the propagation script
separately, for a set of pre-written GROUP BY views, answering exactly
that question.  Expected shape: step 2 (folding ΔV into V) dominates;
step 1 scales with |ΔT|; steps 3–4 are cheap scans/clears.
"""

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm
from repro.workloads import generate_change_stream, generate_groups_rows, time_call

BASE_ROWS = 20_000

# The demo's "sets of pre-written GROUP BY queries".
PREWRITTEN_VIEWS = {
    "sum": "SELECT group_index, SUM(group_value) AS s FROM groups GROUP BY group_index",
    "sum_count": (
        "SELECT group_index, SUM(group_value) AS s, COUNT(*) AS c "
        "FROM groups GROUP BY group_index"
    ),
    "avg": "SELECT group_index, AVG(group_value) AS a FROM groups GROUP BY group_index",
    "minmax": (
        "SELECT group_index, MIN(group_value) AS lo, MAX(group_value) AS hi "
        "FROM groups GROUP BY group_index"
    ),
}


def build(view_key: str):
    con = Connection()
    extension = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
    con.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
    table = con.table("groups")
    data = generate_groups_rows(BASE_ROWS, seed=13)
    for row in data:
        table.insert(row, coerce=False)
    con.execute(f"CREATE MATERIALIZED VIEW q AS {PREWRITTEN_VIEWS[view_key]}")
    return con, extension, data


def fill(con, batch):
    base = con.table("groups")
    delta = con.table("delta_groups")
    for row in batch.inserts:
        base.insert(row, coerce=False)
        delta.insert(row + (True,), coerce=False)
    removable = set(batch.deletes)
    for row_id, row in list(base.scan_with_ids()):
        if row in removable:
            base.delete_row(row_id)
            removable.discard(row)
            delta.insert(row + (False,), coerce=False)


@pytest.mark.parametrize("view_key", sorted(PREWRITTEN_VIEWS))
def test_full_refresh_per_view(benchmark, view_key):
    """End-to-end refresh cost per pre-written GROUP BY query."""
    con, ext, data = build(view_key)
    batches = iter(
        generate_change_stream(data, batch_size=100, batches=200, seed=5)
    )

    def setup():
        fill(con, next(batches))
        return (), {}

    benchmark.pedantic(lambda: ext.refresh("q"), setup=setup, rounds=8, iterations=1)
    benchmark.extra_info["view"] = view_key


def test_step_breakdown_shape(report_lines):
    """Time each propagation step separately for the sum_count view."""
    con, ext, data = build("sum_count")
    compiled = ext.compiled("q")
    batches = list(generate_change_stream(data, batch_size=100, batches=3, seed=6))

    totals: dict[str, float] = {}
    for batch in batches:
        fill(con, batch)
        for label, sql in compiled.propagation:
            step = label.split(":")[0]
            elapsed, _ = time_call(lambda: con.execute(sql))
            totals[step] = totals.get(step, 0.0) + elapsed
    for step, total in sorted(totals.items()):
        report_lines.append(
            f"E9  {step:<6} total over 3 batches = {total * 1e3:8.2f}ms"
        )
    # Steps 1+2 (compute + fold ΔV) must dominate the clears.
    assert totals["step1"] + totals["step2"] > totals["step4"]
