"""E1 — incremental maintenance vs. full recomputation (the headline claim).

Paper §3: "We argue that the incremental computation approach is more
efficient than recalculating V each time it is queried" and §2:
"preliminary results indicate clear improvements in resource consumption
by executing incremental computations rather than running the query
against the whole dataset."

Expected shape: IVM refresh latency scales with |ΔT| and beats recompute
by one to two orders of magnitude for small deltas over large bases; as
the delta approaches the base size the advantage vanishes (crossover).
"""

import pytest

from benchmarks.conftest import build_groups_connection, change_batches, fill_delta

BASE_ROWS = 20_000
RECOMPUTE_SQL = (
    "SELECT group_index, SUM(group_value) AS total_value "
    "FROM groups GROUP BY group_index"
)


@pytest.mark.parametrize("delta_rows", [10, 100, 1000])
def test_ivm_refresh(benchmark, delta_rows):
    """Propagation cost for one delta batch of the given size."""
    con, ext = build_groups_connection(BASE_ROWS)
    batches = iter(change_batches(BASE_ROWS, delta_rows, batches=200))

    def setup():
        fill_delta(con, next(batches))
        return (), {}

    def refresh():
        ext.refresh("q")

    benchmark.pedantic(refresh, setup=setup, rounds=10, iterations=1)
    benchmark.extra_info["base_rows"] = BASE_ROWS
    benchmark.extra_info["delta_rows"] = delta_rows


@pytest.mark.parametrize("base_rows", [5_000, 20_000])
def test_full_recompute(benchmark, base_rows):
    """The baseline: rerun the view query against the whole base table."""
    con, _ = build_groups_connection(base_rows)

    result = benchmark(lambda: con.execute(RECOMPUTE_SQL))
    benchmark.extra_info["base_rows"] = base_rows


def test_speedup_shape_holds(report_lines):
    """The qualitative claim: small-delta IVM beats recompute by >5x and
    the advantage shrinks monotonically as deltas grow."""
    from repro.workloads import time_call

    con, ext = build_groups_connection(BASE_ROWS)
    recompute_time, _ = time_call(lambda: con.execute(RECOMPUTE_SQL), repeat=3)

    speedups = {}
    for delta_rows in (10, 100, 1000, 5000):
        batches = change_batches(BASE_ROWS, delta_rows, batches=3, seed=delta_rows)
        times = []
        for batch in batches:
            fill_delta(con, batch)
            elapsed, _ = time_call(lambda: ext.refresh("q"))
            times.append(elapsed)
        best = min(times)
        speedups[delta_rows] = recompute_time / best
        report_lines.append(
            f"E1  base={BASE_ROWS} delta={delta_rows:>5}  "
            f"refresh={best * 1e3:8.2f}ms  recompute={recompute_time * 1e3:8.2f}ms  "
            f"speedup={speedups[delta_rows]:6.1f}x"
        )

    assert speedups[10] > 5.0, f"small-delta speedup collapsed: {speedups}"
    assert speedups[10] > speedups[5000], "speedup should shrink with delta size"


def test_batched_vs_row_kernels(report_lines):
    """Batched vs. row-at-a-time propagation on the single-table view.

    Step 1 here is already delta-sized SQL, so the batched win is modest
    compared to the join bench — but it must never be a regression, and
    both paths must agree with recomputation."""
    from repro.workloads import time_call

    timings = {}
    for kernels in ("row", "batched"):
        con, ext = build_groups_connection(
            BASE_ROWS, batch_kernels=(kernels == "batched")
        )
        batches = change_batches(BASE_ROWS, 500, batches=6, seed=99)
        best = None
        for batch in batches:
            fill_delta(con, batch)
            elapsed, _ = time_call(lambda: ext.refresh("q"))
            best = elapsed if best is None else min(best, elapsed)
        timings[kernels] = best
        got = con.execute("SELECT group_index, total_value FROM q").sorted()
        want = con.execute(RECOMPUTE_SQL).sorted()
        assert got == want, f"{kernels} path diverged from recompute"
    ratio = timings["row"] / timings["batched"]
    report_lines.append(
        f"E1b groups delta=500  row={timings['row'] * 1e3:8.2f}ms  "
        f"batched={timings['batched'] * 1e3:8.2f}ms  "
        f"batched-speedup={ratio:6.2f}x"
    )
    # Guard against the batched path regressing the single-table hot loop.
    # Measured ratio is ~1.1x; the wide margin is deliberate — this runs in
    # CI on shared runners, where interleaved timing loops are noisy.
    assert ratio > 0.5, f"batched kernels regressed single-table refresh: {ratio:.2f}x"
