"""Ablations for design choices DESIGN.md calls out.

* **hidden_count** — exact group liveness (hidden COUNT(*)) vs. the
  paper's `DELETE WHERE sum = 0` form: what does exactness cost per
  refresh?
* **index join** — the executor's ART-backed index-nested-loop join vs.
  forcing the hash join (by dropping the view's key index), isolating the
  paper's "the ART ... can be used to speed up joins" effect.
"""

import pytest

from benchmarks.conftest import build_groups_connection, change_batches, fill_delta

BASE_ROWS = 20_000
NUM_GROUPS = 2_000


@pytest.mark.parametrize("hidden_count", [False, True], ids=["paper_sum0", "hidden_count"])
def test_liveness_ablation(benchmark, hidden_count):
    con, ext = build_groups_connection(
        BASE_ROWS, num_groups=NUM_GROUPS, hidden_count=hidden_count
    )
    batches = iter(change_batches(BASE_ROWS, 50, batches=100))

    def setup():
        fill_delta(con, next(batches))
        return (), {}

    benchmark.pedantic(lambda: ext.refresh("q"), setup=setup, rounds=8, iterations=1)
    benchmark.extra_info["hidden_count"] = hidden_count


@pytest.mark.parametrize("use_index", [True, False], ids=["index_join", "hash_join"])
def test_upsert_join_ablation(benchmark, use_index, monkeypatch):
    con, ext = build_groups_connection(BASE_ROWS, num_groups=NUM_GROUPS)
    if not use_index:
        # Force the hash-join path by hiding the index from the planner.
        from repro.storage.table import Table

        monkeypatch.setattr(Table, "find_index_on", lambda self, cols: None)
    batches = iter(change_batches(BASE_ROWS, 10, batches=100))

    def setup():
        fill_delta(con, next(batches))
        return (), {}

    benchmark.pedantic(lambda: ext.refresh("q"), setup=setup, rounds=8, iterations=1)
    benchmark.extra_info["index_join"] = use_index


def test_ablation_shapes(report_lines):
    """Index join must beat the forced hash join for tiny deltas over a
    large materialized table; hidden_count costs at most ~2x per refresh."""
    from unittest import mock

    from repro.storage.table import Table
    from repro.workloads import time_call

    def refresh_time(**kwargs):
        patch = kwargs.pop("disable_index", False)
        con, ext = build_groups_connection(
            BASE_ROWS, num_groups=NUM_GROUPS, **kwargs
        )
        batches = change_batches(BASE_ROWS, 10, batches=3)
        times = []
        context = (
            mock.patch.object(Table, "find_index_on", lambda self, cols: None)
            if patch
            else mock.patch.object(Table, "find_index_on", Table.find_index_on)
        )
        with context:
            for batch in batches:
                fill_delta(con, batch)
                elapsed, _ = time_call(lambda: ext.refresh("q"))
                times.append(elapsed)
        return min(times)

    with_index = refresh_time()
    without_index = refresh_time(disable_index=True)
    paper_liveness = refresh_time()
    exact_liveness = refresh_time(hidden_count=True)

    report_lines.append(
        f"E8  index-join={with_index * 1e3:7.2f}ms  "
        f"hash-join={without_index * 1e3:7.2f}ms  "
        f"paper-sum0={paper_liveness * 1e3:7.2f}ms  "
        f"hidden-count={exact_liveness * 1e3:7.2f}ms"
    )
    assert with_index < without_index
    assert exact_liveness < paper_liveness * 3
