"""Standalone experiment harness: regenerates every E-series result table.

``pytest benchmarks/ --benchmark-only`` gives per-operation statistics;
this script produces the paper-style summary tables (series over sweep
parameters) in one run:

    python benchmarks/run_experiments.py [--quick]

``--quick`` shrinks scales ~4x for a fast smoke run.
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    CompilerFlags,
    Connection,
    CrossSystemPipeline,
    MaterializationStrategy,
    OLTPSystem,
    PropagationMode,
    load_ivm,
)
from repro.workloads import (
    format_table,
    generate_change_stream,
    generate_groups_rows,
    generate_sales_workload,
    time_call,
)


def build_groups(rows, num_groups=100, **flags):
    flags.setdefault("mode", PropagationMode.LAZY)
    con = Connection()
    ext = load_ivm(con, CompilerFlags(**flags))
    con.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
    table = con.table("groups")
    data = generate_groups_rows(rows, num_groups=num_groups)
    for row in data:
        table.insert(row, coerce=False)
    con.execute(
        "CREATE MATERIALIZED VIEW q AS SELECT group_index, "
        "SUM(group_value) AS total_value FROM groups GROUP BY group_index"
    )
    return con, ext, data


def fill_delta(con, batch):
    base = con.table("groups")
    delta = con.table("delta_groups")
    for row in batch.inserts:
        base.insert(row, coerce=False)
        delta.insert(row + (True,), coerce=False)
    removable = set(batch.deletes)
    for row_id, row in list(base.scan_with_ids()):
        if row in removable:
            base.delete_row(row_id)
            removable.discard(row)
            delta.insert(row + (False,), coerce=False)


def experiment_e1(scale):
    base_rows = 20_000 // scale
    con, ext, data = build_groups(base_rows)
    recompute, _ = time_call(
        lambda: con.execute(
            "SELECT group_index, SUM(group_value) FROM groups GROUP BY group_index"
        ),
        repeat=3,
    )
    rows = []
    for delta in (10, 100, 1000, base_rows // 4):
        batches = list(
            generate_change_stream(data, batch_size=delta, batches=3, seed=delta)
        )
        times = []
        for batch in batches:
            fill_delta(con, batch)
            elapsed, _ = time_call(lambda: ext.refresh("q"))
            times.append(elapsed)
        best = min(times)
        rows.append([base_rows, delta, best, recompute, f"{recompute / best:.1f}x"])
    print("\nE1 — incremental vs recompute (GROUP BY SUM)")
    print(format_table(["base", "delta", "refresh", "recompute", "speedup"], rows))


def experiment_e2(scale):
    from repro.storage.art import ARTIndex
    from repro.storage.keys import encode_key

    rows = 20_000 // scale
    data = generate_groups_rows(rows, num_groups=rows // 10, seed=9)
    entries = [(encode_key([k]), i) for i, (k, _) in enumerate(data)]

    def naive():
        art = ARTIndex()
        for key, value in entries:
            art.insert(key, value)

    build, _ = time_call(naive)
    chunked, _ = time_call(lambda: ARTIndex.build_chunked(entries, chunk_size=2048))
    con, ext, base_data = build_groups(rows)
    batch = next(iter(generate_change_stream(base_data, batch_size=50, batches=1)))
    fill_delta(con, batch)
    refresh, _ = time_call(lambda: ext.refresh("q"))
    print("\nE2 — ART index overhead")
    print(
        format_table(
            ["operation", "time"],
            [
                [f"first build ({rows} keys)", build],
                ["chunked build + merge", chunked],
                ["one refresh reusing the index", refresh],
            ],
        )
    )


def experiment_e3(scale):
    workload = generate_sales_workload(num_orders=20_000 // scale, seed=3)
    oltp = OLTPSystem()
    oltp.execute(workload.SCHEMA)
    for row in workload.customers:
        oltp.connection.table("customers").insert(row, coerce=False)
    for row in workload.orders:
        oltp.connection.table("orders").insert(row, coerce=False)
    pipe = CrossSystemPipeline(oltp=oltp)
    pipe.create_materialized_view(
        "CREATE MATERIALIZED VIEW region_revenue AS "
        "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
        "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
        "GROUP BY c.region"
    )
    next_oid = workload.next_order_id()
    for i in range(100):
        cust = workload.customers[i % len(workload.customers)][0]
        oltp.execute(f"INSERT INTO orders VALUES ({next_oid + i}, '{cust}', 'p', 7)")
    ivm, _ = time_call(lambda: pipe.query("SELECT * FROM region_revenue"))
    steady, _ = time_call(
        lambda: pipe.query("SELECT * FROM region_revenue"), repeat=3
    )
    recompute_sql = (
        "SELECT c.region, SUM(o.amount), COUNT(*) FROM oltp.orders o "
        "JOIN oltp.customers c ON o.cust_id = c.cust_id GROUP BY c.region"
    )
    recompute, _ = time_call(lambda: pipe.query(recompute_sql, refresh=False))
    oltp_sql = (
        "SELECT c.region, SUM(o.amount), COUNT(*) FROM orders o "
        "JOIN customers c ON o.cust_id = c.cust_id GROUP BY c.region"
    )
    pure_oltp, _ = time_call(lambda: oltp.execute(oltp_sql))
    print("\nE3 — cross-system comparison (after a 100-change burst)")
    print(
        format_table(
            ["configuration", "latency"],
            [
                ["cross-system IVM (incl. transfer + refresh)", ivm],
                ["cross-system IVM (steady state)", steady],
                ["cross-system, no IVM (recompute)", recompute],
                ["pure OLTP recompute", pure_oltp],
            ],
        )
    )


def experiment_e4(scale):
    rows = []
    for strategy in MaterializationStrategy:
        con, ext, data = build_groups(
            20_000 // scale, num_groups=2_000 // scale, strategy=strategy
        )
        batches = list(generate_change_stream(data, batch_size=10, batches=3))
        times = []
        for batch in batches:
            fill_delta(con, batch)
            elapsed, _ = time_call(lambda: ext.refresh("q"))
            times.append(elapsed)
        rows.append([strategy.value, min(times)])
    print("\nE4 — materialization strategies (delta=10)")
    print(format_table(["strategy", "refresh"], rows))


def experiment_e5(scale):
    changes = 64
    rows = []
    for label, flags in (
        ("eager", {"mode": PropagationMode.EAGER}),
        ("batch(8)", {"mode": PropagationMode.BATCH, "batch_size": 8}),
        ("batch(32)", {"mode": PropagationMode.BATCH, "batch_size": 32}),
        ("lazy", {"mode": PropagationMode.LAZY}),
    ):
        con, ext, _ = build_groups(10_000 // scale, **flags)

        def run():
            for i in range(changes):
                con.execute(f"INSERT INTO groups VALUES ('gm{i % 7}', {i})")
            con.execute("SELECT COUNT(*) FROM q")

        elapsed, _ = time_call(run)
        rows.append([label, elapsed, ext.view_state("q").refresh_count])
    print(f"\nE5 — propagation modes ({changes} changes + 1 query)")
    print(format_table(["mode", "total", "refresh rounds"], rows))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="~4x smaller scales")
    args = parser.parse_args(argv)
    scale = 4 if args.quick else 1
    for experiment in (
        experiment_e1,
        experiment_e2,
        experiment_e3,
        experiment_e4,
        experiment_e5,
    ):
        experiment(scale)
    print("\n(E6/E7 join and projection sweeps: see benchmarks/bench_join_ivm.py "
          "and benchmarks/bench_filter_projection.py)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
