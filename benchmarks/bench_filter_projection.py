"""E7 — projection/filter views: the non-aggregate path (paper §2 step 3,
"false multiplicity without aggregate").

Selection and projection are their own incremental forms (DBSP linearity),
so maintaining a filtered projection costs O(|ΔT|) while recomputation
costs O(|T|).  The materialized table stores counted rows (the Z-set
representation), so deletions are exact scalar operations.
"""

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm
from repro.workloads import generate_change_stream, generate_groups_rows

BASE_ROWS = 20_000

VIEW = (
    "CREATE MATERIALIZED VIEW hot AS "
    "SELECT group_index, group_value * 2 AS doubled "
    "FROM groups WHERE group_value > 500"
)
RECOMPUTE = (
    "SELECT group_index, group_value * 2 AS doubled "
    "FROM groups WHERE group_value > 500"
)


def _build():
    con = Connection()
    extension = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
    con.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
    table = con.table("groups")
    rows = generate_groups_rows(BASE_ROWS, seed=17)
    for row in rows:
        table.insert(row, coerce=False)
    con.execute(VIEW)
    return con, extension, rows


@pytest.mark.parametrize("delta_rows", [10, 500])
def test_projection_ivm_refresh(benchmark, delta_rows):
    con, ext, rows = _build()
    stream = iter(
        generate_change_stream(rows, batch_size=delta_rows, batches=100, seed=4)
    )
    base = con.table("groups")
    delta = con.table("delta_groups")

    def setup():
        batch = next(stream)
        for row in batch.inserts:
            base.insert(row, coerce=False)
            delta.insert(row + (True,), coerce=False)
        removable = set(batch.deletes)
        for row_id, row in list(base.scan_with_ids()):
            if row in removable:
                base.delete_row(row_id)
                removable.discard(row)
                delta.insert(row + (False,), coerce=False)
        return (), {}

    benchmark.pedantic(lambda: ext.refresh("hot"), setup=setup, rounds=8, iterations=1)
    benchmark.extra_info["delta_rows"] = delta_rows


def test_projection_recompute(benchmark):
    con, ext, rows = _build()
    benchmark.pedantic(lambda: con.execute(RECOMPUTE), rounds=5, iterations=1)


def test_projection_shape(report_lines):
    from repro.workloads import time_call

    con, ext, rows = _build()
    recompute_time, _ = time_call(lambda: con.execute(RECOMPUTE), repeat=2)
    con.execute("INSERT INTO groups VALUES ('fresh', 900)")
    con.execute("DELETE FROM groups WHERE group_index = 'g000001'")
    refresh_time, _ = time_call(lambda: ext.refresh("hot"))
    report_lines.append(
        f"E7  projection  refresh={refresh_time * 1e3:8.2f}ms  "
        f"recompute={recompute_time * 1e3:8.2f}ms  "
        f"speedup={recompute_time / refresh_time:6.1f}x"
    )
    got = con.execute(
        "SELECT group_index, doubled, _duckdb_ivm_count FROM hot"
    ).sorted()
    want = con.execute(
        "SELECT group_index, group_value * 2, COUNT(*) FROM groups "
        "WHERE group_value > 500 GROUP BY group_index, group_value * 2"
    ).sorted()
    assert got == want
    assert refresh_time < recompute_time
