"""E3 — the cross-system comparison (paper §3, Figure 3).

"We also allow users to benchmark our system: we show a transparent
comparison of the query performance in pure DuckDB, pure PostgreSQL,
cross-system, and without IVM."

Four configurations answer the same analytical query after a burst of
transactional changes:

* ``pure_olap_ivm``    — single engine, native IVM extension (pure DuckDB).
* ``pure_oltp``        — recompute directly on the OLTP engine (pure
                         PostgreSQL).
* ``cross_system_ivm`` — OLTP deltas propagated into an OLAP-hosted
                         materialized view (the paper's pipeline).
* ``cross_no_ivm``     — recompute over the attachment every time.

Expected shape: the two IVM configurations answer from the materialized
table (fast, delta-bounded); the two recompute configurations pay the full
aggregation each time; cross-system IVM adds only the delta-transfer
overhead over pure-OLAP IVM.
"""

import pytest

from repro import (
    CompilerFlags,
    Connection,
    CrossSystemPipeline,
    OLTPSystem,
    PropagationMode,
    load_ivm,
)
from repro.workloads import generate_sales_workload, time_call

ORDERS = 20_000
BURST = 100

VIEW = (
    "CREATE MATERIALIZED VIEW region_revenue AS "
    "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)
ANALYTICAL = (
    "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM {orders} o JOIN {customers} c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)


def _load(con: Connection, workload) -> None:
    con.execute(workload.SCHEMA)
    customers = con.table("customers")
    for row in workload.customers:
        customers.insert(row, coerce=False)
    orders = con.table("orders")
    for row in workload.orders:
        orders.insert(row, coerce=False)


def _burst(execute, workload, start_oid: int) -> None:
    for i in range(BURST):
        cust = workload.customers[i % len(workload.customers)][0]
        execute(
            f"INSERT INTO orders VALUES ({start_oid + i}, '{cust}', 'p', {i % 50})"
        )


def _make_pipeline():
    workload = generate_sales_workload(num_orders=ORDERS, seed=3)
    oltp = OLTPSystem()
    _load(oltp.connection, workload)
    pipeline = CrossSystemPipeline(oltp=oltp)
    pipeline.create_materialized_view(VIEW)
    return pipeline, workload


def test_pure_olap_ivm(benchmark):
    workload = generate_sales_workload(num_orders=ORDERS, seed=3)
    con = Connection()
    load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
    _load(con, workload)
    con.execute(VIEW)
    state = {"oid": workload.next_order_id()}

    def setup():
        _burst(con.execute, workload, state["oid"])
        state["oid"] += BURST
        return (), {}

    benchmark.pedantic(
        lambda: con.execute("SELECT * FROM region_revenue"),
        setup=setup,
        rounds=8,
        iterations=1,
    )


def test_cross_system_ivm(benchmark):
    pipeline, workload = _make_pipeline()
    state = {"oid": workload.next_order_id()}

    def setup():
        _burst(pipeline.oltp.execute, workload, state["oid"])
        state["oid"] += BURST
        return (), {}

    benchmark.pedantic(
        lambda: pipeline.query("SELECT * FROM region_revenue"),
        setup=setup,
        rounds=8,
        iterations=1,
    )


def test_cross_system_no_ivm(benchmark):
    pipeline, workload = _make_pipeline()
    sql = ANALYTICAL.format(orders="oltp.orders", customers="oltp.customers")

    benchmark.pedantic(
        lambda: pipeline.query(sql, refresh=False), rounds=5, iterations=1
    )


def test_pure_oltp_recompute(benchmark):
    workload = generate_sales_workload(num_orders=ORDERS, seed=3)
    oltp = OLTPSystem()
    _load(oltp.connection, workload)
    sql = ANALYTICAL.format(orders="orders", customers="customers")

    benchmark.pedantic(lambda: oltp.execute(sql), rounds=5, iterations=1)


def test_cross_system_shape(report_lines):
    """IVM configurations must beat recompute configurations; all four
    agree on the answer."""
    pipeline, workload = _make_pipeline()
    _burst(pipeline.oltp.execute, workload, workload.next_order_id())

    ivm_time, ivm_result = time_call(
        lambda: pipeline.query("SELECT * FROM region_revenue")
    )
    sql = ANALYTICAL.format(orders="oltp.orders", customers="oltp.customers")
    recompute_time, recompute_result = time_call(
        lambda: pipeline.query(sql, refresh=False)
    )
    oltp_sql = ANALYTICAL.format(orders="orders", customers="customers")
    oltp_time, oltp_result = time_call(lambda: pipeline.oltp.execute(oltp_sql))

    assert ivm_result.sorted() == recompute_result.sorted() == oltp_result.sorted()
    report_lines.append(
        f"E3  cross-ivm={ivm_time * 1e3:8.2f}ms  "
        f"cross-recompute={recompute_time * 1e3:8.2f}ms  "
        f"pure-oltp-recompute={oltp_time * 1e3:8.2f}ms"
    )
    # The materialized answer (after the one-off refresh) must be much
    # cheaper than recomputing: query it again now that deltas are drained.
    steady_time, _ = time_call(
        lambda: pipeline.query("SELECT * FROM region_revenue"), repeat=3
    )
    assert steady_time < recompute_time, (steady_time, recompute_time)
