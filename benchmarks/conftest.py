"""Shared builders for the benchmark harness.

Every benchmark constructs engines through these helpers so that scales,
seeds and view definitions stay consistent across experiments (E1–E7 in
DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro import (
    CompilerFlags,
    Connection,
    CrossSystemPipeline,
    MaterializationStrategy,
    OLTPSystem,
    PropagationMode,
    load_ivm,
)
from repro.workloads import generate_change_stream, generate_groups_rows

GROUPS_VIEW = (
    "CREATE MATERIALIZED VIEW q AS "
    "SELECT group_index, SUM(group_value) AS total_value "
    "FROM groups GROUP BY group_index"
)


def build_groups_connection(
    rows: int,
    num_groups: int = 100,
    seed: int = 42,
    **flag_overrides,
):
    """Engine + extension + populated ``groups`` table + the Listing-1 view."""
    flag_overrides.setdefault("mode", PropagationMode.LAZY)
    con = Connection()
    extension = load_ivm(con, CompilerFlags(**flag_overrides))
    con.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
    table = con.table("groups")
    for row in generate_groups_rows(rows, num_groups=num_groups, seed=seed):
        table.insert(row, coerce=False)
    con.execute(GROUPS_VIEW)
    return con, extension


def fill_delta(con: Connection, batch) -> None:
    """Write one ChangeBatch straight into the delta table (and the base),
    bypassing per-statement overhead so benchmarks time propagation itself."""
    base = con.table("groups")
    delta = con.table("delta_groups")
    for row in batch.inserts:
        base.insert(row, coerce=False)
        delta.insert(row + (True,), coerce=False)
    removable = {row for row in batch.deletes}
    for row_id, row in list(base.scan_with_ids()):
        if row in removable:
            base.delete_row(row_id)
            removable.discard(row)
            delta.insert(row + (False,), coerce=False)


def change_batches(rows, batch_size, batches, seed=7):
    initial = generate_groups_rows(rows, seed=seed)
    return list(
        generate_change_stream(
            initial, batch_size=batch_size, batches=batches, seed=seed
        )
    )


@pytest.fixture(scope="session")
def report_lines():
    """Collector for paper-style summary rows printed at session end."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
