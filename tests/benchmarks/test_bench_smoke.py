"""Smoke tests for the benchmark entry points.

The benchmarks live outside the tier-1 test run, so a refactor can silently
rot them.  These tests import the benchmark modules and drive their
builders at tiny sizes — no timing assertions, just "the harness still
constructs, propagates, and agrees with recomputation".
"""

from __future__ import annotations

import pathlib
import sys

import pytest

# The benchmarks/ directory is a plain folder next to tests/, importable
# once the repo root is on the path (as it is when pytest runs from the
# repo root; CI and local runs alike).
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

bench_join = pytest.importorskip("benchmarks.bench_join_ivm")


@pytest.mark.parametrize("batch_kernels", [False, True])
def test_join_bench_builder_smoke(batch_kernels):
    """_build at a tiny scale: create, refresh, and verify both kernel paths."""
    con, ext, workload = bench_join._build(
        orders=200, batch_kernels=batch_kernels
    )
    assert ext.status()[0]["batched"] is batch_kernels
    oid = workload.next_order_id()
    bench_join._apply_delta(con, workload, oid, 10)
    ext.refresh("rev")
    got = con.execute("SELECT region, revenue, n FROM rev").sorted()
    want = con.execute(bench_join.RECOMPUTE).sorted()
    assert got == want
    assert got, "view should not be empty at this scale"


def test_join_bench_repeated_refreshes_stay_consistent():
    """Several delta rounds through the batched path keep the indexed join
    state in sync with the base tables (the invariant the bench relies on)."""
    con, ext, workload = bench_join._build(orders=150, batch_kernels=True)
    oid = workload.next_order_id()
    for _ in range(4):
        bench_join._apply_delta(con, workload, oid, 7)
        oid += 7
        ext.refresh("rev")
        got = con.execute("SELECT region, revenue, n FROM rev").sorted()
        want = con.execute(bench_join.RECOMPUTE).sorted()
        assert got == want


def test_incremental_bench_builder_smoke():
    """The E1 builder + one propagation round at a tiny scale."""
    conftest = pytest.importorskip("benchmarks.conftest")
    con, ext = conftest.build_groups_connection(300, num_groups=10)
    (batch,) = conftest.change_batches(300, 20, batches=1)
    conftest.fill_delta(con, batch)
    ext.refresh("q")
    got = con.execute("SELECT group_index, total_value FROM q").sorted()
    want = con.execute(
        "SELECT group_index, SUM(group_value) FROM groups GROUP BY group_index"
    ).sorted()
    assert got == want


def test_pipeline_trajectory_artifact(tmp_path):
    """emit_pipeline_trajectory writes a well-formed BENCH_pipeline.json:
    all three configs present with their native/SQL step split and
    timings, the headline speedup ratios, the MIN/MAX step-2b ablation,
    and the row-vs-batch ingestion comparison (values are not asserted at
    this tiny scale — CI measures at full scale)."""
    import json

    target = tmp_path / "BENCH_pipeline.json"
    data = bench_join.emit_pipeline_trajectory(
        path=target, orders=200, delta_rows=10, rounds=2,
        minmax_rounds=2, ingestion_rows=(50,), ablation_rounds=2,
        sharding_orders=200, sharding_delta_rows=10, sharding_rounds=2,
        durability_rows=40, durability_batches=2,
        queue_bursts=2, queue_statements=10,
    )
    on_disk = json.loads(target.read_text())
    assert on_disk == data
    assert set(data["configs"]) == {
        "sql", "step1_native", "full_native", "adaptive",
    }
    for name, cfg in data["configs"].items():
        # Adaptive configs run 3x the rounds (planner warm-up).
        assert len(cfg["refresh_seconds"]) == (6 if name == "adaptive" else 2)
        assert cfg["best_seconds"] == min(cfg["refresh_seconds"])
        assert sorted(cfg["native_steps"] + cfg["sql_steps"]) == [
            "step1", "step2", "step3", "step4",
        ]
    assert data["configs"]["sql"]["native_steps"] == []
    assert data["configs"]["step1_native"]["native_steps"] == ["step1"]
    assert data["configs"]["full_native"]["sql_steps"] == []
    assert data["speedup_full_native_vs_sql"] > 0
    assert data["speedup_full_native_vs_step1_only"] > 0
    minmax = data["minmax"]
    assert set(minmax["configs"]) == {"sql_rescan", "native_rescan", "adaptive"}
    assert "step2b" in minmax["configs"]["native_rescan"]["native_steps"]
    assert "step2b" not in minmax["configs"]["sql_rescan"]["native_steps"]
    assert minmax["speedup_native_rescan_vs_sql_rescan"] > 0
    shapes = data["ingestion"]["shapes"]
    assert set(shapes) == {"delta_table", "pk_table"}
    for counts in shapes.values():
        for record in counts.values():
            assert record["batch_speedup"] > 0
    union = data["union_regroup"]
    assert set(union["configs"]) == {"sql_rebuild", "native_regroup", "adaptive"}
    assert "step2" in union["configs"]["native_regroup"]["native_steps"]
    assert "step2" not in union["configs"]["sql_rebuild"]["native_steps"]
    assert union["speedup_native_regroup_vs_sql_rebuild"] > 0
    expr = data["expr_keyed"]
    assert set(expr["configs"]) == {"sql_step1", "native_expr", "adaptive"}
    assert "step1" in expr["configs"]["native_expr"]["native_steps"]
    assert "step1" not in expr["configs"]["sql_step1"]["native_steps"]
    assert expr["speedup_native_expr_vs_sql_step1"] > 0
    shard = data["sharding"]
    assert set(shard["configs"]) == {
        "shards1", "shards2", "shards4", "adaptive",
    }
    assert shard["configs"]["shards1"]["native_steps"] != ["sharded"]
    for name in ("shards2", "shards4", "adaptive"):
        cfg = shard["configs"][name]
        assert cfg["native_steps"] == ["sharded"]
        assert len(cfg["refresh_seconds"]) == (6 if name == "adaptive" else 2)
        assert cfg["refresh_stats"]["refreshes"] > 0
    assert shard["speedup_4_shards_vs_1"] > 0
    dag = data["view_dag"]
    assert set(dag["depths"]) == {"depth1", "depth2", "depth3"}
    for d, entry in enumerate(
        (dag["depths"]["depth1"], dag["depths"]["depth2"],
         dag["depths"]["depth3"])
    ):
        assert entry["leaf"] == f"dag{d + 1}"
        assert entry["dag_depth"] == d
        assert len(entry["refresh_seconds"]) == 2
        assert entry["best_seconds"] == min(entry["refresh_seconds"])
    assert dag["overhead_depth3_vs_depth1"] > 0
    durability = data["durability"]
    assert durability["workload"]["wal_sync"] is False
    for section in ("wal_append", "recovery_replay"):
        assert durability[section]["rows"] == 80
        assert durability[section]["rows_per_second"] > 0
    queue = data["ingestion_queue"]
    assert set(queue["configs"]) == {"sync", "queue_block", "queue_coalesce"}
    assert queue["configs"]["sync"]["queue"] is None
    for name in ("queue_block", "queue_coalesce"):
        cfg = queue["configs"][name]
        assert cfg["rows_per_second"] > 0
        assert cfg["refresh_p99_seconds"] >= cfg["refresh_p50_seconds"] > 0
        assert cfg["queue"]["enqueued_rows"] > 0
    assert queue["queue_vs_sync_ingest_ratio"] > 0
    adaptive = data["adaptive"]
    assert set(adaptive) == {
        "pipeline", "minmax", "union_regroup", "expr_keyed", "sharding",
    }
    for family, record in adaptive.items():
        # Values are noise at this scale; the shape and the decision log
        # must be right (CI measures and gates at full scale).
        assert record["vs_best_ratio"] > 0
        assert record["adaptive_best_seconds"] > 0
        assert record["static_best_seconds"] <= record["static_worst_seconds"]
        assert isinstance(record["beats_worst"], bool)
        assert record["decisions"] > 0, f"{family}: no planner decisions"
        assert record["arms_seen"], f"{family}: no arms recorded"


def test_union_and_expr_ablations_stay_correct_at_tiny_scale():
    """Both new ablation collectors agree with the recompute (asserted
    inside the shared harness) and report the expected step splits."""
    union = bench_join.collect_union_trajectory(
        orders=150, delta_rows=5, rounds=2
    )
    for name, cfg in union["configs"].items():
        assert len(cfg["refresh_seconds"]) == (6 if name == "adaptive" else 2)
    expr = bench_join.collect_expr_trajectory(
        orders=150, delta_rows=5, rounds=2
    )
    for name, cfg in expr["configs"].items():
        assert len(cfg["refresh_seconds"]) == (6 if name == "adaptive" else 2)


def test_sharding_bench_stays_correct_at_tiny_scale():
    """All three shard counts agree with the recompute (asserted inside
    the collector) and report the expected step split and stats."""
    data = bench_join.collect_sharding_trajectory(
        orders=150, delta_rows=5, rounds=2, warmup_rounds=1
    )
    assert set(data["configs"]) == {
        "shards1", "shards2", "shards4", "adaptive",
    }
    for name, cfg in data["configs"].items():
        rounds = 6 if name == "adaptive" else 2  # adaptive runs 3x
        assert len(cfg["refresh_seconds"]) == rounds
        assert cfg["refresh_stats"]["refreshes"] == rounds + 1  # + warmup
        if name != "shards1":
            assert cfg["native_steps"] == ["sharded"]
            assert cfg["refresh_stats"]["last_shard_skew"] >= 1.0
    assert data["configs"]["adaptive"]["refresh_stats"]["decisions"]


def test_view_dag_bench_stays_correct_at_tiny_scale():
    """Every chain depth agrees with the per-level recompute (asserted
    inside the collector) and records its DAG depth from RefreshStats."""
    data = bench_join.collect_view_dag_trajectory(
        orders=150, delta_rows=5, rounds=2
    )
    assert [
        data["depths"][f"depth{d}"]["dag_depth"] for d in (1, 2, 3)
    ] == [0, 1, 2]
    for entry in data["depths"].values():
        assert len(entry["refresh_seconds"]) == 2


def test_minmax_bench_stays_correct_at_tiny_scale():
    """Both step-2b configurations agree with the recompute (asserted
    inside the collector) and report the expected step split."""
    data = bench_join.collect_minmax_trajectory(
        orders=150, delta_rows=5, rounds=2
    )
    assert set(data["configs"]) == {"sql_rescan", "native_rescan", "adaptive"}
    for name, cfg in data["configs"].items():
        assert len(cfg["refresh_seconds"]) == (6 if name == "adaptive" else 2)
    assert data["configs"]["adaptive"]["refresh_stats"]["decisions"]


def test_durability_bench_stays_correct_at_tiny_scale():
    """The durability collector verifies the recovered view against a
    recompute internally and reports positive throughput both ways."""
    data = bench_join.collect_durability_benchmark(
        rows_per_batch=30, batches=2, repeats=1
    )
    assert data["wal_append"]["rows_per_second"] > 0
    assert data["recovery_replay"]["rows_per_second"] > 0
    assert data["wal_append"]["rows"] == 60


def test_ingestion_queue_bench_stays_correct_at_tiny_scale():
    """The ingest-queue burst benchmark converges under every config and
    its backpressure counters balance (enqueued = drained + coalesced +
    still queued)."""
    data = bench_join.collect_ingestion_queue_benchmark(
        bursts=2, statements_per_burst=12, rows_per_statement=2,
    )
    for name, cfg in data["configs"].items():
        assert cfg["rows_written"] > 0, name
        assert len(cfg["refresh_seconds"]) == 2
    counters = data["configs"]["queue_block"]["queue"]
    assert (
        counters["drained_rows"] + counters["depth_rows"]
        == counters["enqueued_rows"]
    )


def test_regression_gate_baseline_is_well_formed():
    """BENCH_baseline.json (committed) parses and carries the ratio the
    CI gate compares against; the gate metric itself is measurable at a
    tiny scale."""
    import json

    baseline = json.loads(
        bench_join.BENCH_BASELINE_PATH.read_text(encoding="utf-8")
    )
    assert baseline["join_15k"]["refresh_vs_recompute_ratio"] > 0
    assert baseline["join_15k_adaptive"]["refresh_vs_recompute_ratio"] > 0
    current = bench_join.measure_gate_metric(
        orders=200, delta_rows=10, rounds=2
    )
    assert current["refresh_vs_recompute_ratio"] > 0
    adaptive = bench_join.measure_gate_metric(
        orders=200, delta_rows=10, rounds=2, adaptive=True
    )
    assert adaptive["refresh_vs_recompute_ratio"] > 0
