"""Property tests for cascaded (composed) delta propagation.

The cascade runtime never recomputes a downstream view: it feeds the
*stored-row delta* of the upstream view — ΔV = V(T+ΔT) − V(T) — through
the dependent's own operators. These properties pin down the algebra
that makes that sound, on randomized weighted batches:

1. Linear operators (σ, π) commute with delta extraction, so a chained
   linear view can consume ΔV directly.
2. The join delta is exactly ΔA⋈(B+ΔB) + A⋈ΔB — the bilinear rule the
   diamond topology relies on to avoid double-applying a base change
   that arrives through both arms.
3. For a *nonlinear* upstream (GROUP BY aggregate), the emitted
   stored-row delta composed through a linear dependent still equals
   the dependent's recompute delta — the level-k feed is a faithful
   substitute for recomputing level k−1.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.zset import (
    ZSet,
    ZSetBatch,
    batch_aggregate,
    batch_filter,
    batch_join,
    batch_project,
)

_key = st.one_of(st.none(), st.sampled_from("abcde"))
_value = st.one_of(st.none(), st.integers(-50, 50))
_weight = st.integers(-4, 4)

_entries = st.lists(
    st.tuples(st.tuples(_key, _value), _weight), max_size=30
)


def _batch(entries) -> ZSetBatch:
    if not entries:
        return ZSetBatch.empty(2)
    rows = [row for row, _ in entries]
    weights = [weight for _, weight in entries]
    return ZSetBatch.from_rows(rows, weights)


def _delta(after: ZSetBatch, before: ZSetBatch) -> ZSet:
    return (after + (-before)).consolidate().to_zset()


def _linear(batch: ZSetBatch) -> ZSetBatch:
    """A two-stage linear view body: σ(v > 0) then π(key)."""
    kept = batch_filter(batch, lambda row: row[1] is not None and row[1] > 0)
    return batch_project(kept, [0])


def _aggregate(batch: ZSetBatch) -> ZSetBatch:
    """A GROUP BY key aggregate view body (nonlinear in the input)."""
    return batch_aggregate(batch, [0], [("SUM", 1), ("COUNT", None)])


@settings(max_examples=80, deadline=None)
@given(_entries, _entries)
def test_linear_chain_delta_equals_delta_of_chain(base, delta):
    """Δ(π(σ(T))) == π(σ(ΔT)) — a linear 2-level chain needs only ΔT."""
    t, dt = _batch(base), _batch(delta)
    recompute_delta = _delta(_linear(t + dt), _linear(t))
    composed_delta = _linear(dt).consolidate().to_zset()
    assert recompute_delta == composed_delta


@settings(max_examples=80, deadline=None)
@given(_entries, _entries, _entries)
def test_join_delta_is_bilinear(left, right, change):
    """Δ(A⋈B) == ΔA⋈(B+ΔB) + A⋈ΔB when both inputs change at once."""
    a, b = _batch(left), _batch(right)
    da, db = _batch(change), _batch(change[::-1])
    recompute_delta = _delta(
        batch_join(a + da, b + db, [0], [0]), batch_join(a, b, [0], [0])
    )
    rule_delta = (
        batch_join(da, b + db, [0], [0]) + batch_join(a, db, [0], [0])
    ).consolidate().to_zset()
    assert recompute_delta == rule_delta


@settings(max_examples=80, deadline=None)
@given(_entries, _entries)
def test_aggregate_feed_composes_through_linear_dependent(base, delta):
    """The stored-row delta an aggregate view emits, pushed through a
    linear dependent, equals the dependent's recompute delta:

        L(U(T+Δ)) − L(U(T)) == L( U(T+Δ) − U(T) )
    """
    t, dt = _batch(base), _batch(delta)
    before, after = _aggregate(t), _aggregate(t + dt)
    recompute_delta = _delta(_linear(after), _linear(before))
    feed = after + (-before)  # what the cascade trigger captures
    composed_delta = _linear(feed).consolidate().to_zset()
    assert recompute_delta == composed_delta


@settings(max_examples=60, deadline=None)
@given(_entries, _entries)
def test_diamond_feeds_do_not_double_apply_shared_base_change(base, delta):
    """Both diamond arms observe the same ΔT; combining each arm's feed
    via the bilinear join rule equals recomputing the join of the two
    arm outputs — one base change, applied exactly once."""
    t, dt = _batch(base), _batch(delta)
    arm1_before, arm1_after = _aggregate(t), _aggregate(t + dt)
    arm2_before = batch_aggregate(t, [0], [("COUNT", None)])
    arm2_after = batch_aggregate(t + dt, [0], [("COUNT", None)])
    recompute_delta = _delta(
        batch_join(arm1_after, arm2_after, [0], [0]),
        batch_join(arm1_before, arm2_before, [0], [0]),
    )
    feed1 = arm1_after + (-arm1_before)
    feed2 = arm2_after + (-arm2_before)
    rule_delta = (
        batch_join(feed1, arm2_after, [0], [0])
        + batch_join(arm1_before, feed2, [0], [0])
    ).consolidate().to_zset()
    assert recompute_delta == rule_delta
