"""D/I operator tests: differentiation, integration, brute-force deltas."""

import pytest
from hypothesis import given, strategies as st

from repro.zset import ZSet, delta_view
from repro.zset.incremental import integrate
from repro.zset.operators import zset_filter


class TestDeltaView:
    def query(self, z: ZSet) -> ZSet:
        return zset_filter(z, lambda row: row[1] > 0).distinct()

    def test_empty_delta_gives_empty_view_delta(self):
        state = ZSet.from_rows([("a", 1)])
        assert delta_view(self.query, [state], [ZSet()]) == ZSet()

    def test_insert_produces_positive_delta(self):
        state = ZSet.from_rows([("a", 1)])
        delta = ZSet.deltas(inserts=[("b", 2)])
        out = delta_view(self.query, [state], [delta])
        assert out.weight(("b", 2)) == 1

    def test_delete_produces_negative_delta(self):
        state = ZSet.from_rows([("a", 1)])
        delta = ZSet.deltas(deletes=[("a", 1)])
        out = delta_view(self.query, [state], [delta])
        assert out.weight(("a", 1)) == -1

    def test_nonlinear_query_handled_by_brute_force(self):
        # distinct() is non-linear; delta_view still gives the right ΔV.
        state = ZSet.from_rows([("a", 1), ("a", 1)])
        delta = ZSet.deltas(deletes=[("a", 1)])
        out = delta_view(lambda z: z.distinct(), [state], [delta])
        # Two copies minus one: still present, so the distinct view is
        # unchanged.
        assert out == ZSet()

    def test_misaligned_arguments_raise(self):
        with pytest.raises(ValueError):
            delta_view(lambda z: z, [ZSet()], [])


class TestIntegrate:
    def test_integration_applies_delta(self):
        state = ZSet.from_rows([("a",)])
        delta = ZSet.deltas(inserts=[("b",)], deletes=[("a",)])
        assert integrate(state, delta) == ZSet.from_rows([("b",)])

    @given(
        st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 3)), max_size=8),
        st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 3)), max_size=8),
    )
    def test_integrate_then_differentiate_roundtrip(self, old_rows, new_rows):
        old = ZSet.from_rows(old_rows)
        new = ZSet.from_rows(new_rows)
        assert integrate(old, new - old) == new
