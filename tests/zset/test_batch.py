"""Property-based tests for the columnar Z-set batch representation.

Three families, per the batching design (docs/batching.md):

1. **Round-trip** — ``ZSet`` ↔ ``ZSetBatch`` conversions are lossless.
2. **Group laws** — the batch layout is still the abelian group (ℤ-module)
   the paper's delta algebra requires: associativity, inverse,
   zero-elimination, scaling.
3. **Kernel equivalence** — every vectorized kernel equals its
   row-at-a-time reference operator on randomized weighted inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.zset import (
    ZSet,
    ZSetBatch,
    batch_aggregate,
    batch_distinct,
    batch_filter,
    batch_join,
    batch_project,
    zset_aggregate,
    zset_distinct,
    zset_filter,
    zset_join,
    zset_project,
)

# Rows are (key: str|None, value: int|None) pairs — enough shape to hit
# NULL handling, weight collisions, and join key overlap.
_key = st.one_of(st.none(), st.sampled_from("abcde"))
_value = st.one_of(st.none(), st.integers(-50, 50))
_weight = st.integers(-4, 4)

_entries = st.lists(
    st.tuples(st.tuples(_key, _value), _weight), max_size=30
)


def _zset(entries) -> ZSet:
    merged: dict[tuple, int] = {}
    for row, weight in entries:
        merged[row] = merged.get(row, 0) + weight
    return ZSet(merged)


def _batch(entries) -> ZSetBatch:
    """Unconsolidated batch straight from the raw entry list."""
    if not entries:
        return ZSetBatch.empty(2)
    rows = [row for row, _ in entries]
    weights = [weight for _, weight in entries]
    return ZSetBatch.from_rows(rows, weights)


# ---------------------------------------------------------------------------
# Round-trip
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(_entries)
def test_round_trip_zset_batch_zset(entries):
    zset = _zset(entries)
    assert ZSetBatch.from_zset(zset).to_zset() == zset


@settings(max_examples=100, deadline=None)
@given(_entries)
def test_unconsolidated_batch_to_zset_merges_duplicates(entries):
    assert _batch(entries).to_zset() == _zset(entries)


@settings(max_examples=100, deadline=None)
@given(_entries)
def test_consolidate_reaches_normal_form(entries):
    consolidated = _batch(entries).consolidate()
    # Normal form: distinct rows, no zero weights — exactly ZSet's invariant.
    rows = list(consolidated.iter_rows())
    assert len(rows) == len(set(rows))
    assert not np.any(consolidated.weights == 0)
    assert consolidated.to_zset() == _zset(entries)


# ---------------------------------------------------------------------------
# Group laws
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(_entries, _entries, _entries)
def test_addition_associative_and_commutative(a, b, c):
    ba, bb, bc = _batch(a), _batch(b), _batch(c)
    assert ((ba + bb) + bc).to_zset() == (ba + (bb + bc)).to_zset()
    assert (ba + bb).to_zset() == (bb + ba).to_zset()


@settings(max_examples=60, deadline=None)
@given(_entries)
def test_inverse_and_zero(entries):
    batch = _batch(entries)
    assert (batch + (-batch)).consolidate().to_zset() == ZSet()
    assert len((batch + (-batch)).consolidate()) == 0  # zero-elimination
    zero = ZSetBatch.empty(2)
    assert (batch + zero).to_zset() == batch.to_zset()


@settings(max_examples=60, deadline=None)
@given(_entries, st.integers(-3, 3))
def test_scaling_matches_reference(entries, factor):
    assert _batch(entries).scale(factor).to_zset() == _zset(entries).scale(factor)


def test_scale_rejects_non_integer_factor():
    with pytest.raises(TypeError):
        _batch([(("a", 1), 1)]).scale(1.5)


# ---------------------------------------------------------------------------
# Kernel equivalence (batch vs. row-at-a-time reference)
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(_entries)
def test_filter_kernel_matches_reference(entries):
    predicate = lambda row: row[1] is not None and row[1] > 0
    zset, batch = _zset(entries), _batch(entries)
    assert batch_filter(batch, predicate).to_zset() == zset_filter(zset, predicate)
    # The vectorized-mask form agrees with the row-predicate form.
    mask = lambda keys, values: np.fromiter(
        (v is not None and v > 0 for v in values), dtype=bool, count=len(values)
    )
    assert batch_filter(batch, mask=mask).to_zset() == zset_filter(zset, predicate)


@settings(max_examples=100, deadline=None)
@given(_entries)
def test_project_kernel_matches_reference(entries):
    zset, batch = _zset(entries), _batch(entries)
    # Ordinal (columnar) form.
    assert batch_project(batch, [0]).to_zset() == zset_project(
        zset, lambda row: (row[0],)
    )
    # Callable (row) form with collisions.
    fn = lambda row: (row[0], None)
    assert batch_project(batch, fn).to_zset() == zset_project(zset, fn)


@settings(max_examples=100, deadline=None)
@given(_entries)
def test_distinct_kernel_matches_reference(entries):
    assert batch_distinct(_batch(entries)).to_zset() == zset_distinct(
        _zset(entries)
    )


@settings(max_examples=100, deadline=None)
@given(_entries, _entries)
def test_join_kernel_matches_reference(left, right):
    lz, rz = _zset(left), _zset(right)
    reference = zset_join(lz, rz, lambda r: r[0], lambda r: r[0])
    got = batch_join(_batch(left), _batch(right), [0], [0])
    assert got.to_zset() == reference


@settings(max_examples=100, deadline=None)
@given(_entries)
def test_aggregate_kernel_matches_reference(entries):
    reference = zset_aggregate(
        _zset(entries),
        lambda row: row[0],
        [("SUM", lambda row: row[1]), ("COUNT", lambda row: row[1]),
         ("COUNT", None)],
    )
    got = batch_aggregate(
        _batch(entries), [0], [("SUM", 1), ("COUNT", 1), ("COUNT", None)]
    )
    assert got.to_zset() == reference


@settings(max_examples=60, deadline=None)
@given(_entries, _entries)
def test_kernels_are_linear_over_addition(a, b):
    """σ and π commute with +: kernel(a + b) == kernel(a) + kernel(b)."""
    ba, bb = _batch(a), _batch(b)
    predicate = lambda row: row[0] is not None and row[0] in "abc"
    both = (ba + bb)
    assert batch_filter(both, predicate).to_zset() == (
        batch_filter(ba, predicate) + batch_filter(bb, predicate)
    ).to_zset()
    assert batch_project(both, [0]).to_zset() == (
        batch_project(ba, [0]) + batch_project(bb, [0])
    ).to_zset()


# ---------------------------------------------------------------------------
# Weight validation (regression: floats used to flow through silently)
# ---------------------------------------------------------------------------


class TestIntegerWeightValidation:
    def test_constructor_rejects_float_weights(self):
        with pytest.raises(TypeError, match="must be an integer"):
            ZSet({("a",): 1.5})

    def test_constructor_rejects_bool_weights(self):
        with pytest.raises(TypeError, match="must be an integer"):
            ZSet({("a",): True})

    def test_normalize_rejects_floats_from_constructors(self):
        zset = ZSet.from_rows([("a",)])
        zset._weights[("a",)] = 0.0
        with pytest.raises(TypeError, match="must be an integer"):
            zset._normalize()

    def test_deltas_validates(self):
        # deltas() funnels through _normalize, so tampered inputs raise.
        assert ZSet.deltas(inserts=[("a",)], deletes=[("a",)]) == ZSet()

    def test_scale_by_float_rejected(self):
        with pytest.raises(TypeError, match="must be an integer"):
            ZSet.from_rows([("a",)]).scale(0.5)

    def test_arithmetic_preserves_integer_weights(self):
        zset = ZSet.from_rows([("a",), ("a",), ("b",)])
        total = zset + zset - zset
        assert total == zset
        assert all(isinstance(w, int) for _, w in total.items())

    def test_numpy_integer_weights_accepted(self):
        # Batch kernels hand back np.int64 weights; integral types pass.
        import numpy as np

        zset = ZSet({("a",): np.int64(2)})
        assert zset.weight(("a",)) == 2
