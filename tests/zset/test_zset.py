"""Z-set group structure: unit tests + algebraic-law property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.zset import ZSet


class TestConstruction:
    def test_from_rows_counts_multiplicity(self):
        z = ZSet.from_rows([("a",), ("a",), ("b",)])
        assert z.weight(("a",)) == 2
        assert z.weight(("b",)) == 1
        assert z.weight(("zzz",)) == 0

    def test_deltas(self):
        z = ZSet.deltas(inserts=[("a",)], deletes=[("b",), ("b",)])
        assert z.weight(("a",)) == 1
        assert z.weight(("b",)) == -2

    def test_zero_weights_dropped(self):
        z = ZSet.deltas(inserts=[("a",)], deletes=[("a",)])
        assert len(z) == 0
        assert not z

    def test_rows_expansion(self):
        z = ZSet.from_rows([("a",), ("a",)])
        assert z.rows() == [("a",), ("a",)]

    def test_rows_with_negative_raises(self):
        z = ZSet.deltas(deletes=[("a",)])
        with pytest.raises(ValueError):
            z.rows()

    def test_is_set_and_is_positive(self):
        assert ZSet.from_rows([("a",), ("b",)]).is_set()
        assert not ZSet.from_rows([("a",), ("a",)]).is_set()
        assert ZSet.from_rows([("a",), ("a",)]).is_positive()
        assert not ZSet.deltas(deletes=[("a",)]).is_positive()


class TestGroupOperations:
    def test_addition_merges_weights(self):
        a = ZSet.from_rows([("x",)])
        b = ZSet.deltas(inserts=[("x",), ("y",)])
        merged = a + b
        assert merged.weight(("x",)) == 2
        assert merged.weight(("y",)) == 1

    def test_subtraction_is_differentiation(self):
        old = ZSet.from_rows([("a",), ("b",)])
        new = ZSet.from_rows([("b",), ("c",)])
        delta = new - old
        assert delta.weight(("a",)) == -1
        assert delta.weight(("b",)) == 0
        assert delta.weight(("c",)) == 1

    def test_negation(self):
        z = ZSet.from_rows([("a",)])
        assert (-z).weight(("a",)) == -1

    def test_scale(self):
        z = ZSet.from_rows([("a",)])
        assert z.scale(3).weight(("a",)) == 3

    def test_distinct(self):
        z = ZSet({("a",): 5, ("b",): -2})
        d = z.distinct()
        assert d.weight(("a",)) == 1
        assert d.weight(("b",)) == 0


_rows = st.lists(
    st.tuples(st.sampled_from("abcde"), st.integers(0, 3)), max_size=12
)


def zsets():
    return st.builds(
        lambda ins, dels: ZSet.deltas(inserts=ins, deletes=dels), _rows, _rows
    )


@given(zsets(), zsets())
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(zsets(), zsets(), zsets())
def test_addition_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(zsets())
def test_zero_identity(a):
    zero = ZSet()
    assert a + zero == a
    assert a - zero == a


@given(zsets())
def test_negation_inverse(a):
    assert a + (-a) == ZSet()


@given(zsets(), zsets())
def test_integration_of_differentiation(old, new):
    """I(D(new, old), old) == new — the defining DBSP identity."""
    delta = new - old
    assert old + delta == new


@given(zsets())
def test_distinct_idempotent(a):
    assert a.distinct().distinct() == a.distinct()
