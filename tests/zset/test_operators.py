"""Lifted relational operators over Z-sets: linearity and the join delta rule."""

import pytest
from hypothesis import given, strategies as st

from repro.zset import (
    ZSet,
    delta_view,
    incremental_join_delta,
    zset_aggregate,
    zset_filter,
    zset_join,
    zset_project,
)


class TestFilterProject:
    def test_filter_preserves_weights(self):
        z = ZSet({("a", 1): 2, ("b", 5): 1})
        out = zset_filter(z, lambda row: row[1] > 2)
        assert out == ZSet({("b", 5): 1})

    def test_project_merges_weights(self):
        z = ZSet({("a", 1): 1, ("a", 2): 1})
        out = zset_project(z, lambda row: (row[0],))
        assert out.weight(("a",)) == 2

    def test_project_cancels_opposite_weights(self):
        z = ZSet({("a", 1): 1, ("a", 2): -1})
        out = zset_project(z, lambda row: (row[0],))
        assert len(out) == 0


class TestJoin:
    def join(self, left, right):
        return zset_join(left, right, lambda r: r[0], lambda r: r[0])

    def test_weights_multiply(self):
        left = ZSet({("k", "l"): 2})
        right = ZSet({("k", "r"): 3})
        assert self.join(left, right).weight(("k", "l", "k", "r")) == 6

    def test_sign_algebra(self):
        # insert×delete = delete; delete×delete = insert.
        left = ZSet({("k", "l"): 1})
        right = ZSet({("k", "r"): -1})
        assert self.join(left, right).weight(("k", "l", "k", "r")) == -1
        both_deletes = self.join(ZSet({("k", "l"): -1}), right)
        assert both_deletes.weight(("k", "l", "k", "r")) == 1

    def test_null_keys_never_join(self):
        left = ZSet({(None, "l"): 1})
        right = ZSet({(None, "r"): 1})
        assert len(self.join(left, right)) == 0


class TestAggregate:
    def test_sum_count_weighted(self):
        z = ZSet({("a", 10): 2, ("a", 5): -1, ("b", 1): 1})
        out = zset_aggregate(
            z, lambda r: r[0], [("SUM", lambda r: r[1]), ("COUNT", None)]
        )
        assert out.weight(("a", 15, 1)) == 1  # 2*10 - 5 = 15; count 2-1 = 1
        assert out.weight(("b", 1, 1)) == 1

    def test_empty_group_disappears(self):
        z = ZSet({("a", 10): 1, ("a", 10): 1}) - ZSet({("a", 10): 1})
        z = z - z  # everything cancels
        out = zset_aggregate(z, lambda r: r[0], [("SUM", lambda r: r[1])])
        assert len(out) == 0

    def test_count_skips_nulls(self):
        z = ZSet({("a", None): 1, ("a", 2): 1})
        out = zset_aggregate(
            z, lambda r: r[0], [("COUNT", lambda r: r[1]), ("COUNT", None)]
        )
        assert out.weight(("a", 1, 2)) == 1

    def test_nonlinear_aggregate_rejected(self):
        with pytest.raises(ValueError):
            zset_aggregate(ZSet({("a", 1): 1}), lambda r: r[0],
                           [("MIN", lambda r: r[1])])


_row = st.tuples(st.sampled_from("abc"), st.integers(0, 5))
_zset = st.builds(
    lambda ins, dels: ZSet.deltas(inserts=ins, deletes=dels),
    st.lists(_row, max_size=10),
    st.lists(_row, max_size=10),
)
_positive = st.builds(ZSet.from_rows, st.lists(_row, max_size=10))


@given(_positive, _zset)
def test_filter_is_linear(state, delta):
    """σ(T + ΔT) == σ(T) + σ(ΔT): selection commutes with deltas."""
    predicate = lambda row: row[1] % 2 == 0
    assert zset_filter(state + delta, predicate) == (
        zset_filter(state, predicate) + zset_filter(delta, predicate)
    )


@given(_positive, _zset)
def test_project_is_linear(state, delta):
    projection = lambda row: (row[0],)
    assert zset_project(state + delta, projection) == (
        zset_project(state, projection) + zset_project(delta, projection)
    )


@given(_positive, _positive, _zset, _zset)
def test_three_term_join_delta_rule(left, right, dleft, dright):
    """Δ(A⋈B) == ΔA⋈B + A⋈ΔB + ΔA⋈ΔB (old-state form)."""
    def join(a, b):
        return zset_join(a, b, lambda r: r[0], lambda r: r[0])

    brute_force = delta_view(
        lambda a, b: join(a, b), [left, right], [dleft, dright]
    )
    incremental = incremental_join_delta(left, dleft, right, dright, join)
    assert brute_force == incremental


@given(_positive, _zset)
def test_linear_aggregate_delta(state, delta):
    """For SUM/COUNT the aggregate of the delta is the delta of aggregates,
    up to regrouping — checked through the brute-force differentiation."""
    def query(z):
        return zset_aggregate(z, lambda r: r[0], [("SUM", lambda r: r[1])])

    brute = delta_view(query, [state], [delta])
    # Rebuild from per-group linear sums: aggregate both states directly.
    assert query(state + delta) - query(state) == brute
