"""Unit tests for the type system and value semantics."""

import datetime

import pytest

from repro.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    VARCHAR,
    cast_value,
    common_super_type,
    sql_compare,
    sql_format_literal,
    type_from_name,
)
from repro.datatypes.types import DataType, TypeId
from repro.errors import TypeError_


class TestTypeNames:
    def test_aliases_resolve(self):
        assert type_from_name("int") == INTEGER
        assert type_from_name("INT4") == INTEGER
        assert type_from_name("bigint") == BIGINT
        assert type_from_name("text") == VARCHAR
        assert type_from_name("FLOAT8") == DOUBLE
        assert type_from_name("bool") == BOOLEAN
        assert type_from_name("date") == DATE

    def test_decimal_maps_to_double(self):
        assert type_from_name("DECIMAL") == DOUBLE
        assert type_from_name("NUMERIC") == DOUBLE

    def test_varchar_width_is_display_only(self):
        t = type_from_name("VARCHAR", 20)
        assert t.id is TypeId.VARCHAR
        assert t.width == 20
        assert str(t) == "VARCHAR(20)"

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError_):
            type_from_name("BLOB")

    def test_numeric_flags(self):
        assert INTEGER.is_numeric and INTEGER.is_integral
        assert DOUBLE.is_numeric and not DOUBLE.is_integral
        assert not VARCHAR.is_numeric


class TestCommonSuperType:
    def test_numeric_promotion(self):
        assert common_super_type(INTEGER, BIGINT).id is TypeId.BIGINT
        assert common_super_type(INTEGER, DOUBLE).id is TypeId.DOUBLE
        assert common_super_type(BIGINT, DOUBLE).id is TypeId.DOUBLE

    def test_same_type(self):
        assert common_super_type(VARCHAR, VARCHAR).id is TypeId.VARCHAR

    def test_date_unifies_with_varchar(self):
        assert common_super_type(DATE, VARCHAR).id is TypeId.VARCHAR

    def test_incompatible_raises(self):
        with pytest.raises(TypeError_):
            common_super_type(BOOLEAN, INTEGER)


class TestCast:
    def test_null_casts_to_null(self):
        for target in (BOOLEAN, INTEGER, DOUBLE, VARCHAR, DATE):
            assert cast_value(None, target) is None

    def test_string_to_integer(self):
        assert cast_value("42", INTEGER) == 42
        assert cast_value(" 7 ", INTEGER) == 7
        assert cast_value("3.9", INTEGER) == 4

    def test_bad_string_to_integer_raises(self):
        with pytest.raises(TypeError_):
            cast_value("hello", INTEGER)

    def test_float_to_integer_rounds(self):
        assert cast_value(2.5, INTEGER) == 2  # banker's rounding
        assert cast_value(3.5, INTEGER) == 4

    def test_nan_to_integer_raises(self):
        with pytest.raises(TypeError_):
            cast_value(float("nan"), INTEGER)

    def test_boolean_casts(self):
        assert cast_value("true", BOOLEAN) is True
        assert cast_value("F", BOOLEAN) is False
        assert cast_value(0, BOOLEAN) is False
        assert cast_value(2, BOOLEAN) is True
        with pytest.raises(TypeError_):
            cast_value("maybe", BOOLEAN)

    def test_to_varchar(self):
        assert cast_value(True, VARCHAR) == "true"
        assert cast_value(1.5, VARCHAR) == "1.5"
        assert cast_value(datetime.date(2024, 6, 9), VARCHAR) == "2024-06-09"

    def test_date_parse(self):
        assert cast_value("2024-06-09", DATE) == datetime.date(2024, 6, 9)
        with pytest.raises(TypeError_):
            cast_value("June 9", DATE)


class TestCompare:
    def test_null_is_incomparable(self):
        assert sql_compare(None, 1) is None
        assert sql_compare("a", None) is None
        assert sql_compare(None, None) is None

    def test_numeric_mixed(self):
        assert sql_compare(1, 1.0) == 0
        assert sql_compare(1, 2.5) == -1
        assert sql_compare(3.5, 2) == 1

    def test_strings(self):
        assert sql_compare("apple", "banana") == -1
        assert sql_compare("b", "b") == 0

    def test_booleans(self):
        assert sql_compare(False, True) == -1
        assert sql_compare(True, True) == 0

    def test_bool_vs_number_promotes(self):
        assert sql_compare(True, 1) == 0
        assert sql_compare(False, 1) == -1

    def test_date_vs_iso_string(self):
        d = datetime.date(2024, 1, 2)
        assert sql_compare(d, "2024-01-02") == 0
        assert sql_compare("2024-01-01", d) == -1

    def test_string_vs_number_raises(self):
        with pytest.raises(TypeError_):
            sql_compare("abc", 3)


class TestFormatLiteral:
    def test_null(self):
        assert sql_format_literal(None) == "NULL"

    def test_booleans(self):
        assert sql_format_literal(True) == "TRUE"
        assert sql_format_literal(False) == "FALSE"

    def test_string_escaping(self):
        assert sql_format_literal("o'brien") == "'o''brien'"

    def test_numbers(self):
        assert sql_format_literal(5) == "5"
        assert sql_format_literal(2.5) == "2.5"

    def test_date(self):
        assert sql_format_literal(datetime.date(2024, 6, 9)) == "DATE '2024-06-09'"
