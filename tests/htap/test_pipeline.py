"""Cross-system pipeline tests (paper Figure 3)."""

import pytest

from repro import CrossSystemPipeline, IVMError, OLTPSystem


@pytest.fixture
def pipeline():
    oltp = OLTPSystem()
    oltp.execute("CREATE TABLE sales (region VARCHAR, amount INTEGER)")
    oltp.execute(
        "INSERT INTO sales VALUES ('eu', 10), ('eu', 5), ('us', 7)"
    )
    pipe = CrossSystemPipeline(oltp=oltp)
    pipe.create_materialized_view(
        "CREATE MATERIALIZED VIEW totals AS "
        "SELECT region, SUM(amount) AS total, COUNT(*) AS n "
        "FROM sales GROUP BY region"
    )
    return pipe


class TestSetup:
    def test_initial_population(self, pipeline):
        rows = pipeline.query("SELECT * FROM totals ORDER BY region").rows
        assert rows == [("eu", 15, 2), ("us", 7, 1)]

    def test_view_lives_on_olap_side(self, pipeline):
        assert pipeline.olap.catalog.has_table("totals")
        assert not pipeline.oltp.connection.catalog.has_table("totals")

    def test_delta_capture_lives_on_oltp_side(self, pipeline):
        assert pipeline.oltp.connection.catalog.has_table("delta_sales")
        assert "sales" in pipeline.oltp.captured_tables()

    def test_mirror_delta_on_olap_side(self, pipeline):
        assert pipeline.olap.catalog.has_table("delta_sales")

    def test_attached_query(self, pipeline):
        count = pipeline.query(
            "SELECT COUNT(*) FROM oltp.sales", refresh=False
        ).scalar()
        assert count == 3

    def test_duplicate_view_rejected(self, pipeline):
        with pytest.raises(IVMError):
            pipeline.create_materialized_view(
                "CREATE MATERIALIZED VIEW totals AS "
                "SELECT region, SUM(amount) AS total, COUNT(*) AS n "
                "FROM sales GROUP BY region"
            )


class TestPropagation:
    def test_insert_flow(self, pipeline):
        pipeline.oltp.execute("INSERT INTO sales VALUES ('eu', 100)")
        assert pipeline.pending_changes("totals") == 1
        rows = pipeline.query("SELECT total FROM totals WHERE region = 'eu'").rows
        assert rows == [(115,)]
        assert pipeline.pending_changes("totals") == 0

    def test_update_delete_flow(self, pipeline):
        pipeline.oltp.execute("UPDATE sales SET amount = 20 WHERE region = 'us'")
        pipeline.oltp.execute("DELETE FROM sales WHERE amount = 5")
        rows = pipeline.query("SELECT * FROM totals ORDER BY region").rows
        truth = pipeline.oltp.execute(
            "SELECT region, SUM(amount), COUNT(*) FROM sales GROUP BY region "
            "ORDER BY region"
        ).rows
        assert rows == truth

    def test_group_disappearance_across_systems(self, pipeline):
        pipeline.oltp.execute("DELETE FROM sales WHERE region = 'us'")
        rows = pipeline.query("SELECT region FROM totals").rows
        assert rows == [("eu",)]

    def test_explicit_refresh_returns_transfer_count(self, pipeline):
        pipeline.oltp.execute("INSERT INTO sales VALUES ('eu', 1), ('us', 2)")
        assert pipeline.refresh("totals") == 2
        assert pipeline.refresh("totals") == 0

    def test_query_without_refresh_is_stale(self, pipeline):
        pipeline.oltp.execute("INSERT INTO sales VALUES ('eu', 100)")
        stale = pipeline.query(
            "SELECT total FROM totals WHERE region = 'eu'", refresh=False
        ).scalar()
        assert stale == 15

    def test_many_rounds_stay_consistent(self, pipeline):
        for i in range(10):
            pipeline.oltp.execute(f"INSERT INTO sales VALUES ('r{i % 3}', {i})")
            if i % 2:
                pipeline.oltp.execute(f"DELETE FROM sales WHERE amount = {i - 1}")
            got = pipeline.query("SELECT * FROM totals").sorted()
            want = pipeline.oltp.execute(
                "SELECT region, SUM(amount), COUNT(*) FROM sales GROUP BY region"
            ).sorted()
            assert got == want


class TestJoinViewAcrossSystems:
    def test_two_table_view(self):
        oltp = OLTPSystem()
        oltp.execute("CREATE TABLE o (oid INTEGER, ck VARCHAR, qty INTEGER)")
        oltp.execute("CREATE TABLE c (ck VARCHAR, region VARCHAR)")
        oltp.execute("INSERT INTO c VALUES ('c1', 'eu'), ('c2', 'us')")
        oltp.execute("INSERT INTO o VALUES (1, 'c1', 10), (2, 'c2', 5)")
        pipe = CrossSystemPipeline(oltp=oltp)
        pipe.create_materialized_view(
            "CREATE MATERIALIZED VIEW rev AS "
            "SELECT c.region, SUM(o.qty) AS total FROM o JOIN c "
            "ON o.ck = c.ck GROUP BY c.region"
        )
        oltp.execute("INSERT INTO o VALUES (3, 'c1', 90)")
        oltp.execute("INSERT INTO c VALUES ('c3', 'apac')")
        oltp.execute("INSERT INTO o VALUES (4, 'c3', 1)")
        got = pipe.query("SELECT * FROM rev").sorted()
        want = oltp.execute(
            "SELECT c.region, SUM(o.qty) FROM o JOIN c ON o.ck = c.ck "
            "GROUP BY c.region"
        ).sorted()
        assert got == want


class TestOLTPSystem:
    def test_postgres_dialect(self):
        oltp = OLTPSystem()
        assert oltp.connection.dialect.name == "postgres"

    def test_install_capture_idempotent(self):
        oltp = OLTPSystem()
        oltp.execute("CREATE TABLE t (a INTEGER)")
        oltp.install_capture("t")
        oltp.install_capture("t")
        oltp.execute("INSERT INTO t VALUES (1)")
        # Exactly one delta row despite double installation:
        assert oltp.pending_delta_count("t") == 1

    def test_drain_clears(self):
        oltp = OLTPSystem()
        oltp.execute("CREATE TABLE t (a INTEGER)")
        oltp.install_capture("t")
        oltp.execute("INSERT INTO t VALUES (1), (2)")
        rows = oltp.drain_delta("t")
        assert rows == [(1, True), (2, True)]
        assert oltp.pending_delta_count("t") == 0
